//! Shared training-loop machinery: configuration, the scheduled optimizer,
//! and the resumable [`Trainer`] that owns the example stream and can
//! checkpoint / resume a run **bit-identically** — training 2N steps
//! straight and training N, crashing, and resuming for N more produce the
//! same parameters, optimizer moments, and loss trace.

use ntr_nn::optim::{Adam, WarmupLinearSchedule};
use ntr_nn::serialize::{
    load_checkpoint, save_checkpoint_stats, CheckpointError, SaveStats, TrainCheckpoint,
    TrainCursor,
};
use ntr_nn::Layer;
use ntr_obs::{Obs, ObsOptions};
use std::path::{Path, PathBuf};

/// Hyperparameters for a fine-tuning run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the training split.
    pub epochs: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Examples per optimizer step (gradient accumulation).
    pub batch_size: usize,
    /// Warmup fraction of total steps.
    pub warmup_frac: f32,
    /// Shuffling/masking seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 3,
            lr: 3e-3,
            batch_size: 8,
            warmup_frac: 0.1,
            seed: 0xF17E,
        }
    }
}

/// Drives Adam with a warmup-linear schedule over a known number of steps.
#[derive(Debug)]
pub struct ScheduledOptimizer {
    adam: Adam,
    schedule: WarmupLinearSchedule,
    /// Transient multiplier on the scheduled LR — the supervisor's retry
    /// backoff. Not checkpointed: a restored run starts back at 1.0.
    lr_scale: f32,
}

impl ScheduledOptimizer {
    /// Builds the optimizer for `total_steps` steps under `cfg`.
    pub fn new(cfg: &TrainConfig, total_steps: u64) -> Self {
        let warmup = ((total_steps as f32) * cfg.warmup_frac) as u64;
        Self {
            adam: Adam::new(cfg.lr).with_weight_decay(0.01),
            schedule: WarmupLinearSchedule {
                peak_lr: cfg.lr,
                warmup: warmup.max(1),
                total: total_steps.max(1),
            },
            lr_scale: 1.0,
        }
    }

    /// Rebuilds an optimizer from checkpointed parts (resume path): the
    /// saved schedule is authoritative, not one recomputed from config.
    pub fn from_parts(adam: Adam, schedule: WarmupLinearSchedule) -> Self {
        Self {
            adam,
            schedule,
            lr_scale: 1.0,
        }
    }

    /// Sets the transient LR multiplier (1.0 = scheduled LR unchanged).
    pub fn set_lr_scale(&mut self, scale: f32) {
        self.lr_scale = scale;
    }

    /// Applies one optimizer step to `model`'s accumulated gradients and
    /// zeroes them.
    pub fn step(&mut self, model: &mut dyn Layer) {
        let t = self.adam.steps();
        let lr = self.schedule.lr_at(t);
        // Skip the multiply at scale 1.0 so the default path sets the
        // schedule's LR bit-for-bit.
        self.adam.set_lr(if self.lr_scale == 1.0 {
            lr
        } else {
            lr * self.lr_scale
        });
        let mut guard = self.adam.begin_step();
        model.visit_params(&mut |_, p| guard.update(p));
        model.zero_grad();
    }

    /// Completed steps.
    pub fn steps(&self) -> u64 {
        self.adam.steps()
    }

    /// The underlying Adam state (for checkpoint capture).
    pub fn adam(&self) -> &Adam {
        &self.adam
    }

    /// The learning-rate schedule (for checkpoint capture).
    pub fn schedule(&self) -> &WarmupLinearSchedule {
        &self.schedule
    }
}

/// Deterministically shuffles indices for one epoch.
pub fn epoch_order(n: usize, epoch: usize, seed: u64) -> Vec<usize> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (epoch as u64).wrapping_mul(0x9E37));
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    idx
}

/// One example drawn from the training stream: which epoch it belongs to,
/// its position within that epoch's shuffled order (the per-example masking
/// seeds are functions of these two), and the dataset index to train on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchItem {
    /// Epoch this example belongs to.
    pub epoch: usize,
    /// Position within the epoch's shuffled order.
    pub pos: usize,
    /// Dataset index of the example.
    pub index: usize,
}

/// Checkpoint/resume knobs for a training run, shared by every driver
/// (`pretrain_*`, `finetune`) and the CLI.
#[derive(Debug, Clone, Default)]
pub struct TrainerOptions {
    /// Write a checkpoint to this path every `.1` optimizer steps.
    pub checkpoint: Option<(PathBuf, u64)>,
    /// Resume from this checkpoint instead of starting fresh.
    pub resume: Option<PathBuf>,
    /// Stop issuing batches once this many optimizer steps have completed
    /// (crash simulation in tests; partial-run support in the CLI).
    pub halt_after: Option<u64>,
    /// Observability sinks for the run (trace / metrics paths); the default
    /// is fully disabled.
    pub obs: ObsOptions,
}

impl TrainerOptions {
    /// Builds the trainer for a run over `n_examples` examples: fresh from
    /// `cfg`, or resumed from [`TrainerOptions::resume`] (which also loads
    /// weights, optimizer moments, and RNG streams into `model`).
    pub fn build(
        &self,
        model: &mut dyn Layer,
        cfg: &TrainConfig,
        n_examples: usize,
    ) -> Result<Trainer, CheckpointError> {
        let obs = Obs::open(&self.obs)?;
        let mut t = match &self.resume {
            Some(path) => {
                let t = Trainer::resume(model, cfg, n_examples, path)?;
                if let Some(e) = obs.event("ckpt_load") {
                    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                    e.u64("step", t.steps())
                        .u64("bytes", bytes)
                        .str("source", "resume")
                        .finish();
                }
                t
            }
            None => Trainer::new(cfg, n_examples),
        };
        if let Some((path, every)) = &self.checkpoint {
            t = t.with_checkpointing(path.clone(), *every);
        }
        if let Some(h) = self.halt_after {
            t = t.with_halt_after(h);
        }
        t.obs = obs;
        Ok(t)
    }
}

/// Owns a training run's example stream and optimizer.
///
/// The stream is the concatenation of each epoch's [`epoch_order`] shuffle,
/// chunked into batches of `batch_size` that **span epoch boundaries**, with
/// a final partial batch — exactly the iteration order the drivers used
/// before checkpointing existed, so resumed runs retrace the original
/// stream. Checkpoints are only taken at optimizer-step boundaries; the
/// saved cursor names the next unprocessed example.
#[derive(Debug)]
pub struct Trainer {
    opt: ScheduledOptimizer,
    n_examples: usize,
    epochs: usize,
    batch_size: usize,
    seed: u64,
    epoch: usize,
    pos: usize,
    order: Vec<usize>,
    checkpoint: Option<(PathBuf, u64)>,
    halt_after: Option<u64>,
    obs: Obs,
}

impl Trainer {
    /// A fresh run over `n_examples` examples under `cfg`.
    pub fn new(cfg: &TrainConfig, n_examples: usize) -> Self {
        let total = (n_examples * cfg.epochs).div_ceil(cfg.batch_size.max(1)) as u64;
        Self {
            opt: ScheduledOptimizer::new(cfg, total),
            n_examples,
            epochs: cfg.epochs,
            batch_size: cfg.batch_size.max(1),
            seed: cfg.seed,
            epoch: 0,
            pos: 0,
            order: epoch_order(n_examples, 0, cfg.seed),
            checkpoint: None,
            halt_after: None,
            obs: Obs::disabled(),
        }
    }

    /// Resumes a run from `path`: restores `model`'s weights, moments, and
    /// dropout RNG streams, and places the cursor at the first unprocessed
    /// example. The checkpoint's schedule is authoritative; its seed must
    /// match `cfg.seed` (a mismatch would silently retrace a *different*
    /// example stream, so it is an error).
    pub fn resume(
        model: &mut dyn Layer,
        cfg: &TrainConfig,
        n_examples: usize,
        path: &Path,
    ) -> Result<Self, CheckpointError> {
        let ckpt = load_checkpoint(path)?;
        let Some((adam, schedule, cursor)) = ckpt.apply_train(model)? else {
            return Err(CheckpointError::Mismatch(
                "checkpoint holds no training state to resume from (weights-only or v1 file)"
                    .into(),
            ));
        };
        if cursor.seed != cfg.seed {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint seed {:#x} != configured seed {:#x}: resuming would retrace a different example stream",
                cursor.seed, cfg.seed
            )));
        }
        let mut t = Self::new(cfg, n_examples);
        t.opt = ScheduledOptimizer::from_parts(adam, schedule);
        t.epoch = cursor.epoch as usize;
        t.pos = cursor.example as usize;
        t.order = if t.epoch < t.epochs {
            epoch_order(n_examples, t.epoch, cfg.seed)
        } else {
            Vec::new()
        };
        Ok(t)
    }

    /// Enables checkpointing to `path` every `every` optimizer steps.
    pub fn with_checkpointing(mut self, path: PathBuf, every: u64) -> Self {
        self.checkpoint = Some((path, every.max(1)));
        self
    }

    /// Stops issuing batches once `steps` optimizer steps have completed.
    pub fn with_halt_after(mut self, steps: u64) -> Self {
        self.halt_after = Some(steps);
        self
    }

    /// The run's shuffling/masking seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The run's observability handle (a no-op sink unless
    /// [`TrainerOptions::obs`] configured one).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The on-disk checkpoint path, when checkpointing is enabled.
    pub fn checkpoint_path(&self) -> Option<&Path> {
        self.checkpoint.as_ref().map(|(p, _)| p.as_path())
    }

    /// Sets the transient LR backoff multiplier (see
    /// [`ScheduledOptimizer::set_lr_scale`]).
    pub fn set_lr_scale(&mut self, scale: f32) {
        self.opt.set_lr_scale(scale);
    }

    /// Captures the full training state as an **in-memory** checkpoint —
    /// what [`Trainer::save_state`] would write, without touching disk. The
    /// supervisor keeps one of these per good step for cheap rollback.
    pub fn capture(&self, model: &mut dyn Layer) -> TrainCheckpoint {
        TrainCheckpoint::capture_train(model, self.opt.adam(), self.opt.schedule(), self.cursor())
    }

    /// Restores model weights, optimizer moments, RNG streams, and the
    /// stream cursor from a checkpoint (in-memory or loaded from disk),
    /// leaving the trainer exactly where it was when the checkpoint was
    /// captured. The LR backoff multiplier resets to 1.0. Fails on a
    /// weights-only checkpoint or a seed mismatch (either would silently
    /// retrace a different example stream).
    pub fn restore(
        &mut self,
        model: &mut dyn Layer,
        ckpt: &TrainCheckpoint,
    ) -> Result<(), CheckpointError> {
        let Some((adam, schedule, cursor)) = ckpt.apply_train(model)? else {
            return Err(CheckpointError::Mismatch(
                "checkpoint holds no training state to restore from (weights-only or v1 file)"
                    .into(),
            ));
        };
        if cursor.seed != self.seed {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint seed {:#x} != trainer seed {:#x}: restoring would retrace a different example stream",
                cursor.seed, self.seed
            )));
        }
        self.opt = ScheduledOptimizer::from_parts(adam, schedule);
        self.epoch = cursor.epoch as usize;
        self.pos = cursor.example as usize;
        self.order = if self.epoch < self.epochs {
            epoch_order(self.n_examples, self.epoch, self.seed)
        } else {
            Vec::new()
        };
        Ok(())
    }

    /// Completed optimizer steps.
    pub fn steps(&self) -> u64 {
        self.opt.steps()
    }

    /// The next batch of examples, or `None` when the stream is exhausted
    /// (or a halt point was reached).
    pub fn next_batch(&mut self) -> Option<Vec<BatchItem>> {
        if let Some(h) = self.halt_after {
            if self.opt.steps() >= h {
                return None;
            }
        }
        let mut batch = Vec::with_capacity(self.batch_size);
        while batch.len() < self.batch_size && self.epoch < self.epochs {
            if self.pos >= self.order.len() {
                self.epoch += 1;
                self.pos = 0;
                if self.epoch < self.epochs {
                    self.order = epoch_order(self.n_examples, self.epoch, self.seed);
                }
                continue;
            }
            batch.push(BatchItem {
                epoch: self.epoch,
                pos: self.pos,
                index: self.order[self.pos],
            });
            self.pos += 1;
        }
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }

    /// Applies one optimizer step to `model`'s accumulated gradients, then
    /// writes a checkpoint if one is due. Only fails if a due checkpoint
    /// cannot be written.
    pub fn step(&mut self, model: &mut dyn Layer) -> Result<(), CheckpointError> {
        self.opt.step(model);
        if let Some((path, every)) = self.checkpoint.clone() {
            if self.opt.steps().is_multiple_of(every) {
                let stats = self.save_state(model, &path)?;
                if let Some(e) = self.obs.event("ckpt_save") {
                    e.u64("step", self.opt.steps())
                        .u64("bytes", stats.bytes)
                        .u64("fsync_ms", stats.fsync_ms)
                        .finish();
                }
                self.obs.inc("ckpt/saves");
                self.obs.add("ckpt/bytes", stats.bytes);
            }
        }
        Ok(())
    }

    /// The resume point a checkpoint taken now would carry.
    pub fn cursor(&self) -> TrainCursor {
        TrainCursor {
            epoch: self.epoch as u64,
            example: self.pos as u64,
            seed: self.seed,
        }
    }

    /// Writes a full training checkpoint (weights + moments + schedule +
    /// cursor + RNG streams) to `path`, crash-safely. Returns the written
    /// size and fsync cost for observability.
    pub fn save_state(
        &self,
        model: &mut dyn Layer,
        path: &Path,
    ) -> Result<SaveStats, CheckpointError> {
        let ckpt = TrainCheckpoint::capture_train(
            model,
            self.opt.adam(),
            self.opt.schedule(),
            self.cursor(),
        );
        save_checkpoint_stats(&ckpt, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_nn::init::SeededInit;
    use ntr_nn::Linear;
    use ntr_tensor::Tensor;

    #[test]
    fn scheduled_optimizer_steps_and_zeroes() {
        let cfg = TrainConfig::default();
        let mut opt = ScheduledOptimizer::new(&cfg, 10);
        let mut lin = Linear::new(2, 2, &mut SeededInit::new(1));
        let before = lin.w.value.clone();
        let _ = lin.forward(&Tensor::ones(&[1, 2]));
        let _ = lin.backward(&Tensor::ones(&[1, 2]));
        opt.step(&mut lin);
        assert_ne!(lin.w.value, before);
        assert!(lin.w.grad.data().iter().all(|&g| g == 0.0));
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn epoch_order_is_a_deterministic_permutation() {
        let a = epoch_order(10, 0, 1);
        let b = epoch_order(10, 0, 1);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert_ne!(epoch_order(10, 1, 1), a, "epochs reshuffle");
    }

    /// Drains a trainer's stream into (epoch, pos, index) triples.
    fn drain(t: &mut Trainer) -> Vec<Vec<BatchItem>> {
        let mut out = Vec::new();
        while let Some(b) = t.next_batch() {
            out.push(b);
        }
        out
    }

    #[test]
    fn batches_span_epochs_and_flush_the_tail() {
        // 5 examples × 3 epochs = 15 items in batches of 4 → 3 full + 1 of 3.
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 4,
            seed: 7,
            ..TrainConfig::default()
        };
        let mut t = Trainer::new(&cfg, 5);
        let batches = drain(&mut t);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[3].len(), 3);
        // The flattened stream is the concatenation of per-epoch shuffles.
        let flat: Vec<usize> = batches.iter().flatten().map(|i| i.index).collect();
        let expected: Vec<usize> = (0..3).flat_map(|e| epoch_order(5, e, 7)).collect();
        assert_eq!(flat, expected);
        // Batch 1 crosses the epoch-0/epoch-1 boundary (5 = 4 + 1).
        assert_eq!(batches[1][0].epoch, 0);
        assert_eq!(batches[1][1].epoch, 1);
        assert_eq!(batches[1][1].pos, 0);
    }

    #[test]
    fn empty_dataset_yields_no_batches() {
        let mut t = Trainer::new(&TrainConfig::default(), 0);
        assert!(t.next_batch().is_none());
    }

    #[test]
    fn halt_stops_the_stream_at_a_step_boundary() {
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 2,
            seed: 3,
            ..TrainConfig::default()
        };
        let mut model = Linear::new(2, 2, &mut SeededInit::new(2));
        let mut t = Trainer::new(&cfg, 4).with_halt_after(3);
        let mut steps = 0;
        while let Some(_b) = t.next_batch() {
            let _ = model.forward(&Tensor::ones(&[1, 2]));
            let _ = model.backward(&Tensor::ones(&[1, 2]));
            t.step(&mut model).unwrap();
            steps += 1;
        }
        assert_eq!(steps, 3, "halt_after(3) must stop after 3 steps");
        assert_eq!(t.steps(), 3);
    }

    #[test]
    fn resume_continues_the_exact_example_stream() {
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 4,
            seed: 11,
            ..TrainConfig::default()
        };
        let dir = std::env::temp_dir().join("ntr_trainer_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ntrw");

        // Reference: drain the full stream in one go.
        let mut full_model = Linear::new(2, 2, &mut SeededInit::new(3));
        let mut full = Trainer::new(&cfg, 5);
        let mut full_items = Vec::new();
        while let Some(b) = full.next_batch() {
            let _ = full_model.forward(&Tensor::ones(&[1, 2]));
            let _ = full_model.backward(&Tensor::ones(&[1, 2]));
            full.step(&mut full_model).unwrap();
            full_items.extend(b);
        }

        // Crashed run: halt after 2 steps, checkpointing every step.
        let mut model = Linear::new(2, 2, &mut SeededInit::new(3));
        let mut first = Trainer::new(&cfg, 5)
            .with_checkpointing(path.clone(), 1)
            .with_halt_after(2);
        let mut items = Vec::new();
        while let Some(b) = first.next_batch() {
            let _ = model.forward(&Tensor::ones(&[1, 2]));
            let _ = model.backward(&Tensor::ones(&[1, 2]));
            first.step(&mut model).unwrap();
            items.extend(b);
        }

        // Resume into a *fresh* model and finish the stream.
        let mut resumed_model = Linear::new(2, 2, &mut SeededInit::new(999));
        let mut resumed = Trainer::resume(&mut resumed_model, &cfg, 5, &path).unwrap();
        assert_eq!(resumed.steps(), 2);
        while let Some(b) = resumed.next_batch() {
            let _ = resumed_model.forward(&Tensor::ones(&[1, 2]));
            let _ = resumed_model.backward(&Tensor::ones(&[1, 2]));
            resumed.step(&mut resumed_model).unwrap();
            items.extend(b);
        }
        assert_eq!(items, full_items, "resume must retrace the same stream");
        assert_eq!(
            full_model.w.value.data(),
            resumed_model.w.value.data(),
            "weights must be bit-identical"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn capture_restore_replays_bit_identically() {
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 2,
            seed: 21,
            ..TrainConfig::default()
        };
        let mut model = Linear::new(2, 2, &mut SeededInit::new(5));
        let mut t = Trainer::new(&cfg, 4);
        let train_step = |model: &mut Linear, t: &mut Trainer| {
            let b = t.next_batch().expect("stream not exhausted");
            let _ = model.forward(&Tensor::ones(&[1, 2]));
            let _ = model.backward(&Tensor::ones(&[1, 2]));
            t.step(model).unwrap();
            b
        };
        train_step(&mut model, &mut t);
        train_step(&mut model, &mut t);
        let snap = t.capture(&mut model);

        // Continue two more steps, recording the stream and weights.
        let b3 = train_step(&mut model, &mut t);
        let b4 = train_step(&mut model, &mut t);
        let w_after = model.w.value.clone();

        // Roll back and replay: same batches, same bits.
        t.restore(&mut model, &snap).unwrap();
        assert_eq!(t.steps(), 2);
        assert_eq!(train_step(&mut model, &mut t), b3);
        assert_eq!(train_step(&mut model, &mut t), b4);
        assert_eq!(model.w.value.data(), w_after.data());
    }

    #[test]
    fn restore_rejects_weights_only_checkpoints() {
        let cfg = TrainConfig::default();
        let mut model = Linear::new(2, 2, &mut SeededInit::new(6));
        let mut t = Trainer::new(&cfg, 3);
        let ckpt = ntr_nn::serialize::TrainCheckpoint::capture(&mut model);
        let err = t.restore(&mut model, &ckpt).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn resume_rejects_seed_mismatch() {
        let cfg = TrainConfig {
            seed: 1,
            ..TrainConfig::default()
        };
        let dir = std::env::temp_dir().join("ntr_trainer_seed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ntrw");
        let mut model = Linear::new(2, 2, &mut SeededInit::new(4));
        let t = Trainer::new(&cfg, 3);
        t.save_state(&mut model, &path).unwrap();
        let bad_cfg = TrainConfig {
            seed: 2,
            ..TrainConfig::default()
        };
        let err = Trainer::resume(&mut model, &bad_cfg, 3, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
