//! Tabular natural-language inference / fact verification (the paper's
//! §2.1 "text entailment, including fact-checking"): claim + table →
//! supported / refuted, TabFact-style.

use crate::metrics::{accuracy, binary_prf, Prf};
use crate::trainer::{epoch_order, ScheduledOptimizer, TrainConfig};
use ntr_corpus::datasets::NliDataset;
use ntr_corpus::Split;
use ntr_models::{ClassifierHead, EncoderInput, SequenceEncoder};
use ntr_nn::init::SeededInit;
use ntr_nn::loss::softmax_cross_entropy;
use ntr_nn::{Layer, Param};
use ntr_table::{Linearizer, LinearizerOptions, RowMajorLinearizer};
use ntr_tokenizer::WordPieceTokenizer;

/// A claim-verification model: encoder + binary classifier over `[CLS]`.
pub struct FactVerifier<M: SequenceEncoder> {
    /// The encoder.
    pub encoder: M,
    /// Binary (refuted=0 / supported=1) head.
    pub head: ClassifierHead,
}

impl<M: SequenceEncoder> FactVerifier<M> {
    /// Wraps an encoder with a fresh binary head.
    pub fn new(encoder: M, seed: u64) -> Self {
        let d = encoder.d_model();
        Self {
            encoder,
            head: ClassifierHead::new(d, 2, &mut SeededInit::new(seed)),
        }
    }

    fn logits(&mut self, input: &EncoderInput, train: bool) -> (ntr_tensor::Tensor, usize) {
        let states = self.encoder.encode(input, train);
        let pooled = states.rows(0, 1); // [CLS]
        (self.head.forward(&pooled), states.dim(0))
    }
}

impl<M: SequenceEncoder> Layer for FactVerifier<M> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.encoder
            .visit_params(&mut |n, p| f(&format!("encoder/{n}"), p));
        self.head
            .visit_params(&mut |n, p| f(&format!("head/{n}"), p));
    }
}

fn encode(
    ds: &NliDataset,
    idx: &[usize],
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> Vec<(EncoderInput, usize)> {
    idx.iter()
        .map(|&i| {
            let ex = &ds.examples[i];
            let e = RowMajorLinearizer.linearize(&ex.table, &ex.claim, tok, opts);
            (EncoderInput::from_encoded(&e), usize::from(ex.label))
        })
        .collect()
}

/// Fine-tunes a verifier on the training split.
pub fn finetune<M: SequenceEncoder>(
    model: &mut FactVerifier<M>,
    ds: &NliDataset,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    opts: &LinearizerOptions,
) {
    let prepared = encode(ds, &ds.indices(Split::Train), tok, opts);
    let steps = (prepared.len() * cfg.epochs).div_ceil(cfg.batch_size) as u64;
    let mut opt = ScheduledOptimizer::new(cfg, steps);
    let mut in_batch = 0;
    for epoch in 0..cfg.epochs {
        for &i in &epoch_order(prepared.len(), epoch, cfg.seed) {
            let (input, label) = &prepared[i];
            let (logits, seq_len) = model.logits(input, true);
            let (_, dlogits) = softmax_cross_entropy(&logits, &[*label], None);
            let d_pooled = model.head.backward(&dlogits);
            // Only the CLS row received gradient.
            let mut dstates = ntr_tensor::Tensor::zeros(&[seq_len, d_pooled.dim(1)]);
            dstates.row_mut(0).copy_from_slice(d_pooled.row(0));
            model.encoder.backward(&dstates);
            in_batch += 1;
            if in_batch == cfg.batch_size {
                opt.step(model);
                in_batch = 0;
            }
        }
    }
    if in_batch > 0 {
        opt.step(model);
    }
}

/// NLI evaluation: accuracy plus P/R/F1 with "supported" as positive.
#[derive(Debug, Clone, Default)]
pub struct NliEval {
    /// Classification accuracy.
    pub accuracy: f64,
    /// Precision/recall/F1 for the "supported" class.
    pub prf: Prf,
    /// Examples evaluated.
    pub n: usize,
}

impl NliEval {
    fn from_preds(pred: &[bool], gold: &[bool]) -> Self {
        Self {
            accuracy: accuracy(pred, gold),
            prf: binary_prf(pred, gold),
            n: pred.len(),
        }
    }
}

/// Evaluates a verifier on a split.
pub fn evaluate<M: SequenceEncoder>(
    model: &mut FactVerifier<M>,
    ds: &NliDataset,
    split: Split,
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> NliEval {
    let prepared = encode(ds, &ds.indices(split), tok, opts);
    let mut pred = Vec::with_capacity(prepared.len());
    let mut gold = Vec::with_capacity(prepared.len());
    for (input, label) in &prepared {
        let (logits, _) = model.logits(input, false);
        pred.push(logits.argmax_rows()[0] == 1);
        gold.push(*label == 1);
    }
    NliEval::from_preds(&pred, &gold)
}

/// Symbolic baseline: a cell-fact claim "the {attr} of {subject} is
/// {value}" is checked literally against the table; comparison claims and
/// unparsable claims fall back to "supported" (the majority-ish guess).
pub fn baseline_lookup(ds: &NliDataset, split: Split) -> NliEval {
    let mut pred = Vec::new();
    let mut gold = Vec::new();
    for &i in &ds.indices(split) {
        let ex = &ds.examples[i];
        gold.push(ex.label);
        pred.push(check_claim(ex));
    }
    NliEval::from_preds(&pred, &gold)
}

fn check_claim(ex: &ntr_corpus::datasets::NliExample) -> bool {
    let Some(rest) = ex.claim.strip_prefix("the ") else {
        return true;
    };
    // Comparison claims: "the {attr} of {a} is higher than the {attr} of {b}"
    if let Some((head, tail)) = rest.split_once(" is higher than the ") {
        let (attr, a) = match head.split_once(" of ") {
            Some(x) => x,
            None => return true,
        };
        let (_, b) = match tail.split_once(" of ") {
            Some(x) => x,
            None => return true,
        };
        let t = &ex.table;
        let (Some(col), Some(ra), Some(rb)) = (
            t.column_index(attr),
            (0..t.n_rows()).find(|&r| t.cell(r, 0).text() == a),
            (0..t.n_rows()).find(|&r| t.cell(r, 0).text() == b),
        ) else {
            return true;
        };
        return match (
            t.cell(ra, col).value.as_number(),
            t.cell(rb, col).value.as_number(),
        ) {
            (Some(x), Some(y)) => x > y,
            _ => true,
        };
    }
    // Cell facts: "the {attr} of {subject} is {value}"
    let Some((attr, tail)) = rest.split_once(" of ") else {
        return true;
    };
    let Some((subject, value)) = tail.split_once(" is ") else {
        return true;
    };
    let t = &ex.table;
    let (Some(col), Some(row)) = (
        t.column_index(attr),
        (0..t.n_rows()).find(|&r| t.cell(r, 0).text() == subject),
    ) else {
        return true;
    };
    t.cell(row, col).text() == value
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_corpus::tables::{CorpusConfig, TableCorpus};
    use ntr_corpus::{World, WorldConfig};
    use ntr_models::{ModelConfig, VanillaBert};

    fn setup() -> (NliDataset, WordPieceTokenizer) {
        let w = World::generate(WorldConfig {
            n_countries: 8,
            n_people: 8,
            n_films: 6,
            n_clubs: 4,
            seed: 21,
        });
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 12,
                min_rows: 3,
                max_rows: 4,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 22,
            },
        );
        let extra = vec!["the of is higher than".to_string()];
        let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &extra, 1200);
        (NliDataset::build(&corpus, 4, 23), tok)
    }

    #[test]
    fn baseline_lookup_is_near_perfect_on_cell_facts() {
        let (ds, _) = setup();
        let eval = baseline_lookup(&ds, Split::Test);
        assert!(eval.n > 0);
        // The symbolic checker decides cell facts exactly and only guesses
        // on claims it cannot parse, so it should be strong.
        assert!(eval.accuracy > 0.7, "{eval:?}");
    }

    #[test]
    fn finetuning_beats_chance() {
        let (ds, tok) = setup();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let opts = LinearizerOptions {
            max_tokens: 128,
            ..Default::default()
        };
        let mut model = FactVerifier::new(VanillaBert::new(&cfg), 8);
        finetune(
            &mut model,
            &ds,
            &tok,
            &TrainConfig {
                epochs: 10,
                lr: 3e-3,
                batch_size: 4,
                warmup_frac: 0.1,
                seed: 2,
            },
            &opts,
        );
        // Evaluate on train split: the model must at least be able to fit
        // its training claims well above chance.
        let eval = evaluate(&mut model, &ds, Split::Train, &tok, &opts);
        assert!(eval.n > 0);
        assert!(eval.accuracy > 0.6, "{eval:?}");
    }

    #[test]
    fn evaluate_reports_consistent_counts() {
        let (ds, tok) = setup();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let opts = LinearizerOptions::default();
        let mut model = FactVerifier::new(VanillaBert::new(&cfg), 8);
        let eval = evaluate(&mut model, &ds, Split::Test, &tok, &opts);
        assert_eq!(eval.n, ds.indices(Split::Test).len());
    }
}
