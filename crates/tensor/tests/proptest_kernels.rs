//! Property tests pinning the tiled, multithreaded kernels to the retained
//! naive reference implementations.
//!
//! Two guarantees are checked, matching the crate's contract:
//!
//! * **Tiled vs naive**: every matmul variant agrees with `ntr_tensor::naive`
//!   to within 1e-4 relative error over random shapes, including degenerate
//!   dims (`m/k/n = 1`) and sizes straddling the `MR = 4` register block and
//!   the 32³/64³ naive/parallel thresholds.
//! * **Thread-count invariance**: the parallel path is **bit-identical** for
//!   any thread count, because rows are partitioned without changing any
//!   row's accumulation order. Checked with exact equality.

use ntr_tensor::{allclose, naive, par, Tensor};
use proptest::prelude::*;

/// Dims that exercise 1, the MR=4 register-block edges, and the 32/64 tile
/// and threshold boundaries.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..9, 30usize..35, 62usize..67]
}

/// `(m, k, n)` plus flat operand buffers of `m·k` and `k·n` random floats.
fn mats() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>)> {
    (dim(), dim(), dim()).prop_flat_map(|(m, k, n)| {
        (
            Just(m),
            Just(k),
            Just(n),
            proptest::collection::vec(-2.0f32..2.0, m * k),
            proptest::collection::vec(-2.0f32..2.0, k * n),
        )
    })
}

/// Larger dims that clear the 64³ parallel threshold so the row-partitioned
/// path genuinely runs multithreaded.
fn big_mats() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>)> {
    (64usize..78, 64usize..78, 64usize..78).prop_flat_map(|(m, k, n)| {
        (
            Just(m),
            Just(k),
            Just(n),
            proptest::collection::vec(-1.0f32..1.0, m * k),
            proptest::collection::vec(-1.0f32..1.0, k * n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_naive((m, k, n, av, bv) in mats()) {
        let a = Tensor::from_vec(av, &[m, k]);
        let b = Tensor::from_vec(bv, &[k, n]);
        let got = a.matmul(&b);
        let want = naive::matmul(&a, &b);
        prop_assert!(allclose(got.data(), want.data(), 1e-4, 1e-5));
    }

    #[test]
    fn matmul_tn_matches_naive((m, k, n, av, bv) in mats()) {
        let a = Tensor::from_vec(av, &[k, m]);
        let b = Tensor::from_vec(bv, &[k, n]);
        let got = a.matmul_tn(&b);
        let want = naive::matmul_tn(&a, &b);
        prop_assert!(allclose(got.data(), want.data(), 1e-4, 1e-5));
    }

    #[test]
    fn matmul_nt_matches_naive((m, k, n, av, bv) in mats()) {
        let a = Tensor::from_vec(av, &[m, k]);
        let b = Tensor::from_vec(bv, &[n, k]);
        let got = a.matmul_nt(&b);
        let want = naive::matmul_nt(&a, &b);
        prop_assert!(allclose(got.data(), want.data(), 1e-4, 1e-5));
    }

    #[test]
    fn matmul_tt_matches_naive((m, k, n, av, bv) in mats()) {
        let a = Tensor::from_vec(av, &[k, m]);
        let b = Tensor::from_vec(bv, &[n, k]);
        let got = a.matmul_tt(&b);
        let want = naive::matmul_tt(&a, &b);
        prop_assert!(allclose(got.data(), want.data(), 1e-4, 1e-5));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn matmul_bit_identical_across_thread_counts((m, k, n, av, bv) in big_mats()) {
        let a = Tensor::from_vec(av, &[m, k]);
        let b = Tensor::from_vec(bv, &[k, n]);
        let serial = par::with_threads(1, || a.matmul(&b));
        for threads in [2usize, 3, 5, 8] {
            let parallel = par::with_threads(threads, || a.matmul(&b));
            prop_assert_eq!(serial.data(), parallel.data(), "threads={}", threads);
        }
    }

    #[test]
    fn matmul_nt_bit_identical_across_thread_counts((m, k, n, av, bv) in big_mats()) {
        let a = Tensor::from_vec(av, &[m, k]);
        let b = Tensor::from_vec(bv, &[n, k]);
        let serial = par::with_threads(1, || a.matmul_nt(&b));
        for threads in [2usize, 3, 5, 8] {
            let parallel = par::with_threads(threads, || a.matmul_nt(&b));
            prop_assert_eq!(serial.data(), parallel.data(), "threads={}", threads);
        }
    }

    #[test]
    fn elementwise_bit_identical_across_thread_counts(len in (1usize << 16) + 1..(1usize << 16) + 4000, seed in 0u64..1000) {
        // Deterministic pseudo-random fill; length crosses the element-wise
        // parallel threshold so the pool genuinely engages.
        let fill = |salt: u64| {
            Tensor::from_fn(&[len], |i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed.wrapping_add(salt);
                (h % 4001) as f32 / 2000.0 - 1.0
            })
        };
        let x = fill(1);
        let y = fill(2);
        let serial = par::with_threads(1, || {
            let mut a = x.clone();
            a.add_assign(&y);
            a.axpy(0.25, &y);
            a.mul_assign(&y);
            a.map_mut(|v| v * 1.5 - 0.125);
            (a, x.par_map(|v| v.exp()), x.softmax_rows_helper())
        });
        for threads in [2usize, 5] {
            let parallel = par::with_threads(threads, || {
                let mut a = x.clone();
                a.add_assign(&y);
                a.axpy(0.25, &y);
                a.mul_assign(&y);
                a.map_mut(|v| v * 1.5 - 0.125);
                (a, x.par_map(|v| v.exp()), x.softmax_rows_helper())
            });
            prop_assert_eq!(serial.0.data(), parallel.0.data());
            prop_assert_eq!(serial.1.data(), parallel.1.data());
            prop_assert_eq!(serial.2.data(), parallel.2.data());
        }
    }
}

trait SoftmaxHelper {
    fn softmax_rows_helper(&self) -> Tensor;
}

impl SoftmaxHelper for Tensor {
    /// Reshapes the 1-D buffer to rows of 64 (dropping the remainder) and
    /// softmaxes them, so the row-parallel reduction path is also pinned.
    fn softmax_rows_helper(&self) -> Tensor {
        let cols = 64;
        let rows = self.numel() / cols;
        Tensor::from_vec(self.data()[..rows * cols].to_vec(), &[rows, cols]).softmax_rows()
    }
}
