//! Determinism contract of the persistent worker pool: results are
//! bit-identical across repeated dispatches (workers are reused, not
//! respawned), across any thread count, after a worker panic, and through
//! nested `map_tasks` dispatches (which run inline on pool workers).
//!
//! These tests exercise the *pool*, not the kernels: the SIMD/scalar split
//! has its own suite (`simd_equivalence.rs`). Scalar-path bit-invariance
//! across thread counts is pinned here via `force_scalar` so the test means
//! the same thing on default and `--features simd` builds.

use ntr_tensor::{faults, par, simd, Tensor};

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn mat(n: usize, salt: usize) -> Tensor {
    Tensor::from_fn(&[n, n], |i| ((i * 29 + salt) % 113) as f32 * 0.02 - 1.1)
}

#[test]
fn repeated_dispatches_are_bit_identical() {
    // 64×64 clears the naive-GEMM threshold and (on multi-core hosts) the
    // grain gate, so the pool is actually re-entered each iteration.
    let a = mat(64, 7);
    let b = mat(64, 31);
    let first = par::with_threads(4, || a.matmul(&b));
    for _ in 0..50 {
        let again = par::with_threads(4, || a.matmul(&b));
        assert_eq!(bits(first.data()), bits(again.data()));
    }
}

#[test]
fn scalar_path_is_bit_identical_across_thread_counts() {
    let a = mat(96, 3);
    let b = mat(96, 17);
    let reference = simd::force_scalar(|| par::with_threads(1, || a.matmul(&b)));
    for t in [2, 3, 4, 5, 8] {
        let got = simd::force_scalar(|| par::with_threads(t, || a.matmul(&b)));
        assert_eq!(
            bits(reference.data()),
            bits(got.data()),
            "threads={t} drifted from single-threaded scalar bits"
        );
    }
}

#[test]
fn elementwise_chunking_is_bit_identical_across_thread_counts() {
    // for_chunks partitions at unit boundaries; pure element-wise work must
    // not depend on where those boundaries fall.
    let src: Vec<f32> = (0..10_007).map(|i| (i % 251) as f32 * 0.01 - 1.2).collect();
    let run = |t: usize| {
        let mut v = src.clone();
        par::with_threads(t, || {
            par::for_chunks(&mut v, 1, t.max(1), |_, chunk| {
                for x in chunk {
                    *x = x.mul_add(1.25, -0.5);
                }
            });
        });
        v
    };
    let reference = run(1);
    for t in [2, 4, 7, 8] {
        assert_eq!(bits(&reference), bits(&run(t)), "threads={t}");
    }
}

#[test]
fn results_stay_bit_identical_after_a_worker_panic() {
    let a = mat(64, 11);
    let b = mat(64, 43);
    let before = par::with_threads(4, || a.matmul(&b));

    // Closure panic inside a multi-threaded dispatch: the worker is caught,
    // the pool survives.
    let err = par::with_threads(4, || {
        let mut data = vec![0.0f32; 64];
        par::try_for_chunks(&mut data, 1, 4, |start, _| {
            if start == 0 {
                panic!("poison");
            }
        })
        .unwrap_err()
    });
    assert!(err.message.contains("poison"));

    // Injected fault through the faults module, same contract.
    let err = par::with_threads(4, || {
        faults::arm_worker_panic();
        let mut data = vec![0.0f32; 64];
        par::try_for_chunks(&mut data, 1, 4, |_, _| {}).unwrap_err()
    });
    assert_eq!(err.message, faults::INJECTED_PANIC_MSG);

    let after = par::with_threads(4, || a.matmul(&b));
    assert_eq!(
        bits(before.data()),
        bits(after.data()),
        "pool state leaked across a panic"
    );
}

#[test]
fn nested_map_tasks_dispatches_are_deterministic() {
    // Outer map_tasks lands on pool workers; the inner matmul dispatch then
    // runs inline on that worker (nested dispatches don't re-enter the
    // queue). Results must match the flat single-threaded computation.
    let a = mat(48, 5);
    let b = mat(48, 23);
    let flat: Vec<Tensor> = (0..4)
        .map(|_| par::with_threads(1, || a.matmul(&b)))
        .collect();
    for t in [2, 4] {
        let nested = par::with_threads(t, || par::map_tasks(4, t, |_| a.matmul(&b)));
        assert_eq!(nested.len(), 4);
        for (f, n) in flat.iter().zip(&nested) {
            // Scalar GEMM and SIMD GEMM are each k-sequential per element,
            // so inline-nested execution cannot change the bits.
            assert_eq!(bits(f.data()), bits(n.data()), "threads={t}");
        }
    }
}

#[test]
fn zip3_dispatch_is_bit_identical_across_thread_counts() {
    let n = 4_099; // prime-ish: uneven chunk remainders on every count
    let g: Vec<f32> = (0..n).map(|i| (i % 97) as f32 * 0.03 - 1.4).collect();
    let run = |t: usize| {
        let mut w = vec![0.1f32; n];
        let mut m = vec![0.2f32; n];
        let mut v = vec![0.3f32; n];
        par::with_threads(t, || {
            par::for_zip3_mut(&mut w, &mut m, &mut v, &g, t.max(1), |w, m, v, g| {
                for i in 0..w.len() {
                    m[i] = m[i].mul_add(0.9, g[i] * 0.1);
                    v[i] = v[i].mul_add(0.99, g[i] * g[i] * 0.01);
                    w[i] -= 0.01 * m[i] / (v[i].sqrt() + 1e-8);
                }
            });
        });
        (w, m, v)
    };
    let (rw, rm, rv) = run(1);
    for t in [2, 4, 8] {
        let (w, m, v) = run(t);
        assert_eq!(bits(&rw), bits(&w), "w threads={t}");
        assert_eq!(bits(&rm), bits(&m), "m threads={t}");
        assert_eq!(bits(&rv), bits(&v), "v threads={t}");
    }
}
