//! Panic-isolation contract of the `par` dispatchers: a panicking worker
//! surfaces as a typed `Err` on the calling thread, every other worker
//! drains (its output is complete), and the pool is immediately reusable —
//! under any thread count, including the `NTR_THREADS=4` CI leg.

use ntr_tensor::{faults, par};

/// A chunk worker that panics on the chunk containing unit `poison`.
fn poison_chunk(poison: usize) -> impl Fn(usize, &mut [f32]) + Sync {
    move |start, chunk| {
        for (u, x) in chunk.iter_mut().enumerate() {
            if start + u == poison {
                panic!("poisoned unit {}", start + u);
            }
            *x = (start + u) as f32;
        }
    }
}

#[test]
fn worker_panic_surfaces_as_err_and_pool_is_reusable() {
    for threads in [1usize, 2, 4, 8] {
        par::with_threads(threads, || {
            let mut data = vec![0.0f32; 32];
            let err = par::try_for_chunks(&mut data, 1, threads, poison_chunk(17)).unwrap_err();
            assert!(
                err.message.contains("poisoned unit 17"),
                "threads={threads}: {err}"
            );

            // The pool is reusable: the very next dispatch succeeds and
            // produces complete, correct output.
            let mut data = vec![0.0f32; 32];
            par::try_for_chunks(&mut data, 1, threads, |start, chunk| {
                for (u, x) in chunk.iter_mut().enumerate() {
                    *x = (start + u) as f32;
                }
            })
            .unwrap();
            let expect: Vec<f32> = (0..32).map(|i| i as f32).collect();
            assert_eq!(data, expect, "threads={threads}");
        });
    }
}

#[test]
fn first_panicking_worker_by_index_wins() {
    // Both worker 0's and the calling thread's chunks panic; the reported
    // worker must deterministically be the lowest index.
    par::with_threads(4, || {
        let mut data = vec![0.0f32; 16];
        let err = par::try_for_chunks(&mut data, 1, 4, |_, _| panic!("boom")).unwrap_err();
        assert_eq!(err.worker, 0);
        assert_eq!(err.message, "boom");
    });
}

#[test]
fn surviving_workers_drain_deterministically() {
    // Only unit 0 panics; every other unit must still be written exactly
    // once before try_for_chunks returns.
    for threads in [2usize, 4] {
        par::with_threads(threads, || {
            let mut data = vec![-1.0f32; 24];
            let err = par::try_for_chunks(&mut data, 1, threads, poison_chunk(0)).unwrap_err();
            assert!(err.message.contains("poisoned unit 0"));
            // Units owned by the panicking worker (its chunk) may be
            // partial, but every other worker's chunk is complete.
            let chunk = 24 / threads + usize::from(24 % threads > 0);
            for (i, &x) in data.iter().enumerate().skip(chunk) {
                assert_eq!(x, i as f32, "threads={threads} unit {i} not drained");
            }
        });
    }
}

#[test]
fn try_zip3_catches_and_recovers() {
    let n = 64;
    let (mut w, mut m, mut v) = (vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n]);
    let g = vec![2.0f32; n];
    par::with_threads(4, || {
        let err = par::try_for_zip3_mut(&mut w, &mut m, &mut v, &g, 4, |_, _, _, _| panic!("zip"))
            .unwrap_err();
        assert_eq!(err.message, "zip");
        par::try_for_zip3_mut(&mut w, &mut m, &mut v, &g, 4, |w, _, _, g| {
            for (x, y) in w.iter_mut().zip(g) {
                *x = *y;
            }
        })
        .unwrap();
    });
    assert_eq!(w, g);
}

#[test]
fn try_map_tasks_catches_and_recovers() {
    par::with_threads(4, || {
        let err = par::try_map_tasks(8, 4, |i| {
            if i == 3 {
                panic!("task 3");
            }
            i * 2
        })
        .unwrap_err();
        assert!(err.message.contains("task 3"));
        let ok = par::try_map_tasks(8, 4, |i| i * 2).unwrap();
        assert_eq!(ok, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    });
}

#[test]
fn infallible_wrappers_still_panic_on_worker_panic() {
    let caught = std::panic::catch_unwind(|| {
        let mut data = vec![0.0f32; 8];
        par::with_threads(4, || {
            par::for_chunks(&mut data, 1, 4, |_, _| panic!("wrapped"));
        });
    });
    let payload = caught.unwrap_err();
    let msg = payload.downcast_ref::<String>().expect("string payload");
    assert_eq!(msg, "wrapped");
}

#[test]
fn armed_fault_panics_inside_a_spawned_worker_once() {
    par::with_threads(4, || {
        faults::arm_worker_panic();
        let mut data = vec![0.0f32; 64];
        let err = par::try_for_chunks(&mut data, 1, 4, |start, chunk| {
            for (u, x) in chunk.iter_mut().enumerate() {
                *x = (start + u) as f32;
            }
        })
        .unwrap_err();
        assert_eq!(err.worker, 0, "worker 0 takes the injected fault");
        assert_eq!(err.message, faults::INJECTED_PANIC_MSG);
        assert!(
            !faults::disarm_worker_panic(),
            "the dispatch consumed the fault"
        );

        // One-shot: the next dispatch is clean.
        let mut data = vec![0.0f32; 64];
        par::try_for_chunks(&mut data, 1, 4, |start, chunk| {
            for (u, x) in chunk.iter_mut().enumerate() {
                *x = (start + u) as f32;
            }
        })
        .unwrap();
        assert_eq!(data[63], 63.0);
    });
}

#[test]
fn armed_fault_fires_even_single_threaded() {
    par::with_threads(1, || {
        faults::arm_worker_panic();
        let mut data = vec![0.0f32; 4];
        let err = par::try_for_chunks(&mut data, 1, 1, |_, _| {}).unwrap_err();
        assert_eq!(err.message, faults::INJECTED_PANIC_MSG);
    });
}
