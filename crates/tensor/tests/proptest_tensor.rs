//! Property tests for the tensor kernels: algebraic identities over random
//! shapes and values.

use ntr_tensor::{allclose, Tensor};
use proptest::prelude::*;

fn matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-5.0f32..5.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]))
    })
}

proptest! {
    #[test]
    fn add_is_commutative(dims in (1usize..6, 1usize..6), seed_a in 0u64..100, seed_b in 0u64..100) {
        let (r, c) = dims;
        let a = Tensor::from_fn(&[r, c], |i| ((i as u64 ^ seed_a) % 17) as f32 - 8.0);
        let b = Tensor::from_fn(&[r, c], |i| ((i as u64 ^ seed_b) % 13) as f32 - 6.0);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn scale_distributes(m in matrix(6), s in -3.0f32..3.0) {
        let doubled = m.add(&m);
        let scaled = m.scale(2.0);
        prop_assert!(allclose(doubled.data(), scaled.data(), 1e-5, 1e-5));
        let via_scale = m.scale(s).add(&m.scale(s));
        let direct = m.scale(2.0 * s);
        prop_assert!(allclose(via_scale.data(), direct.data(), 1e-4, 1e-4));
    }

    #[test]
    fn transpose_preserves_sum_and_norm(m in matrix(8)) {
        let t = m.transpose();
        prop_assert!((m.sum() - t.sum()).abs() < 1e-3);
        prop_assert!((m.norm() - t.norm()).abs() < 1e-3);
    }

    #[test]
    fn matmul_with_identity_is_identity(m in matrix(8)) {
        let eye = Tensor::eye(m.dim(1));
        let out = m.matmul(&eye);
        prop_assert!(allclose(out.data(), m.data(), 1e-5, 1e-5));
    }

    #[test]
    fn sum_rows_matches_total(m in matrix(8)) {
        let by_cols = m.sum_rows().sum();
        prop_assert!((by_cols - m.sum()).abs() < 1e-3);
    }

    #[test]
    fn argmax_rows_points_at_maximum(m in matrix(8)) {
        for (r, &idx) in m.argmax_rows().iter().enumerate() {
            let row = m.row(r);
            for &v in row {
                prop_assert!(row[idx] >= v);
            }
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax(m in matrix(6)) {
        let a = m.log_softmax_rows();
        let b = m.softmax_rows().map(f32::ln);
        prop_assert!(allclose(a.data(), b.data(), 1e-3, 1e-3));
    }

    #[test]
    fn cols_rows_roundtrip(m in matrix(8)) {
        // Splitting into per-head column blocks and reassembling is lossless.
        let c = m.dim(1);
        let half = c / 2;
        if half > 0 {
            let left = m.cols(0, half);
            let right = m.cols(half, c);
            let mut rebuilt = Tensor::zeros(&[m.dim(0), c]);
            rebuilt.set_cols(0, &left);
            rebuilt.set_cols(half, &right);
            prop_assert_eq!(rebuilt, m);
        }
    }

    #[test]
    fn hstack_vstack_shapes(m in matrix(5)) {
        let h = Tensor::hstack(&[&m, &m]);
        prop_assert_eq!(h.shape(), &[m.dim(0), m.dim(1) * 2]);
        let v = Tensor::vstack(&[&m, &m]);
        prop_assert_eq!(v.shape(), &[m.dim(0) * 2, m.dim(1)]);
        prop_assert!((h.sum() - 2.0 * m.sum()).abs() < 1e-3);
    }
}
