//! SIMD-vs-scalar equivalence over adversarial shapes.
//!
//! Two contracts, matching the determinism policy in `ntr_tensor::simd`
//! (DESIGN.md §9):
//!
//! * **Bit-identical class** — element-wise kernels (`add_assign`,
//!   `mul_assign`, `axpy`, `shift_scale`, `affine`, `mul_into`,
//!   `div_assign_scalar`, `sub_assign_scalar`, `ln_dx_row`, row `max`)
//!   must produce the *same bits* with SIMD on and off, for any length
//!   (empty, 1-element, every non-multiple-of-lane remainder) and any
//!   payload including NaN and ±Inf.
//! * **Tolerance class** — reductions (`sum`, `sum_sq`, `sq_dev_sum`,
//!   `sum_and_dot`, `dot`) and the FMA GEMM reassociate or fuse, so they
//!   are bounded against scalar instead; and the SIMD GEMM must itself be
//!   **bit-identical across thread counts** (partition-independent
//!   accumulation), exactly like the scalar path.
//!
//! On builds without `--features simd` (or on CPUs without AVX2/FMA)
//! `simd::active()` is false and every comparison degenerates to
//! scalar-vs-scalar — the suite stays green and meaningless rather than
//! flaky. The CI `--features simd` leg is where it bites.

use ntr_tensor::{allclose, par, simd, Tensor};
use proptest::prelude::*;

/// Lengths straddling every lane boundary of the 8-wide (and 16-wide GEMM
/// tile) kernels, plus empty and 1-element.
fn len() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        2usize..20,
        30usize..35,
        100usize..135
    ]
}

/// A payload vector of `n` floats where some elements may be NaN or ±Inf.
fn payload(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        (0u8..11, -100.0f32..100.0).prop_map(|(k, v)| match k {
            8 => f32::NAN,
            9 => f32::INFINITY,
            10 => f32::NEG_INFINITY,
            _ => v,
        }),
        n,
    )
}

fn pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    len().prop_flat_map(|n| (payload(n), payload(n)))
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// `a ≈ b` treating equal-position non-finites as agreement.
fn close_or_same_nonfinite(a: f32, b: f32, tol: f32) -> bool {
    if !a.is_finite() || !b.is_finite() {
        return a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan());
    }
    (a - b).abs() <= tol + b.abs() * 1e-4
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn elementwise_kernels_are_bit_identical((a, b) in pair()) {
        let on = simd::active();
        let s = 0.37f32;

        let mut fast = a.clone();
        let mut slow = a.clone();
        simd::add_assign(on, &mut fast, &b);
        simd::add_assign(false, &mut slow, &b);
        prop_assert_eq!(bits(&fast), bits(&slow), "add_assign");

        let mut fast = a.clone();
        let mut slow = a.clone();
        simd::mul_assign(on, &mut fast, &b);
        simd::mul_assign(false, &mut slow, &b);
        prop_assert_eq!(bits(&fast), bits(&slow), "mul_assign");

        let mut fast = a.clone();
        let mut slow = a.clone();
        simd::axpy(on, &mut fast, s, &b);
        simd::axpy(false, &mut slow, s, &b);
        prop_assert_eq!(bits(&fast), bits(&slow), "axpy");

        let mut fast = vec![0.0; a.len()];
        let mut slow = vec![0.0; a.len()];
        simd::shift_scale(on, &mut fast, &a, 0.25, 1.75);
        simd::shift_scale(false, &mut slow, &a, 0.25, 1.75);
        prop_assert_eq!(bits(&fast), bits(&slow), "shift_scale");

        let mut fast = vec![0.0; a.len()];
        let mut slow = vec![0.0; a.len()];
        simd::mul_into(on, &mut fast, &a, &b);
        simd::mul_into(false, &mut slow, &a, &b);
        prop_assert_eq!(bits(&fast), bits(&slow), "mul_into");

        let mut fast = a.clone();
        let mut slow = a.clone();
        simd::div_assign_scalar(on, &mut fast, 3.0);
        simd::div_assign_scalar(false, &mut slow, 3.0);
        prop_assert_eq!(bits(&fast), bits(&slow), "div_assign_scalar");

        let mut fast = a.clone();
        let mut slow = a.clone();
        simd::sub_assign_scalar(on, &mut fast, -1.5);
        simd::sub_assign_scalar(false, &mut slow, -1.5);
        prop_assert_eq!(bits(&fast), bits(&slow), "sub_assign_scalar");
    }

    #[test]
    fn affine_and_ln_dx_are_bit_identical((x, g) in pair()) {
        let on = simd::active();
        let b: Vec<f32> = x.iter().map(|v| v * 0.5 - 1.0).collect();

        let mut fast = vec![0.0; x.len()];
        let mut slow = vec![0.0; x.len()];
        simd::affine(on, &mut fast, &x, &g, &b);
        simd::affine(false, &mut slow, &x, &g, &b);
        prop_assert_eq!(bits(&fast), bits(&slow), "affine");

        let mut fast = vec![0.0; x.len()];
        let mut slow = vec![0.0; x.len()];
        simd::ln_dx_row(on, &mut fast, &x, &g, 0.9, 0.1, -0.2);
        simd::ln_dx_row(false, &mut slow, &x, &g, 0.9, 0.1, -0.2);
        prop_assert_eq!(bits(&fast), bits(&slow), "ln_dx_row");
    }

    #[test]
    fn row_max_is_bit_identical_with_nan_skipping(xs in len().prop_flat_map(payload)) {
        let on = simd::active();
        let fast = simd::max(on, &xs);
        let slow = simd::max(false, &xs);
        prop_assert_eq!(fast.to_bits(), slow.to_bits());
        // f32::max semantics: NaN never wins, empty slices yield -inf.
        if !xs.is_empty() && xs.iter().any(|x| !x.is_nan()) {
            prop_assert!(!fast.is_nan());
        }
    }

    #[test]
    fn reductions_are_tolerance_bounded((a, b) in pair()) {
        // Restrict to finite payloads: non-finite sums legitimately differ
        // in *which* non-finite they produce depending on association.
        let a: Vec<f32> = a.iter().map(|x| if x.is_finite() { *x } else { 1.0 }).collect();
        let b: Vec<f32> = b.iter().map(|x| if x.is_finite() { *x } else { -1.0 }).collect();
        let on = simd::active();
        let tol = 1e-2 * (a.len().max(1) as f32);

        prop_assert!(close_or_same_nonfinite(simd::sum(on, &a), simd::sum(false, &a), tol));
        prop_assert!(close_or_same_nonfinite(simd::sum_sq(on, &a), simd::sum_sq(false, &a), tol * 100.0));
        prop_assert!(close_or_same_nonfinite(
            simd::sq_dev_sum(on, &a, 0.5),
            simd::sq_dev_sum(false, &a, 0.5),
            tol * 100.0
        ));
        prop_assert!(close_or_same_nonfinite(simd::dot(on, &a, &b), simd::dot(false, &a, &b), tol * 100.0));
        let (fs, fd) = simd::sum_and_dot(on, &a, &b);
        let (ss, sd) = simd::sum_and_dot(false, &a, &b);
        prop_assert!(close_or_same_nonfinite(fs, ss, tol));
        prop_assert!(close_or_same_nonfinite(fd, sd, tol * 100.0));
    }
}

/// `(m, k, n)` spanning the naive threshold, the MR=4/NR=8/16 tile edges,
/// and degenerate dims.
fn gemm_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    let d = || prop_oneof![1usize..6, 7usize..10, 15usize..18, 31usize..34, 63usize..66];
    (d(), d(), d())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simd_matmul_is_tolerance_bounded_against_scalar((m, k, n) in gemm_dims()) {
        let a = Tensor::from_fn(&[m, k], |i| ((i * 37 + 11) % 97) as f32 * 0.03 - 1.4);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 53 + 29) % 89) as f32 * 0.04 - 1.7);
        let fast = a.matmul(&b);
        let slow = simd::force_scalar(|| a.matmul(&b));
        prop_assert!(
            allclose(fast.data(), slow.data(), 1e-4, 1e-4),
            "m={m} k={k} n={n}"
        );
    }

    #[test]
    fn simd_matmul_is_bit_identical_across_thread_counts((m, k, n) in gemm_dims()) {
        // Applies to the SIMD path *and* the scalar path: accumulation is
        // k-sequential per output element under any row partition.
        let a = Tensor::from_fn(&[m, k], |i| ((i * 13 + 7) % 101) as f32 * 0.02 - 1.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 31 + 3) % 103) as f32 * 0.02 - 1.0);
        let t1 = par::with_threads(1, || a.matmul(&b));
        let t4 = par::with_threads(4, || a.matmul(&b));
        let t7 = par::with_threads(7, || a.matmul(&b));
        prop_assert_eq!(bits(t1.data()), bits(t4.data()));
        prop_assert_eq!(bits(t1.data()), bits(t7.data()));
    }
}

#[test]
fn softmax_simd_is_tolerance_bounded_and_mask_safe() {
    let mut v: Vec<f32> = (0..1000)
        .map(|i| ((i * 17) % 301) as f32 * 0.05 - 7.0)
        .collect();
    // One fully-masked row and a NaN-free partially-masked row.
    for x in v.iter_mut().take(100) {
        *x = f32::NEG_INFINITY;
    }
    let t = Tensor::from_vec(v, &[10, 100]);
    let fast = t.softmax_rows();
    let slow = simd::force_scalar(|| t.softmax_rows());
    assert!(allclose(fast.data(), slow.data(), 1e-5, 1e-6));
    // Fully-masked row stays uniform under SIMD.
    for &x in &fast.data()[..100] {
        assert_eq!(x, 0.01);
    }
    let fast_ls = t.log_softmax_rows();
    let slow_ls = simd::force_scalar(|| t.log_softmax_rows());
    assert!(allclose(fast_ls.data(), slow_ls.data(), 1e-4, 1e-5));
}

#[test]
fn force_scalar_propagates_into_pool_workers() {
    // Kernels invoked *inside* a map_tasks body re-read `simd::active()`
    // on the pool worker; the dispatcher's veto must reach them. With the
    // veto inherited, both halves are scalar and therefore bit-identical
    // even on a simd build.
    let a = Tensor::from_fn(&[48, 48], |i| (i % 19) as f32 * 0.1 - 0.9);
    let b = Tensor::from_fn(&[48, 48], |i| (i % 23) as f32 * 0.1 - 1.1);
    let direct = simd::force_scalar(|| a.matmul(&b));
    let via_pool = simd::force_scalar(|| {
        par::with_threads(4, || {
            let mut out = par::map_tasks(4, 4, |_| a.matmul(&b));
            out.pop().unwrap()
        })
    });
    assert_eq!(bits(direct.data()), bits(via_pool.data()));
}
