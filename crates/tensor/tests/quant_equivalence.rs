//! Int8 quantization equivalence + edge cases over proptest shapes.
//!
//! Contracts (DESIGN.md §13):
//!
//! * **Integer-exact class** — the quantized matmul must be
//!   *bit-identical* between the SIMD lane and the scalar lane (and hence
//!   across thread counts): its accumulation is associative `i32` math,
//!   a stronger guarantee than the f32 GEMM's tolerance class.
//! * **Bounded error vs f32** — for finite inputs, each output element of
//!   the quantized matmul stays within the analytic rounding bound
//!   `k/4 * (sa*|w|max + sb*|x|max + sa*sb/?)` — conservatively
//!   `0.5 * k * (sa * sb) * 127` — of the exact f32 product.
//! * **Edge cases** — all-zero rows (scale 0), NaN/±Inf payloads, and the
//!   symmetric `[-127, 127]` clamp never panic and never produce `-128`.

use ntr_tensor::quant::{matmul_q8, quantize_cols, quantize_rows, row_scale, QMAX};
use ntr_tensor::{simd, Tensor};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..40, 1usize..12)
}

/// Finite payload with a wide dynamic range.
fn finite(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-50.0f32..50.0, n)
}

/// Payload where some elements may be NaN or ±Inf.
fn hostile(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        (0u8..11, -50.0f32..50.0).prop_map(|(k, v)| match k {
            8 => f32::NAN,
            9 => f32::INFINITY,
            10 => f32::NEG_INFINITY,
            _ => v,
        }),
        n,
    )
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SIMD lane == scalar lane, bit for bit, for any shape and any
    /// payload including non-finite values.
    #[test]
    fn lanes_bit_identical_over_shapes(
        (n, k, m) in dims(),
        seed in 0u64..1000,
    ) {
        let x = Tensor::from_fn(&[n, k], |i| {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed);
            ((h >> 40) as f32 / 1000.0) - 8.0
        });
        let w = Tensor::from_fn(&[k, m], |i| {
            let h = (i as u64).wrapping_mul(0xBF58476D1CE4E5B9).wrapping_add(seed ^ 7);
            ((h >> 40) as f32 / 2000.0) - 4.0
        });
        let xq = quantize_rows(&x);
        let wq = quantize_cols(&w);
        let fast = matmul_q8(simd::active(), &xq, &wq);
        let slow = simd::force_scalar(|| matmul_q8(simd::active(), &xq, &wq));
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// For finite inputs the int8 result stays within the documented
    /// rounding bound of the exact f32 matmul.
    #[test]
    fn int8_tracks_f32_within_documented_tolerance(
        (n, k, m) in dims(),
        x in (1usize..12, 1usize..40).prop_flat_map(|(n, k)| finite(n * k)),
    ) {
        // Reuse `x` entropy for both operands at the sampled dims.
        let need_x = n * k;
        let need_w = k * m;
        let xv: Vec<f32> = x.iter().cycle().take(need_x).copied().collect();
        let wv: Vec<f32> = x.iter().rev().cycle().take(need_w).copied().collect();
        let xt = Tensor::from_vec(xv, &[n, k]);
        let wt = Tensor::from_vec(wv, &[k, m]);
        let xq = quantize_rows(&xt);
        let wq = quantize_cols(&wt);
        let approx = matmul_q8(simd::active(), &xq, &wq);
        let exact = xt.matmul(&wt);
        for i in 0..n {
            for j in 0..m {
                let e = exact.at(&[i, j]);
                let a = approx.at(&[i, j]);
                // Each factor's rounding error is ≤ scale/2; cross terms
                // bound the per-element error by
                //   k * (sa/2 * 127*sb + sb/2 * 127*sa + sa/2 * sb/2).
                let sa = xq.scales[i];
                let sb = wq.scales[j];
                let bound = k as f32 * (sa * sb) * (QMAX + 0.25) + 1e-4;
                prop_assert!(
                    (e - a).abs() <= bound,
                    "({i},{j}): exact {e} vs int8 {a}, bound {bound}"
                );
            }
        }
    }

    /// Hostile payloads never panic, never produce -128, and keep scale-0
    /// rows exactly zero end to end.
    #[test]
    fn hostile_payloads_quantize_safely(
        (n, k) in (1usize..10, 1usize..30),
        data in (1usize..10, 1usize..30).prop_flat_map(|(n, k)| hostile(n * k)),
    ) {
        let v: Vec<f32> = data.iter().cycle().take(n * k).copied().collect();
        let t = Tensor::from_vec(v, &[n, k]);
        let q = quantize_rows(&t);
        prop_assert!(q.data.iter().all(|&b| (-127..=127).contains(&b)));
        for r in 0..n {
            if q.scales[r] == 0.0 {
                prop_assert!(q.row(r).iter().all(|&b| b == 0));
                prop_assert!(q.dequantize().row(r).iter().all(|&f| f == 0.0));
            }
        }
        // A matmul against itself transposed must stay finite: the i8
        // domain has no NaN/Inf left to propagate.
        let out = matmul_q8(simd::active(), &q, &q);
        prop_assert!(out.data().iter().all(|f| f.is_finite()));
    }

    /// row_scale ignores non-finite values and is exact on the max.
    #[test]
    fn row_scale_comes_from_finite_max(v in finite(17), hole in 0usize..17) {
        let mut v = v;
        let expect = {
            let mut m = 0.0f32;
            for (i, x) in v.iter().enumerate() {
                if i != hole { m = m.max(x.abs()); }
            }
            m
        };
        v[hole] = f32::NAN;
        prop_assert_eq!(row_scale(&v), if expect == 0.0 { 0.0 } else { expect / QMAX });
    }
}
