//! Grain-size heuristics: a per-kernel cost model deciding when (and how
//! wide) to parallelize.
//!
//! PR 1 gated parallelism on ad-hoc per-call-site size constants tuned for
//! the old spawn-per-dispatch pool. This module centralizes the decision
//! behind one question — *how many nanoseconds of serial work is this
//! call?* — estimated from the kernel's dominant unit (flops for GEMM,
//! bytes touched for element-wise streams, elements for transcendental
//! row reductions), and refuses to fan out unless every worker gets
//! enough work to amortize a dispatch.
//!
//! ## The model
//!
//! A dispatch on the persistent pool costs roughly [`DISPATCH_NS`]
//! (enqueue + condvar wake + completion latch, measured on the CI/bench
//! host; the old `thread::scope` spawn was ~25µs *per worker*). A chunk is
//! only worth shipping to a worker if it carries at least
//! [`MIN_GRAIN_NS`] ≈ 8× that overhead, so the parallel efficiency floor
//! is ~90%. From the serial estimate `est_ns`:
//!
//! * `est_ns < 2·MIN_GRAIN_NS` → run single-threaded (splitting would
//!   leave at least one chunk under-grained);
//! * otherwise fan out to `min(max_threads, est_ns / MIN_GRAIN_NS)`
//!   workers, so each chunk stays at or above the grain.
//!
//! The per-unit costs below are medians measured with the scalar kernels
//! on the bench host (single-core pinned, AVX2; see `BENCH_tensor.json`).
//! They only need to be right within ~2×: the decision they feed is a
//! coarse threshold, not a schedule. SIMD makes per-unit work cheaper,
//! which *raises* the parallel break-even size — using the scalar
//! estimates everywhere is therefore the conservative choice (it never
//! parallelizes smaller work under SIMD than it would scalar).

use crate::par;

/// Approximate cost of one pool dispatch: enqueue, wake, latch.
pub const DISPATCH_NS: u64 = 3_000;

/// Minimum serial work per shipped chunk: 8× the dispatch cost keeps
/// fan-out overhead under ~12% even in the worst accepted case.
pub const MIN_GRAIN_NS: u64 = 8 * DISPATCH_NS;

/// Measured scalar GEMM cost: ~0.05 ns per multiply-add pair
/// (matmul/nn@256: 2·256³ flop in ~1.6 ms single-thread).
const GEMM_NS_PER_MADD_X100: u64 = 5;

/// Measured element-wise stream cost: ~0.1 ns per byte touched
/// (add_assign@1M: 12 MB read+write in ~360 µs ⇒ 0.03 ns/B, padded ~3×
/// for cheaper cache-resident cases where bandwidth doesn't bind).
const STREAM_NS_PER_BYTE_X100: u64 = 10;

/// Measured transcendental row-reduction cost: ~4 ns per element
/// (softmax_rows@256: 64k exp+sum+div in ~260 µs).
const TRANSCENDENTAL_NS_PER_ELEM: u64 = 4;

/// Serial-work estimate for one kernel invocation, in the unit that
/// dominates its runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Work {
    /// Dense multiply-add pairs (`m·k·n` for a GEMM).
    Madds(usize),
    /// Bytes streamed through memory (reads + writes), for element-wise
    /// kernels whose arithmetic is trivial.
    StreamBytes(usize),
    /// Elements put through a transcendental (`exp`, `ln`, `sqrt`) in a
    /// row-wise reduction.
    Transcendental(usize),
}

impl Work {
    /// The model's serial-runtime estimate in nanoseconds.
    pub fn est_ns(self) -> u64 {
        match self {
            Work::Madds(n) => (n as u64).saturating_mul(GEMM_NS_PER_MADD_X100) / 100,
            Work::StreamBytes(b) => (b as u64).saturating_mul(STREAM_NS_PER_BYTE_X100) / 100,
            Work::Transcendental(n) => (n as u64).saturating_mul(TRANSCENDENTAL_NS_PER_ELEM),
        }
    }
}

/// Thread count for a kernel with the given work estimate: 1 below the
/// grain threshold, otherwise at most [`par::max_threads`] workers with at
/// least [`MIN_GRAIN_NS`] of work each.
///
/// The choice never affects results — every kernel in this crate is
/// bit-identical under any partition — only wall-clock.
pub fn threads_for(work: Work) -> usize {
    let est = work.est_ns();
    if est < 2 * MIN_GRAIN_NS {
        return 1;
    }
    let cap = (est / MIN_GRAIN_NS) as usize;
    par::max_threads().min(cap).max(1)
}

/// [`threads_for`] with an additional cap on the number of indivisible
/// units (rows, heads): a fan-out wider than the unit count would leave
/// workers idle, and callers often also want a floor of units per worker.
pub fn threads_for_units(work: Work, units: usize, min_units_per_thread: usize) -> usize {
    let by_units = (units / min_units_per_thread.max(1)).max(1);
    threads_for(work).min(by_units)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_work_stays_single_threaded() {
        // matmul@64: 64³ madds ≈ 13µs — below the grain, must not fan out.
        assert_eq!(threads_for(Work::Madds(64 * 64 * 64)), 1);
        // A 4k-element add: trivially serial.
        assert_eq!(threads_for(Work::StreamBytes(4096 * 4 * 3)), 1);
        // softmax@64: 4k elements ≈ 16µs — serial.
        assert_eq!(threads_for(Work::Transcendental(64 * 64)), 1);
    }

    #[test]
    fn large_work_fans_out_to_max_threads() {
        par::with_threads(4, || {
            // matmul@256: 256³ madds ≈ 840µs ≫ grain.
            assert_eq!(threads_for(Work::Madds(256 * 256 * 256)), 4);
            // add_assign@1M: 12MB ≈ 1.2ms by the padded model.
            assert_eq!(threads_for(Work::StreamBytes(1 << 20 << 2)), 4);
        });
    }

    #[test]
    fn medium_work_gets_a_partial_fanout() {
        par::with_threads(64, || {
            // matmul@128: ~105µs ⇒ grain allows ~4 chunks, not 64.
            let t = threads_for(Work::Madds(128 * 128 * 128));
            assert!((2..=8).contains(&t), "t={t}");
        });
    }

    #[test]
    fn unit_cap_binds() {
        par::with_threads(8, || {
            let w = Work::Madds(256 * 256 * 256);
            assert_eq!(threads_for_units(w, 2, 1), 2);
            assert_eq!(threads_for_units(w, 256, 64), 4);
            assert_eq!(threads_for_units(w, 0, 8), 1);
        });
    }

    #[test]
    fn estimates_are_monotone() {
        for w in [1usize, 1 << 10, 1 << 20, 1 << 30] {
            assert!(Work::Madds(w).est_ns() <= Work::Madds(w * 2).est_ns());
        }
    }
}
