//! # ntr-tensor
//!
//! A small, dependency-free, CPU tensor library purpose-built for the
//! transformer models in the `ntr` workspace.
//!
//! Design goals, in order:
//!
//! 1. **Correctness** — every numerical kernel here is exercised by
//!    finite-difference gradient checks in `ntr-nn`, so the math must be
//!    boring and auditable. `unsafe` is confined to two audited leaf
//!    modules: the pointer smuggling inside the worker pool dispatchers
//!    ([`par`]/`workpool`) and the `core::arch` intrinsics in [`simd`].
//! 2. **Predictability** — tensors are always contiguous, row-major `f32`
//!    buffers. Shape errors are programmer errors and panic with a clear
//!    message rather than threading `Result` through hot math.
//! 3. **Speed without dependencies** — the matmul family is cache-blocked,
//!    operand-packed, and multithreaded over a persistent pool of parked
//!    workers in [`par`] (no rayon, no BLAS). The [`grain`] cost model
//!    refuses to fan work out unless every chunk amortizes a dispatch, so
//!    adding threads never makes a kernel slower. Parallel kernels
//!    partition output rows into disjoint chunks whose per-row
//!    accumulation order never changes, so results are **bit-identical for
//!    any thread count** (`NTR_THREADS=1` reproduces multithreaded numbers
//!    exactly). With `--features simd` the hot loops switch to explicit
//!    AVX2/FMA micro-kernels ([`simd`]; element-wise kernels stay
//!    bit-identical to scalar, reductions and the FMA GEMM are
//!    tolerance-bounded — and still bit-identical across thread counts).
//!    The original simple kernels survive in [`naive`] as the
//!    property-tested reference and the small-size fast path, and benchmarks
//!    in `ntr-bench` keep us honest.
//!
//! The crate deliberately stops at raw math: neural-network layers, parameter
//! management and backpropagation live in `ntr-nn`, which composes these
//! kernels and caches activations for its hand-derived backward passes.
//!
//! ## Quick tour
//!
//! ```
//! use ntr_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//!
//! let probs = Tensor::from_vec(vec![0.0, f32::NEG_INFINITY], &[1, 2]).softmax_rows();
//! assert!((probs.at(&[0, 0]) - 1.0).abs() < 1e-6);
//! ```

pub mod faults;
pub mod grain;
pub mod io;
pub mod naive;
mod ops;
pub mod par;
pub mod quant;
mod reduce;
pub mod simd;
mod tensor;
mod workpool;

pub use tensor::Tensor;

/// Numerical comparison helper used across the workspace's tests: `true` when
/// `a` and `b` differ by less than `atol + rtol * |b|` element-wise.
pub fn allclose(a: &[f32], b: &[f32], rtol: f32, atol: f32) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(&x, &y)| (x - y).abs() <= atol + rtol * y.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allclose_accepts_equal_and_rejects_distant() {
        assert!(allclose(&[1.0, 2.0], &[1.0, 2.0], 0.0, 0.0));
        assert!(allclose(&[1.0, 2.0], &[1.0, 2.000001], 1e-5, 0.0));
        assert!(!allclose(&[1.0], &[1.1], 1e-5, 1e-5));
    }

    #[test]
    fn allclose_rejects_length_mismatch() {
        assert!(!allclose(&[1.0], &[1.0, 1.0], 1.0, 1.0));
    }
}
