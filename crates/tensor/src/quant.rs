//! Int8 symmetric per-row quantization for inference.
//!
//! The student serving path (DESIGN.md §13) trades a bounded amount of
//! precision for integer arithmetic: each *row* of an activation matrix
//! (and each *output column* of a weight matrix) is scaled by its own
//! `max|x| / 127` factor and rounded to `i8`; the matmul then runs on
//! `i8 × i8 → i32` integer dot products and converts back to `f32` once
//! per output element via `scale_row × scale_col`.
//!
//! # Determinism class
//!
//! Unlike the f32 GEMM (tolerance-bounded under FMA/reassociation, see
//! `simd`), the quantized matmul is **integer-exact**: addition of `i32`
//! partial products is associative, so the SIMD lane, the scalar lane,
//! and every thread count produce the *same bits*. Goldens may pin the
//! int8 path directly without `force_scalar`.
//!
//! # Edge cases (pinned by tests)
//!
//! * An all-zero row (or one with no finite element) gets `scale = 0`
//!   and quantizes to all-zero; dequantization maps it back to exact
//!   zeros rather than dividing by zero.
//! * Non-finite inputs saturate: `NaN → 0`, `+Inf → 127`, `-Inf → -127`
//!   (the scale is computed over *finite* elements only, so one bad cell
//!   cannot zero out the information in the rest of the row).
//! * Quantized values are clamped to `[-127, 127]` — `-128` is never
//!   produced, keeping the code symmetric and the `i16` widening in the
//!   AVX2 lane overflow-free.

use crate::tensor::Tensor;

/// Largest representable magnitude after quantization.
pub const QMAX: f32 = 127.0;

/// A row-major `i8` matrix with one symmetric scale per row.
///
/// `value[r][c] ≈ data[r * cols + c] as f32 * scales[r]`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    /// Row-major quantized values, `rows * cols` of them.
    pub data: Vec<i8>,
    /// Per-row dequantization scales (`0.0` for all-zero rows).
    pub scales: Vec<f32>,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

/// `max|finite x|` over a row: the quantity both the scale and the
/// quantization step derive from (`0.0` for an empty/all-non-finite row).
/// Branch-free select on `is_finite` so the scan auto-vectorizes.
#[inline]
fn row_absmax(row: &[f32]) -> f32 {
    // Eight independent accumulators so the reduction vectorizes (a
    // single running `max` is a loop-carried dependence the compiler
    // won't reassociate). `max` over a set is order-independent, and the
    // select has already replaced non-finite elements with 0.0, so the
    // result is value-exact on every lane.
    let mut lanes = [0.0f32; 8];
    let mut chunks = row.chunks_exact(8);
    for c in chunks.by_ref() {
        for (m, &v) in lanes.iter_mut().zip(c) {
            let a = if v.is_finite() { v.abs() } else { 0.0 };
            *m = m.max(a);
        }
    }
    let mut max = lanes.iter().fold(0.0f32, |x, &y| x.max(y));
    for &v in chunks.remainder() {
        let a = if v.is_finite() { v.abs() } else { 0.0 };
        max = max.max(a);
    }
    max
}

/// The symmetric scale for one row: `max|finite x| / 127`, or `0.0` when
/// the row is empty, all-zero, or has no finite element.
pub fn row_scale(row: &[f32]) -> f32 {
    let max = row_absmax(row);
    if max == 0.0 {
        0.0
    } else {
        max / QMAX
    }
}

/// Quantizes one row into `out` given its absmax, returning the
/// dequantization scale. The quantization step multiplies by the
/// reciprocal step (`127 / max`) rather than dividing per element — one
/// division per row, and the branch-free body auto-vectorizes.
#[inline]
fn quantize_row_into(on: bool, row: &[f32], max: f32, out: &mut [i8]) -> f32 {
    if max == 0.0 {
        out.fill(0);
        return 0.0;
    }
    let inv = QMAX / max;
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        // Bit-identical to the scalar loop below (see the kernel's doc
        // comment), so the lane-exactness claim survives the routing.
        unsafe { avx::quantize_row(row, inv, out) };
        return max / QMAX;
    }
    let _ = on;
    for (slot, &v) in out.iter_mut().zip(row) {
        // NaN survives rounding and clamp() and then casts to 0; ±Inf
        // clamp to ±127 (the clamp keeps -128 out). Ties round to even —
        // the hardware rounding direction — matching the AVX lane's
        // `cvtps` exactly.
        *slot = (v * inv).round_ties_even().clamp(-QMAX, QMAX) as i8;
    }
    max / QMAX
}

/// Quantizes a 2-D tensor row by row.
pub fn quantize_rows(x: &Tensor) -> QuantizedMatrix {
    assert_eq!(x.ndim(), 2, "quantize_rows wants [rows, cols]");
    let (rows, cols) = (x.dim(0), x.dim(1));
    let mut data = vec![0i8; rows * cols];
    let mut scales = Vec::with_capacity(rows);
    let on = crate::simd::active();
    for (r, out) in data.chunks_mut(cols.max(1)).enumerate().take(rows) {
        let row = x.row(r);
        scales.push(quantize_row_into(on, row, row_absmax(row), out));
    }
    QuantizedMatrix {
        data,
        scales,
        rows,
        cols,
    }
}

/// Quantizes a weight matrix `w: [d_in, d_out]` per *output column*,
/// storing it transposed (`rows = d_out`, `cols = d_in`) so the matmul
/// reads both operands sequentially.
pub fn quantize_cols(w: &Tensor) -> QuantizedMatrix {
    assert_eq!(w.ndim(), 2, "quantize_cols wants [d_in, d_out]");
    let (d_in, d_out) = (w.dim(0), w.dim(1));
    let wd = w.data();
    let mut col = vec![0.0f32; d_in];
    let mut data = vec![0i8; d_in * d_out];
    let mut scales = Vec::with_capacity(d_out);
    let on = crate::simd::active();
    for (c, out) in data.chunks_mut(d_in.max(1)).enumerate().take(d_out) {
        for (r, slot) in col.iter_mut().enumerate() {
            *slot = wd[r * d_out + c];
        }
        scales.push(quantize_row_into(on, &col, row_absmax(&col), out));
    }
    QuantizedMatrix {
        data,
        scales,
        rows: d_out,
        cols: d_in,
    }
}

impl QuantizedMatrix {
    /// One quantized row.
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Maps back to `f32` (lossy inverse of quantization; exact zeros for
    /// `scale = 0` rows).
    pub fn dequantize(&self) -> Tensor {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            let s = self.scales[r];
            for &q in self.row(r) {
                out.push(q as f32 * s);
            }
        }
        Tensor::from_vec(out, &[self.rows, self.cols])
    }
}

/// Integer dot product of two quantized rows; `on` routes to the AVX2
/// lane exactly like the `simd` kernels (callers capture
/// [`crate::simd::active()`] once). Both lanes are bit-identical — the
/// accumulation is exact `i32` arithmetic either way.
#[inline]
pub fn dot_i8(on: bool, a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::dot_i8(a, b) };
    }
    let _ = on;
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as i32 * y as i32;
    }
    acc
}

/// Quantized matmul: activations `a` (`[n, k]`, per-row scales) times a
/// per-column-quantized weight `bt` (stored transposed, `[m, k]`),
/// yielding `f32` `[n, m]` with one scale multiply per output element.
pub fn matmul_q8(on: bool, a: &QuantizedMatrix, bt: &QuantizedMatrix) -> Tensor {
    assert_eq!(
        a.cols, bt.cols,
        "quantized matmul inner dims: a is [n,{}], w^t is [m,{}]",
        a.cols, bt.cols
    );
    let (n, m) = (a.rows, bt.rows);
    let mut out = vec![0.0f32; n * m];
    // Partitioned over activation rows like the f32 GEMM; every output
    // element is one exact i32 dot regardless of the partition, so the
    // result is bit-identical for any thread count.
    let threads = crate::grain::threads_for_units(
        crate::grain::Work::Madds(n.saturating_mul(a.cols).saturating_mul(m)),
        n,
        1,
    );
    crate::par::for_chunks(&mut out, m.max(1), threads, |i0, chunk| {
        for (i, orow) in chunk
            .chunks_mut(m.max(1))
            .enumerate()
            .map(|(k, c)| (i0 + k, c))
        {
            let ar = a.row(i);
            let asc = a.scales[i];
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if on {
                unsafe { avx::matmul_row(ar, asc, bt, orow) };
                continue;
            }
            for (j, slot) in orow.iter_mut().enumerate() {
                let acc = dot_i8(on, ar, bt.row(j));
                *slot = acc as f32 * (asc * bt.scales[j]);
            }
        }
    });
    ntr_obs::quant::record_matmul(n as u64);
    Tensor::from_vec(out, &[n, m])
}

/// Quantize-then-matmul convenience for one activation tensor against a
/// pre-quantized weight: `x: [n, k]` × `wq` (from [`quantize_cols`]).
pub fn matmul_quantized(on: bool, x: &Tensor, wq: &QuantizedMatrix) -> Tensor {
    let xq = quantize_rows(x);
    ntr_obs::quant::record_rows(xq.rows as u64);
    matmul_q8(on, &xq, wq)
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx {
    //! AVX2 lane: 16 `i8` at a time, widened to `i16` and multiply-added
    //! pairwise into `i32` lanes (`_mm256_madd_epi16`). Products are
    //! `≤ 127² = 16129`, so the pairwise `i16×i16+i16×i16 → i32` step
    //! cannot overflow; the `i32` lane accumulator is exact for any
    //! realistic `k` (overflow needs `k > 2²⁶`).

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        use core::arch::x86_64::*;
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
            let wa = _mm256_cvtepi8_epi16(va);
            let wb = _mm256_cvtepi8_epi16(vb);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
            i += 16;
        }
        let lo = _mm256_castsi256_si128(acc);
        let hi = _mm256_extracti128_si256(acc, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        let mut sum = _mm_cvtsi128_si32(s);
        while i < n {
            sum += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
            i += 1;
        }
        sum
    }

    /// Quantizes one row: `out[i] = clamp(rte(row[i]·inv), ±127)` with
    /// `NaN → 0`, bit-identical to the scalar loop in
    /// `quantize_row_into`: `mulps` rounds like the scalar multiply,
    /// `cvtps` rounds to nearest-even exactly like `round_ties_even`,
    /// and clamping *before* the convert agrees with rounding before the
    /// clamp because the ±127 bounds are exactly representable.
    #[target_feature(enable = "avx2")]
    pub unsafe fn quantize_row(row: &[f32], inv: f32, out: &mut [i8]) {
        use core::arch::x86_64::*;
        let n = row.len();
        let vinv = _mm256_set1_ps(inv);
        let lo = _mm256_set1_ps(-super::QMAX);
        let hi = _mm256_set1_ps(super::QMAX);
        let mut buf = [0i32; 8];
        let mut i = 0;
        while i + 8 <= n {
            let t = _mm256_mul_ps(_mm256_loadu_ps(row.as_ptr().add(i)), vinv);
            // NaN → 0 via the ordered-compare mask (±Inf is ordered and
            // passes through), then the clamp saturates ±Inf to ±127.
            let t = _mm256_and_ps(t, _mm256_cmp_ps(t, t, _CMP_ORD_Q));
            let t = _mm256_max_ps(_mm256_min_ps(t, hi), lo);
            _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, _mm256_cvtps_epi32(t));
            for (slot, &q) in out.get_unchecked_mut(i..i + 8).iter_mut().zip(&buf) {
                *slot = q as i8;
            }
            i += 8;
        }
        while i < n {
            let v = *row.get_unchecked(i);
            *out.get_unchecked_mut(i) =
                (v * inv).round_ties_even().clamp(-super::QMAX, super::QMAX) as i8;
            i += 1;
        }
    }

    /// One output row of the quantized matmul: `orow[j] = (ar · bt[j]) ·
    /// asc·scale[j]` for every output column `j`. Four columns per pass,
    /// so the widened activation loads are shared and the horizontal
    /// reduction is a single 4-way transpose-reduce per group instead of
    /// one per dot — and the whole row runs inside one `target_feature`
    /// call rather than one per output element. All-integer accumulation,
    /// so still bit-identical to [`super::dot_i8`]'s scalar lane.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul_row(ar: &[i8], asc: f32, bt: &super::QuantizedMatrix, orow: &mut [f32]) {
        use core::arch::x86_64::*;
        let k = ar.len();
        let m = bt.rows;
        let mut j = 0;
        while j + 4 <= m {
            let b0 = bt.row(j).as_ptr();
            let b1 = bt.row(j + 1).as_ptr();
            let b2 = bt.row(j + 2).as_ptr();
            let b3 = bt.row(j + 3).as_ptr();
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let mut i = 0;
            while i + 16 <= k {
                let va =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(ar.as_ptr().add(i) as *const __m128i));
                let w0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b0.add(i) as *const __m128i));
                let w1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b1.add(i) as *const __m128i));
                let w2 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b2.add(i) as *const __m128i));
                let w3 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b3.add(i) as *const __m128i));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, w0));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, w1));
                acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(va, w2));
                acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(va, w3));
                i += 16;
            }
            // hadd twice interleaves the four accumulators' pair-sums,
            // then folding the 128-bit lanes leaves [Σacc0, Σacc1, Σacc2,
            // Σacc3] — integer adds throughout, so exact.
            let s01 = _mm256_hadd_epi32(acc0, acc1);
            let s23 = _mm256_hadd_epi32(acc2, acc3);
            let s = _mm256_hadd_epi32(s01, s23);
            let sums = _mm_add_epi32(_mm256_castsi256_si128(s), _mm256_extracti128_si256(s, 1));
            let mut dots = [0i32; 4];
            _mm_storeu_si128(dots.as_mut_ptr() as *mut __m128i, sums);
            while i < k {
                let a = *ar.get_unchecked(i) as i32;
                dots[0] += a * *b0.add(i) as i32;
                dots[1] += a * *b1.add(i) as i32;
                dots[2] += a * *b2.add(i) as i32;
                dots[3] += a * *b3.add(i) as i32;
                i += 1;
            }
            for (t, &d) in dots.iter().enumerate() {
                orow[j + t] = d as f32 * (asc * bt.scales[j + t]);
            }
            j += 4;
        }
        while j < m {
            orow[j] = dot_i8(ar, bt.row(j)) as f32 * (asc * bt.scales[j]);
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn all_zero_row_gets_scale_zero_and_round_trips_to_zero() {
        let x = t(&[0.0, 0.0, 0.0, 1.0, -2.0, 3.0], &[2, 3]);
        let q = quantize_rows(&x);
        assert_eq!(q.scales[0], 0.0);
        assert_eq!(&q.data[..3], &[0, 0, 0]);
        let back = q.dequantize();
        assert_eq!(&back.data()[..3], &[0.0, 0.0, 0.0]);
        // The non-zero row keeps its extremes exactly.
        assert_eq!(back.at(&[1, 2]), 3.0);
    }

    #[test]
    fn non_finite_inputs_saturate_without_poisoning_the_scale() {
        let x = t(&[f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 4.0], &[1, 4]);
        let q = quantize_rows(&x);
        // Scale comes from the finite 4.0 alone.
        assert_eq!(q.scales[0], 4.0 / QMAX);
        assert_eq!(q.data, vec![0, 127, -127, 127]);
    }

    #[test]
    fn row_with_no_finite_elements_is_all_zero() {
        let x = t(&[f32::NAN, f32::INFINITY], &[1, 2]);
        let q = quantize_rows(&x);
        assert_eq!(q.scales[0], 0.0);
        assert_eq!(q.data, vec![0, 0]);
    }

    #[test]
    fn clamp_is_symmetric_minus_128_never_appears() {
        // -1.0 is the row max by magnitude, so it maps to exactly -127.
        let x = t(&[-1.0, 0.999, 1.0], &[1, 3]);
        let q = quantize_rows(&x);
        assert!(q.data.iter().all(|&v| v >= -127));
        assert_eq!(q.data[0], -127);
        assert_eq!(q.data[2], 127);
    }

    #[test]
    fn quantized_matmul_tracks_f32_within_tolerance() {
        let x = Tensor::from_fn(&[5, 16], |i| ((i * 37 % 23) as f32 - 11.0) / 7.0);
        let w = Tensor::from_fn(&[16, 8], |i| ((i * 17 % 19) as f32 - 9.0) / 5.0);
        let exact = x.matmul(&w);
        let approx = matmul_quantized(simd::active(), &x, &quantize_cols(&w));
        for (e, a) in exact.data().iter().zip(approx.data()) {
            // Per-element error bound: k * (sa/2) * (sb/2) + cross terms —
            // generous 2% of the max magnitude here.
            assert!(
                (e - a).abs() <= 0.02 * 16.0,
                "quantized {a} too far from exact {e}"
            );
        }
    }

    use crate::simd;

    #[test]
    fn simd_and_scalar_lanes_are_bit_identical() {
        let x = Tensor::from_fn(&[7, 33], |i| ((i * 13 % 31) as f32 - 15.0) / 3.0);
        let w = Tensor::from_fn(&[33, 9], |i| ((i * 29 % 17) as f32 - 8.0) / 4.0);
        let wq = quantize_cols(&w);
        let fast = matmul_quantized(simd::active(), &x, &wq);
        let slow = simd::force_scalar(|| matmul_quantized(simd::active(), &x, &wq));
        assert_eq!(
            fast.data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u32>>(),
            slow.data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u32>>(),
            "int8 matmul must be integer-exact across lanes"
        );
    }

    #[test]
    fn quantize_lanes_are_bit_identical() {
        // 103 elements exercises both the 8-wide body and the tail; the
        // planted max of 127.0 makes `inv = 1.0`, so the 2.5/3.5/-2.5
        // entries hit exact ties (nearest-even: 2, 4, -2) in both lanes.
        let mut vals: Vec<f32> = (0..103)
            .map(|i| ((i * 29 % 41) as f32 - 20.0) / 3.0)
            .collect();
        vals[3] = f32::NAN;
        vals[17] = f32::INFINITY;
        vals[31] = f32::NEG_INFINITY;
        vals[40] = 127.0;
        vals[41] = 2.5;
        vals[42] = 3.5;
        vals[43] = -2.5;
        let x = Tensor::from_vec(vals, &[1, 103]);
        let fast = quantize_rows(&x);
        let slow = simd::force_scalar(|| quantize_rows(&x));
        assert_eq!(fast, slow, "quantization must be lane-exact");
        assert_eq!(fast.data[41], 2, "ties must round to even");
        assert_eq!(fast.data[42], 4, "ties must round to even");
        assert_eq!(fast.data[43], -2, "ties must round to even");
    }

    #[test]
    fn dot_i8_handles_every_tail_length() {
        for n in 0..40usize {
            let a: Vec<i8> = (0..n).map(|i| (i as i32 % 255 - 127) as i8).collect();
            let b: Vec<i8> = (0..n).map(|i| ((i * 7) as i32 % 255 - 127) as i8).collect();
            let reference: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
            assert_eq!(dot_i8(simd::active(), &a, &b), reference, "n={n}");
            assert_eq!(dot_i8(false, &a, &b), reference, "n={n} scalar");
        }
    }

    #[test]
    fn extreme_magnitude_dot_does_not_overflow() {
        // 4096 × (-127 × 127) = -66 064 384, far inside i32.
        let a = vec![127i8; 4096];
        let b = vec![-127i8; 4096];
        assert_eq!(dot_i8(simd::active(), &a, &b), 4096 * -127 * 127);
    }
}
