//! Binary-I/O building blocks for checkpoint files: CRC-32 integrity
//! hashing and bounds-checked little-endian readers/writers.
//!
//! These live in `ntr-tensor` (the workspace's dependency root) so every
//! crate that serializes tensors — `ntr-nn`'s checkpoint format first of
//! all — shares one audited implementation. Nothing here allocates
//! proportionally to *declared* sizes: readers hand out slices of the
//! underlying buffer and let callers validate lengths before they allocate,
//! which is what makes hostile headers harmless.

use std::io::{self, Write};

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
///
/// Detects all single-bit and all burst errors up to 32 bits, which is the
/// property the checkpoint fault-injection suite leans on: any flipped bit
/// in a section or in the file image fails its checksum.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// A [`Write`] adapter that feeds every written byte through a [`Crc32`]
/// and counts bytes, so a writer can emit a trailing checksum over exactly
/// what reached the stream.
pub struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
    written: u64,
}

impl<W: Write> CrcWriter<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
            written: 0,
        }
    }

    /// Checksum of all bytes written so far.
    pub fn crc(&self) -> u32 {
        self.crc.finish()
    }

    /// Bytes written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The inner writer (e.g. to append bytes excluded from the checksum).
    pub fn inner_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Error from [`ByteReader`]: a read past the end of the buffer. Carries
/// enough context for a useful "truncated file" message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortRead {
    /// Bytes the caller asked for.
    pub needed: usize,
    /// Bytes actually remaining.
    pub remaining: usize,
}

impl std::fmt::Display for ShortRead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "truncated input: needed {} byte(s), {} remaining",
            self.needed, self.remaining
        )
    }
}

impl std::error::Error for ShortRead {}

/// Bounds-checked little-endian cursor over an in-memory buffer.
///
/// Every accessor returns [`ShortRead`] instead of panicking or allocating
/// when the buffer is shorter than a declared length, so parsers built on
/// it degrade to clean format errors on truncated or hostile input.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether the cursor consumed the whole buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes as a slice without copying.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ShortRead> {
        if n > self.remaining() {
            return Err(ShortRead {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ShortRead> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ShortRead> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Next little-endian `f32` (bit-exact, NaNs preserved).
    pub fn f32(&mut self) -> Result<f32, ShortRead> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Next `n` little-endian `f32`s. The length is validated against the
    /// remaining buffer *before* the vector is allocated, so a hostile
    /// length can not trigger a huge allocation.
    pub fn f32s(&mut self, n: usize) -> Result<Vec<f32>, ShortRead> {
        let needed = n.checked_mul(4).ok_or(ShortRead {
            needed: usize::MAX,
            remaining: self.remaining(),
        })?;
        let bytes = self.take(needed)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_incremental_equals_oneshot() {
        let mut h = Crc32::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish(), crc32(b"hello world"));
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let base = b"the quick brown fox".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut corrupt = base.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), reference, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn crc_writer_tracks_bytes_and_crc() {
        let mut w = CrcWriter::new(Vec::new());
        w.write_all(b"123456789").unwrap();
        assert_eq!(w.written(), 9);
        assert_eq!(w.crc(), 0xCBF4_3926);
        assert_eq!(w.into_inner(), b"123456789");
    }

    #[test]
    fn byte_reader_reads_and_bounds_checks() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&0xDEAD_BEEF_u64.to_le_bytes());
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert!(r.is_empty());
        let err = r.u32().unwrap_err();
        assert_eq!(err.needed, 4);
        assert_eq!(err.remaining, 0);
    }

    #[test]
    fn byte_reader_rejects_hostile_lengths_without_allocating() {
        let buf = [0u8; 8];
        let mut r = ByteReader::new(&buf);
        // A declared length of u32::MAX f32s would be a 16 GiB allocation if
        // trusted; the reader refuses before allocating.
        assert!(r.f32s(u32::MAX as usize).is_err());
        // Overflow-safe even at usize::MAX.
        assert!(r.clone().f32s(usize::MAX).is_err());
        assert_eq!(r.remaining(), 8, "failed read consumes nothing");
    }

    #[test]
    fn f32_bits_roundtrip_including_nan() {
        let vals = [0.0f32, -0.0, 1.0, f32::NAN, f32::INFINITY, f32::MIN];
        let mut buf = Vec::new();
        for v in vals {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let mut r = ByteReader::new(&buf);
        for v in vals {
            assert_eq!(r.f32().unwrap().to_bits(), v.to_bits());
        }
    }
}
