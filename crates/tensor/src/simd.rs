//! Explicit SIMD micro-kernels (`core::arch`) behind the `simd` feature.
//!
//! Compiled out entirely unless the crate is built with
//! `--features simd`. At runtime the accelerated paths additionally
//! require CPU support (AVX2 + FMA on x86_64, checked once; NEON on
//! aarch64 is baseline) and can be vetoed by `NTR_SIMD=0` or, per thread,
//! by [`force_scalar`]. Every public helper here takes an explicit `on:
//! bool` — callers capture [`active`] **once per kernel invocation** and
//! pass it down, so the thread-local veto taken on the dispatching thread
//! propagates correctly into pool-worker chunk closures.
//!
//! ## Determinism policy
//!
//! Helpers fall into two classes, and every scalar fallback replicates the
//! exact operation order of the pre-SIMD code so that default builds and
//! `NTR_SIMD=0` runs stay bit-identical to the PR-1 kernels:
//!
//! * **Bit-identical** — element-wise maps with one independent output per
//!   input lane (`add_assign`, `mul_assign`, `axpy`, `shift_scale`,
//!   `affine`, `div_assign_scalar`, `sub_assign_scalar`, row-`max`):
//!   vector lanes perform the same single rounding as the scalar loop, so
//!   SIMD on/off produces the same bits. (`axpy` and `affine` deliberately
//!   use separate multiply + add, not FMA, to preserve this.)
//! * **Tolerance-bounded** — reductions and the GEMM micro-kernel (`sum`,
//!   `sum_sq`, `sq_dev_sum`, `sum_and_dot`, `dot`, [`gemm_block`]): lane
//!   accumulators reassociate the sum, and the GEMM uses FMA (one rounding
//!   where the scalar path has two). Results differ from scalar in the
//!   last ulps; the `simd_equivalence` proptest suite bounds the error.
//!   Within one build+flag configuration they remain bit-identical across
//!   thread counts, because each output element's operation sequence
//!   depends only on shapes, never on the partition.
//!
//! Golden tests that pin scalar fingerprints wrap themselves in
//! [`force_scalar`]; that is the documented determinism boundary.

#![allow(clippy::missing_safety_doc)]

use std::cell::Cell;

thread_local! {
    /// Thread-local scalar veto depth (tests, golden fingerprints).
    static FORCE_SCALAR: Cell<u32> = const { Cell::new(0) };
}

/// True when the crate was built with the `simd` feature.
#[inline]
pub fn compiled() -> bool {
    cfg!(feature = "simd")
}

/// Whether the accelerated paths may run on this thread right now:
/// compiled in, CPU-supported, not vetoed by `NTR_SIMD=0`/`off`, and not
/// inside a [`force_scalar`] scope. Capture once per kernel call and pass
/// the result into chunk closures.
#[inline]
pub fn active() -> bool {
    supported() && env_enabled() && FORCE_SCALAR.with(|c| c.get()) == 0
}

/// True when the current thread is inside a [`force_scalar`] scope.
/// Dispatchers capture this so pool workers inherit the veto.
#[inline]
pub(crate) fn vetoed() -> bool {
    FORCE_SCALAR.with(|c| c.get()) > 0
}

/// Runs `f` with [`active`] forced to `false` on the current thread
/// (restored on exit, including unwind; nests). Used by tests comparing
/// SIMD against scalar in one process and by golden tests pinning scalar
/// fingerprints.
pub fn force_scalar<R>(f: impl FnOnce() -> R) -> R {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SCALAR.with(|c| c.set(c.get() - 1));
        }
    }
    FORCE_SCALAR.with(|c| c.set(c.get() + 1));
    let _restore = Restore;
    f()
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn supported() -> bool {
    static SUPPORTED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SUPPORTED.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
#[inline]
fn supported() -> bool {
    true // NEON is baseline for aarch64.
}

#[cfg(not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))))]
#[inline]
fn supported() -> bool {
    false
}

#[inline]
fn env_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("NTR_SIMD").as_deref().map(str::trim),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

// ---------------------------------------------------------------------
// Bit-identical element-wise kernels
// ---------------------------------------------------------------------

/// `a[i] += b[i]`.
#[inline]
pub fn add_assign(on: bool, a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::add_assign(a, b) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if on {
        return unsafe { neon::add_assign(a, b) };
    }
    let _ = on;
    for (x, &y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// `a[i] *= b[i]`.
#[inline]
pub fn mul_assign(on: bool, a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::mul_assign(a, b) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if on {
        return unsafe { neon::mul_assign(a, b) };
    }
    let _ = on;
    for (x, &y) in a.iter_mut().zip(b) {
        *x *= y;
    }
}

/// `a[i] += s·b[i]` (separate multiply + add — bit-identical to scalar).
#[inline]
pub fn axpy(on: bool, a: &mut [f32], s: f32, b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::axpy(a, s, b) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if on {
        return unsafe { neon::axpy(a, s, b) };
    }
    let _ = on;
    for (x, &y) in a.iter_mut().zip(b) {
        *x += s * y;
    }
}

/// `dst[i] = (src[i] - sub) · scale` — the layernorm normalize pass.
#[inline]
pub fn shift_scale(on: bool, dst: &mut [f32], src: &[f32], sub: f32, scale: f32) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::shift_scale(dst, src, sub, scale) };
    }
    let _ = on;
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = (v - sub) * scale;
    }
}

/// `out[i] = g[i]·x[i] + b[i]` — the layernorm affine pass (separate
/// multiply + add — bit-identical to scalar).
#[inline]
pub fn affine(on: bool, out: &mut [f32], x: &[f32], g: &[f32], b: &[f32]) {
    debug_assert!(out.len() == x.len() && x.len() == g.len() && g.len() == b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::affine(out, x, g, b) };
    }
    let _ = on;
    for i in 0..out.len() {
        out[i] = g[i] * x[i] + b[i];
    }
}

/// `dst[i] = a[i]·b[i]`.
#[inline]
pub fn mul_into(on: bool, dst: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert!(dst.len() == a.len() && a.len() == b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::mul_into(dst, a, b) };
    }
    let _ = on;
    for i in 0..dst.len() {
        dst[i] = a[i] * b[i];
    }
}

/// `x[i] /= d` — the softmax normalize pass.
#[inline]
pub fn div_assign_scalar(on: bool, xs: &mut [f32], d: f32) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::div_assign_scalar(xs, d) };
    }
    let _ = on;
    for x in xs.iter_mut() {
        *x /= d;
    }
}

/// `x[i] -= s` — the log-softmax shift pass.
#[inline]
pub fn sub_assign_scalar(on: bool, xs: &mut [f32], s: f32) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::sub_assign_scalar(xs, s) };
    }
    let _ = on;
    for x in xs.iter_mut() {
        *x -= s;
    }
}

/// `dst[i] = s·(dyh[i] - m1 - xh[i]·m2)` — the layernorm input-gradient
/// row (same op order as the scalar loop).
#[inline]
pub fn ln_dx_row(on: bool, dst: &mut [f32], dyh: &[f32], xh: &[f32], s: f32, m1: f32, m2: f32) {
    debug_assert!(dst.len() == dyh.len() && dyh.len() == xh.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::ln_dx_row(dst, dyh, xh, s, m1, m2) };
    }
    let _ = on;
    for i in 0..dst.len() {
        dst[i] = s * (dyh[i] - m1 - xh[i] * m2);
    }
}

/// Row maximum with `f32::max` NaN-skipping semantics (NaN inputs never
/// become the result unless every input is NaN-free… i.e. never).
/// Returns `-inf` for an empty slice. Bit-identical to the scalar fold.
#[inline]
pub fn max(on: bool, xs: &[f32]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::max(xs) };
    }
    let _ = on;
    xs.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

// ---------------------------------------------------------------------
// Tolerance-bounded reductions
// ---------------------------------------------------------------------

/// Sequential-order sum (scalar) / 4-lane-vector reassociated sum (SIMD).
#[inline]
pub fn sum(on: bool, xs: &[f32]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::sum(xs) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if on {
        return unsafe { neon::sum(xs) };
    }
    let _ = on;
    xs.iter().sum()
}

/// `Σ x[i]²` (scalar fallback is the sequential `map(x·x).sum()` order).
#[inline]
pub fn sum_sq(on: bool, xs: &[f32]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::sum_sq(xs) };
    }
    let _ = on;
    xs.iter().map(|&x| x * x).sum()
}

/// `Σ (x[i] - mean)²` — the layernorm variance numerator.
#[inline]
pub fn sq_dev_sum(on: bool, xs: &[f32], mean: f32) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::sq_dev_sum(xs, mean) };
    }
    let _ = on;
    xs.iter().map(|&v| (v - mean) * (v - mean)).sum()
}

/// `(Σ a[i], Σ a[i]·b[i])` in one pass — the layernorm backward row
/// moments (scalar fallback replicates the original fused loop exactly).
#[inline]
pub fn sum_and_dot(on: bool, a: &[f32], b: &[f32]) -> (f32, f32) {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::sum_and_dot(a, b) };
    }
    let _ = on;
    let (mut s, mut d) = (0.0f32, 0.0f32);
    for i in 0..a.len() {
        s += a[i];
        d += a[i] * b[i];
    }
    (s, d)
}

/// Dot product. The scalar fallback is the crate's original manually
/// 4-way-unrolled loop; the SIMD path uses 8-lane FMA.
#[inline]
pub fn dot(on: bool, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if on {
        return unsafe { avx::dot(a, b) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if on {
        return unsafe { neon::dot(a, b) };
    }
    let _ = on;
    scalar_dot(a, b)
}

/// The original 4-accumulator unrolled dot: reliable autovectorization
/// without `unsafe`, and the pinned scalar reference order.
pub(crate) fn scalar_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

// ---------------------------------------------------------------------
// GEMM micro-kernel
// ---------------------------------------------------------------------

/// Whether [`gemm_block`] has an accelerated implementation for this
/// build/arch (the aarch64 port covers element-wise kernels only).
#[inline]
pub fn has_gemm() -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64"))
}

/// FMA-accelerated GEMM core: `out: [rows, n] += a: [rows, k] · b: [k, n]`,
/// k blocked into `KC` panels, `MR = 4` rows per pass, 16/8-wide column
/// tiles with an `f32::mul_add` column tail. Every output element is
/// accumulated k-sequentially with fused multiply-adds, so results are
/// invariant to row partitioning and tile placement (bit-identical for any
/// thread count) while differing from the unfused scalar path in the last
/// ulps.
///
/// Caller must have verified [`active`]`()` (which implies CPU support).
pub fn gemm_block(out: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        unsafe { avx::gemm_block(out, a, b, k, n) }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = (out, a, b, k, n);
        unreachable!("simd::gemm_block called without an accelerated implementation");
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx {
    //! AVX2/FMA implementations. All `unsafe fn`s here require AVX2 (+FMA
    //! for `dot`/`gemm_block`), guaranteed by `supported()` before any
    //! call; slices are read/written only in-bounds.

    use core::arch::x86_64::*;

    /// k-panel length, matching the scalar GEMM's cache blocking.
    const KC: usize = 256;

    #[inline]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let q = _mm_add_ps(lo, hi);
        let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let s = _mm_add_ss(d, _mm_shuffle_ps(d, d, 1));
        _mm_cvtss_f32(s)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign(a: &mut [f32], b: &[f32]) {
        let n = a.len();
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(a.as_ptr().add(i));
            let y = _mm256_loadu_ps(b.as_ptr().add(i));
            _mm256_storeu_ps(a.as_mut_ptr().add(i), _mm256_add_ps(x, y));
            i += 8;
        }
        while i < n {
            a[i] += b[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_assign(a: &mut [f32], b: &[f32]) {
        let n = a.len();
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(a.as_ptr().add(i));
            let y = _mm256_loadu_ps(b.as_ptr().add(i));
            _mm256_storeu_ps(a.as_mut_ptr().add(i), _mm256_mul_ps(x, y));
            i += 8;
        }
        while i < n {
            a[i] *= b[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(a: &mut [f32], s: f32, b: &[f32]) {
        let n = a.len();
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(a.as_ptr().add(i));
            let y = _mm256_loadu_ps(b.as_ptr().add(i));
            // mul then add (not FMA): same two roundings as the scalar path.
            let r = _mm256_add_ps(x, _mm256_mul_ps(sv, y));
            _mm256_storeu_ps(a.as_mut_ptr().add(i), r);
            i += 8;
        }
        while i < n {
            a[i] += s * b[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn shift_scale(dst: &mut [f32], src: &[f32], sub: f32, scale: f32) {
        let n = dst.len();
        let sv = _mm256_set1_ps(sub);
        let cv = _mm256_set1_ps(scale);
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(src.as_ptr().add(i));
            let r = _mm256_mul_ps(_mm256_sub_ps(x, sv), cv);
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), r);
            i += 8;
        }
        while i < n {
            dst[i] = (src[i] - sub) * scale;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn affine(out: &mut [f32], x: &[f32], g: &[f32], b: &[f32]) {
        let n = out.len();
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let gv = _mm256_loadu_ps(g.as_ptr().add(i));
            let bv = _mm256_loadu_ps(b.as_ptr().add(i));
            let r = _mm256_add_ps(_mm256_mul_ps(gv, xv), bv);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), r);
            i += 8;
        }
        while i < n {
            out[i] = g[i] * x[i] + b[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_into(dst: &mut [f32], a: &[f32], b: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(a.as_ptr().add(i));
            let y = _mm256_loadu_ps(b.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_mul_ps(x, y));
            i += 8;
        }
        while i < n {
            dst[i] = a[i] * b[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn div_assign_scalar(xs: &mut [f32], d: f32) {
        let n = xs.len();
        let dv = _mm256_set1_ps(d);
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(xs.as_ptr().add(i));
            _mm256_storeu_ps(xs.as_mut_ptr().add(i), _mm256_div_ps(x, dv));
            i += 8;
        }
        while i < n {
            xs[i] /= d;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_assign_scalar(xs: &mut [f32], s: f32) {
        let n = xs.len();
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(xs.as_ptr().add(i));
            _mm256_storeu_ps(xs.as_mut_ptr().add(i), _mm256_sub_ps(x, sv));
            i += 8;
        }
        while i < n {
            xs[i] -= s;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn ln_dx_row(dst: &mut [f32], dyh: &[f32], xh: &[f32], s: f32, m1: f32, m2: f32) {
        let n = dst.len();
        let sv = _mm256_set1_ps(s);
        let m1v = _mm256_set1_ps(m1);
        let m2v = _mm256_set1_ps(m2);
        let mut i = 0;
        while i + 8 <= n {
            let dy = _mm256_loadu_ps(dyh.as_ptr().add(i));
            let xv = _mm256_loadu_ps(xh.as_ptr().add(i));
            // s·(dyh − m1 − xh·m2), multiplies unfused to mirror scalar.
            let inner = _mm256_sub_ps(_mm256_sub_ps(dy, m1v), _mm256_mul_ps(xv, m2v));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_mul_ps(sv, inner));
            i += 8;
        }
        while i < n {
            dst[i] = s * (dyh[i] - m1 - xh[i] * m2);
            i += 1;
        }
    }

    /// `f32::max`-fold semantics: a lane only replaces the accumulator on
    /// a strict ordered greater-than, so NaN never enters the result.
    #[target_feature(enable = "avx2")]
    pub unsafe fn max(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut acc = f32::NEG_INFINITY;
        let mut i = 0;
        if n >= 8 {
            let mut accv = _mm256_set1_ps(f32::NEG_INFINITY);
            while i + 8 <= n {
                let x = _mm256_loadu_ps(xs.as_ptr().add(i));
                let gt = _mm256_cmp_ps(x, accv, _CMP_GT_OQ);
                accv = _mm256_blendv_ps(accv, x, gt);
                i += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), accv);
            for l in lanes {
                acc = acc.max(l);
            }
        }
        while i < n {
            acc = acc.max(xs[i]);
            i += 1;
        }
        acc
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut i = 0;
        let mut total = 0.0f32;
        if n >= 32 {
            let mut acc = [_mm256_setzero_ps(); 4];
            while i + 32 <= n {
                for (l, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_add_ps(*a, _mm256_loadu_ps(xs.as_ptr().add(i + 8 * l)));
                }
                i += 32;
            }
            let v = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
            total = hsum(v);
        }
        while i < n {
            total += xs[i];
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sum_sq(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut i = 0;
        let mut total = 0.0f32;
        if n >= 8 {
            let mut acc = _mm256_setzero_ps();
            while i + 8 <= n {
                let x = _mm256_loadu_ps(xs.as_ptr().add(i));
                acc = _mm256_fmadd_ps(x, x, acc);
                i += 8;
            }
            total = hsum(acc);
        }
        while i < n {
            total += xs[i] * xs[i];
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sq_dev_sum(xs: &[f32], mean: f32) -> f32 {
        let n = xs.len();
        let mv = _mm256_set1_ps(mean);
        let mut i = 0;
        let mut total = 0.0f32;
        if n >= 8 {
            let mut acc = _mm256_setzero_ps();
            while i + 8 <= n {
                let d = _mm256_sub_ps(_mm256_loadu_ps(xs.as_ptr().add(i)), mv);
                acc = _mm256_fmadd_ps(d, d, acc);
                i += 8;
            }
            total = hsum(acc);
        }
        while i < n {
            let d = xs[i] - mean;
            total += d * d;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sum_and_dot(a: &[f32], b: &[f32]) -> (f32, f32) {
        let n = a.len();
        let mut i = 0;
        let (mut s, mut d) = (0.0f32, 0.0f32);
        if n >= 8 {
            let mut sv = _mm256_setzero_ps();
            let mut dv = _mm256_setzero_ps();
            while i + 8 <= n {
                let av = _mm256_loadu_ps(a.as_ptr().add(i));
                let bv = _mm256_loadu_ps(b.as_ptr().add(i));
                sv = _mm256_add_ps(sv, av);
                dv = _mm256_fmadd_ps(av, bv, dv);
                i += 8;
            }
            s = hsum(sv);
            d = hsum(dv);
        }
        while i < n {
            s += a[i];
            d += a[i] * b[i];
            i += 1;
        }
        (s, d)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let mut i = 0;
        let mut total = 0.0f32;
        if n >= 16 {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            while i + 16 <= n {
                let a0 = _mm256_loadu_ps(a.as_ptr().add(i));
                let b0 = _mm256_loadu_ps(b.as_ptr().add(i));
                let a1 = _mm256_loadu_ps(a.as_ptr().add(i + 8));
                let b1 = _mm256_loadu_ps(b.as_ptr().add(i + 8));
                acc0 = _mm256_fmadd_ps(a0, b0, acc0);
                acc1 = _mm256_fmadd_ps(a1, b1, acc1);
                i += 16;
            }
            total = hsum(_mm256_add_ps(acc0, acc1));
        }
        while i < n {
            total += a[i] * b[i];
            i += 1;
        }
        total
    }

    /// See [`super::gemm_block`]. `out: [rows, n]`, `a: [rows, k]`,
    /// `b: [k, n]`, all row-major and dense.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemm_block(out: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
        if n == 0 || k == 0 {
            return;
        }
        let rows = out.len() / n;
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for kb in (0..k).step_by(KC) {
            let kc = KC.min(k - kb);
            let mut i = 0;
            // 4-row register blocks.
            while i + 4 <= rows {
                gemm_rows::<4>(op, ap, bp, i, kb, kc, k, n);
                i += 4;
            }
            // Row tail: identical per-element FMA order, one row at a time.
            while i < rows {
                gemm_rows::<1>(op, ap, bp, i, kb, kc, k, n);
                i += 1;
            }
        }
    }

    /// One `R`-row pass over a k-panel: 16-wide, then 8-wide, then scalar
    /// `mul_add` column tiles. Each output element sees one fused
    /// multiply-add per k step, in k order, regardless of tile width.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    unsafe fn gemm_rows<const R: usize>(
        op: *mut f32,
        ap: *const f32,
        bp: *const f32,
        i: usize,
        kb: usize,
        kc: usize,
        k: usize,
        n: usize,
    ) {
        let mut jb = 0;
        while jb + 16 <= n {
            let mut acc0 = [_mm256_setzero_ps(); R];
            let mut acc1 = [_mm256_setzero_ps(); R];
            for r in 0..R {
                acc0[r] = _mm256_loadu_ps(op.add((i + r) * n + jb));
                acc1[r] = _mm256_loadu_ps(op.add((i + r) * n + jb + 8));
            }
            for off in 0..kc {
                let brow = bp.add((kb + off) * n + jb);
                let b0 = _mm256_loadu_ps(brow);
                let b1 = _mm256_loadu_ps(brow.add(8));
                for r in 0..R {
                    let av = _mm256_set1_ps(*ap.add((i + r) * k + kb + off));
                    acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
                    acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
                }
            }
            for r in 0..R {
                _mm256_storeu_ps(op.add((i + r) * n + jb), acc0[r]);
                _mm256_storeu_ps(op.add((i + r) * n + jb + 8), acc1[r]);
            }
            jb += 16;
        }
        while jb + 8 <= n {
            let mut acc = [_mm256_setzero_ps(); R];
            for r in 0..R {
                acc[r] = _mm256_loadu_ps(op.add((i + r) * n + jb));
            }
            for off in 0..kc {
                let b0 = _mm256_loadu_ps(bp.add((kb + off) * n + jb));
                for r in 0..R {
                    let av = _mm256_set1_ps(*ap.add((i + r) * k + kb + off));
                    acc[r] = _mm256_fmadd_ps(av, b0, acc[r]);
                }
            }
            for r in 0..R {
                _mm256_storeu_ps(op.add((i + r) * n + jb), acc[r]);
            }
            jb += 8;
        }
        while jb < n {
            for r in 0..R {
                let mut acc = *op.add((i + r) * n + jb);
                for off in 0..kc {
                    let av = *ap.add((i + r) * k + kb + off);
                    let bv = *bp.add((kb + off) * n + jb);
                    acc = av.mul_add(bv, acc);
                }
                *op.add((i + r) * n + jb) = acc;
            }
            jb += 1;
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon {
    //! NEON port of the element-wise basics (the GEMM micro-kernel falls
    //! back to scalar on aarch64 — see [`super::has_gemm`]).

    use core::arch::aarch64::*;

    pub unsafe fn add_assign(a: &mut [f32], b: &[f32]) {
        let n = a.len();
        let mut i = 0;
        while i + 4 <= n {
            let x = vld1q_f32(a.as_ptr().add(i));
            let y = vld1q_f32(b.as_ptr().add(i));
            vst1q_f32(a.as_mut_ptr().add(i), vaddq_f32(x, y));
            i += 4;
        }
        while i < n {
            a[i] += b[i];
            i += 1;
        }
    }

    pub unsafe fn mul_assign(a: &mut [f32], b: &[f32]) {
        let n = a.len();
        let mut i = 0;
        while i + 4 <= n {
            let x = vld1q_f32(a.as_ptr().add(i));
            let y = vld1q_f32(b.as_ptr().add(i));
            vst1q_f32(a.as_mut_ptr().add(i), vmulq_f32(x, y));
            i += 4;
        }
        while i < n {
            a[i] *= b[i];
            i += 1;
        }
    }

    pub unsafe fn axpy(a: &mut [f32], s: f32, b: &[f32]) {
        let n = a.len();
        let sv = vdupq_n_f32(s);
        let mut i = 0;
        while i + 4 <= n {
            let x = vld1q_f32(a.as_ptr().add(i));
            let y = vld1q_f32(b.as_ptr().add(i));
            // Unfused mul + add to stay bit-identical with scalar.
            vst1q_f32(a.as_mut_ptr().add(i), vaddq_f32(x, vmulq_f32(sv, y)));
            i += 4;
        }
        while i < n {
            a[i] += s * b[i];
            i += 1;
        }
    }

    pub unsafe fn sum(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut i = 0;
        let mut total = 0.0f32;
        if n >= 4 {
            let mut acc = vdupq_n_f32(0.0);
            while i + 4 <= n {
                acc = vaddq_f32(acc, vld1q_f32(xs.as_ptr().add(i)));
                i += 4;
            }
            total = vaddvq_f32(acc);
        }
        while i < n {
            total += xs[i];
            i += 1;
        }
        total
    }

    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let mut i = 0;
        let mut total = 0.0f32;
        if n >= 4 {
            let mut acc = vdupq_n_f32(0.0);
            while i + 4 <= n {
                acc = vfmaq_f32(
                    acc,
                    vld1q_f32(a.as_ptr().add(i)),
                    vld1q_f32(b.as_ptr().add(i)),
                );
                i += 4;
            }
            total = vaddvq_f32(acc);
        }
        while i < n {
            total += a[i] * b[i];
            i += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_nests_and_restores() {
        let outer = active();
        force_scalar(|| {
            assert!(!active());
            force_scalar(|| assert!(!active()));
            assert!(!active());
        });
        assert_eq!(active(), outer);
    }

    #[test]
    fn scalar_fallbacks_match_reference_loops() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.3 - 4.0).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32).cos()).collect();
        let mut x = a.clone();
        add_assign(false, &mut x, &b);
        for i in 0..a.len() {
            assert_eq!(x[i], a[i] + b[i]);
        }
        assert_eq!(sum(false, &a), a.iter().sum::<f32>());
        assert_eq!(dot(false, &a, &b), scalar_dot(&a, &b));
        assert_eq!(
            max(false, &a),
            a.iter().copied().fold(f32::NEG_INFINITY, f32::max)
        );
        assert_eq!(max(false, &[]), f32::NEG_INFINITY);
    }

    // The on/off equivalence of every kernel (including NaN/Inf payloads
    // and non-multiple-of-lane lengths) is covered by the
    // `simd_equivalence` proptest suite in `tests/`.
    #[test]
    fn simd_elementwise_bit_identical_when_available() {
        if !active() {
            return; // scalar build or vetoed — nothing to compare.
        }
        let a: Vec<f32> = (0..1031).map(|i| (i as f32).sin() * 3.0).collect();
        let b: Vec<f32> = (0..1031).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut fast = a.clone();
        let mut slow = a.clone();
        axpy(true, &mut fast, 0.37, &b);
        axpy(false, &mut slow, 0.37, &b);
        assert_eq!(fast, slow, "axpy must be bit-identical");
        assert_eq!(max(true, &a), max(false, &a));
        let (rs, rd) = sum_and_dot(true, &a, &b);
        let (ss, sd) = sum_and_dot(false, &a, &b);
        assert!((rs - ss).abs() <= 1e-3 + ss.abs() * 1e-5);
        assert!((rd - sd).abs() <= 1e-3 + sd.abs() * 1e-5);
    }
}
