//! Reference matmul kernels: the original simple triple-loop implementations.
//!
//! These remain the source of truth for correctness. The tiled, multithreaded
//! kernels in `ops` are property-tested against them, fall back to them below
//! a size threshold (where packing and spawn overhead would dominate), and the
//! benches use them to measure speedups.

use crate::ops::{dims2, dot};
use crate::Tensor;

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`, i-k-j loop order.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (kb, n) = dims2(b, "matmul rhs");
    assert_eq!(k, kb, "matmul: inner dims differ ({k} vs {kb})");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow) {
                *c += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`, k-outer loop order.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (kb, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(k, kb, "matmul_tn: leading dims differ ({k} vs {kb})");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow) {
                *c += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`, row-dot-row.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, kb) = dims2(b, "matmul_nt rhs");
    assert_eq!(k, kb, "matmul_nt: inner dims differ ({k} vs {kb})");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            out[i * n + j] = dot(arow, brow);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · Bᵀ` for `A: [k, m]`, `B: [n, k]`, via explicit transposes.
pub fn matmul_tt(a: &Tensor, b: &Tensor) -> Tensor {
    matmul(&a.transpose(), &b.transpose())
}
