//! The persistent worker pool behind [`crate::par`].
//!
//! PR 1's dispatchers spawned fresh threads per call via
//! [`std::thread::scope`]; at ~25µs per spawn that overhead swamped every
//! kernel below a few hundred microseconds and made `NTR_THREADS=4` *lose*
//! to 1 thread on the benchmark hot paths. This module replaces the
//! per-call spawn with a process-wide pool of parked workers:
//!
//! * **Lazy spawn, park forever.** Workers are spawned on first demand and
//!   grow up to [`MAX_WORKERS`]; when idle they block in a condvar wait
//!   (zero CPU). There is no explicit shutdown — workers are detached and
//!   die with the process, which is safe because they hold no resources
//!   beyond their stacks and never touch caller memory outside a dispatch.
//! * **Shared injector queue.** A dispatch enqueues one [`Job`] per chunk
//!   and wakes the pool; any worker may execute any job. Because every
//!   chunk writes a disjoint region and its arithmetic is
//!   partition-independent, *which* OS thread runs a chunk is
//!   unobservable in the results — so work stealing across concurrent
//!   dispatches (tests, the serve workers) is free.
//! * **Completion latch per dispatch.** The caller runs the last chunk
//!   itself, then blocks on the dispatch's latch until every enqueued job
//!   has finished (deterministic drain: no job of this dispatch is still
//!   running when the dispatcher returns).
//! * **Panic isolation.** A job body that panics is caught *in the
//!   worker's run loop*; the payload is stringified into the latch and the
//!   worker survives to serve the next job, so the pool never needs
//!   rebuilding after a fault. The lowest chunk index wins when several
//!   chunks panic, matching the scoped-thread contract.
//! * **No nested blocking.** A dispatch issued *from inside* a pool worker
//!   (possible only if a kernel closure itself calls a parallel kernel
//!   with an explicit thread count — the `par::max_threads` plumbing
//!   already scales nested parallelism to 1) runs all chunks inline on
//!   that worker instead of enqueuing, which keeps the identical chunk
//!   partition (bit-identical results, same obs counters) and makes
//!   worker-waits-for-worker deadlock impossible.
//!
//! ## Safety
//!
//! This is the one module in the crate that uses `unsafe`. A [`Job`]
//! carries a type-erased pointer to the dispatcher's stack-allocated chunk
//! closure. The lifetime argument is the completion latch: the dispatcher
//! does not return (and therefore the closure and the buffers it borrows
//! do not move or die) until `remaining == 0`, and a worker decrements
//! `remaining` only *after* its last use of the pointer. Chunk
//! disjointness is the caller's obligation, exactly as it was with scoped
//! threads.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard cap on pool size. Dispatches wider than this still complete — the
/// excess chunks queue behind the first `MAX_WORKERS` — they just share
/// workers. Matches `ntr_obs::pool::MAX_TRACKED_WORKERS` so busy-time
/// attribution never folds slots.
pub(crate) const MAX_WORKERS: usize = 64;

/// A chunk closure, type-erased. The pointee lives on the dispatcher's
/// stack and is guaranteed valid until the dispatch latch releases.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is Sync (shared-called from many threads) and the
// latch protocol bounds its lifetime; see module docs.
unsafe impl Send for TaskPtr {}

/// One unit of queued work: run chunk `chunk` of the dispatch owning
/// `latch`.
struct Job {
    task: TaskPtr,
    chunk: usize,
    latch: *const Latch,
}

// SAFETY: `latch` outlives the job by the same argument as `TaskPtr`.
unsafe impl Send for Job {}

/// Per-dispatch completion state: outstanding enqueued jobs plus the
/// lowest-index panic observed so far.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    /// `(chunk index, stringified payload)` of the lowest-index panicking
    /// enqueued chunk.
    panic: Option<(usize, String)>,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Marks one job finished, recording its panic (if any) when it beats
    /// the current lowest chunk index.
    fn complete(&self, chunk: usize, panic: Option<String>) {
        let mut st = self.state.lock().unwrap();
        if let Some(msg) = panic {
            match &st.panic {
                Some((prev, _)) if *prev <= chunk => {}
                _ => st.panic = Some((chunk, msg)),
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Blocks until every enqueued job completed; returns the winning
    /// panic, if any.
    fn wait(&self) -> Option<(usize, String)> {
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.cv.wait(st).unwrap();
        }
        st.panic.clone()
    }
}

struct PoolState {
    queue: VecDeque<Job>,
    spawned: usize,
    idle: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True on threads owned by the pool; nested dispatches from such a
    /// thread run inline instead of enqueuing (see module docs).
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            spawned: 0,
            idle: 0,
        }),
        cv: Condvar::new(),
    })
}

/// True when the current thread is a pool worker.
pub(crate) fn on_worker_thread() -> bool {
    IS_POOL_WORKER.with(|c| c.get())
}

/// The detached worker run loop: pop a job (parking when the queue is
/// empty), run it under `catch_unwind`, report into its latch, repeat
/// forever.
fn worker_loop() {
    IS_POOL_WORKER.with(|c| c.set(true));
    let pool = pool();
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                st.idle += 1;
                st = pool.cv.wait(st).unwrap();
                st.idle -= 1;
            }
        };
        let task = job.task;
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*task.0)(job.chunk) }));
        let panic = result.err().map(crate::par::payload_message);
        // SAFETY: the dispatcher is still blocked in `Latch::wait` (or its
        // own chunk) until this `complete` lands, so the latch is alive.
        unsafe { (*job.latch).complete(job.chunk, panic) };
    }
}

/// Ensures at least `want` workers exist (capped at [`MAX_WORKERS`]) and
/// wakes the pool. Called with jobs already enqueued.
fn ensure_workers_and_wake(want: usize) {
    let pool = pool();
    let mut st = pool.state.lock().unwrap();
    let target = want.min(MAX_WORKERS);
    while st.spawned < target {
        std::thread::Builder::new()
            .name(format!("ntr-pool-{}", st.spawned))
            .spawn(worker_loop)
            .expect("ntr-tensor: failed to spawn pool worker");
        st.spawned += 1;
    }
    drop(st);
    pool.cv.notify_all();
}

/// Runs `task(0..chunks)` across the pool: chunks `0..chunks-1` are
/// enqueued for the workers, the final chunk runs on the calling thread,
/// and the call returns only when every chunk has finished. Returns the
/// lowest-index panic, with the caller's own chunk counting as the
/// highest index.
///
/// Must be called with `chunks >= 2`; single-chunk dispatches are the
/// caller's fast path and never reach the queue.
pub(crate) fn run(chunks: usize, task: &(dyn Fn(usize) + Sync)) -> Option<(usize, String)> {
    debug_assert!(chunks >= 2, "workpool::run wants a real fan-out");
    if on_worker_thread() {
        // Nested dispatch: run every chunk inline, in index order, catching
        // each panic so surviving chunks still drain (identical partition,
        // identical results, no risk of worker-waits-for-worker deadlock).
        let mut first: Option<(usize, String)> = None;
        for c in 0..chunks {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| task(c))) {
                if first.is_none() {
                    first = Some((c, crate::par::payload_message(p)));
                }
            }
        }
        return first;
    }
    let latch = Latch::new(chunks - 1);
    // SAFETY: erase the borrow's lifetime so the fat pointer fits the
    // queue's 'static trait-object type. `run` does not return until the
    // latch drains, so no job outlives the real borrow (module docs).
    let task_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    {
        let pool = pool();
        let mut st = pool.state.lock().unwrap();
        for c in 0..chunks - 1 {
            st.queue.push_back(Job {
                task: TaskPtr(task_static as *const _),
                chunk: c,
                latch: &latch as *const _,
            });
        }
    }
    ensure_workers_and_wake(chunks - 1);
    // The calling thread takes the last chunk instead of blocking idle.
    let mine = catch_unwind(AssertUnwindSafe(|| task(chunks - 1)))
        .err()
        .map(|p| (chunks - 1, crate::par::payload_message(p)));
    // Deterministic drain: every enqueued chunk completes before we return.
    let worker_panic = latch.wait();
    match (worker_panic, mine) {
        (Some(p), _) => Some(p),
        (None, mine) => mine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_executes_every_chunk_exactly_once() {
        for chunks in 2..=12 {
            let hits: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            let r = run(chunks, &|c| {
                hits[c].fetch_add(1, Ordering::SeqCst);
            });
            assert!(r.is_none());
            for (c, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "chunk {c} of {chunks}");
            }
        }
    }

    #[test]
    fn lowest_chunk_index_panic_wins() {
        let r = run(4, &|c| {
            if c != 2 {
                panic!("chunk {c}");
            }
        });
        let (chunk, msg) = r.expect("panic must surface");
        assert_eq!(chunk, 0);
        assert_eq!(msg, "chunk 0");
    }

    #[test]
    fn pool_survives_panics_and_reuses_workers() {
        for round in 0..20 {
            let r = run(4, &|c| {
                if c == 1 {
                    panic!("round {round}");
                }
            });
            assert_eq!(r.unwrap().0, 1);
            let r = run(4, &|_| {});
            assert!(r.is_none(), "round {round}: pool poisoned");
        }
    }

    #[test]
    fn wide_dispatch_beyond_worker_cap_completes() {
        let n = MAX_WORKERS + 30;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let r = run(n, &|c| {
            hits[c].fetch_add(1, Ordering::SeqCst);
        });
        assert!(r.is_none());
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn nested_dispatch_from_worker_runs_inline() {
        let r = run(2, &|outer| {
            if outer == 0 {
                // This chunk runs on a pool worker; the nested dispatch
                // must complete inline without deadlocking.
                let inner_hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
                let nested = run(3, &|c| {
                    inner_hits[c].fetch_add(1, Ordering::SeqCst);
                });
                assert!(nested.is_none());
                assert!(inner_hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
            }
        });
        assert!(r.is_none());
    }
}
