//! Dependency-free data parallelism on a persistent worker pool.
//!
//! Every parallel kernel in this crate partitions its *output* buffer into
//! disjoint `&mut` chunks along a unit boundary (a matrix row, or a single
//! element for flat element-wise work) and hands each chunk to one pool
//! worker. Because each output unit is computed by exactly one thread using
//! the same sequential instruction order as the single-threaded kernel, the
//! results are **bit-identical regardless of thread count** — `NTR_THREADS=1`
//! reproduces the multi-threaded numbers exactly, and vice versa.
//!
//! Thread count resolution, in priority order:
//! 1. a thread-local override installed by [`with_threads`] (used by tests so
//!    they can vary parallelism without racing on the process environment),
//! 2. the `NTR_THREADS` environment variable (read once per process),
//! 3. [`std::thread::available_parallelism`].
//!
//! Workers are spawned lazily on first parallel dispatch and then *parked*
//! (condvar wait) between dispatches — see [`crate::workpool`]. PR 1 spawned
//! fresh threads per call via [`std::thread::scope`]; measured at ~25µs per
//! spawned thread, that overhead inverted the speedup on every kernel under
//! a few hundred microseconds (`BENCH_tensor.json`, PR 1: matmul@64 went
//! 24.6µs → 100.7µs at 4 threads). Waking a parked worker costs ~1–2µs, two
//! orders of magnitude less, so callers can afford much finer grains — the
//! thresholds themselves live in [`crate::grain`].
//!
//! ## Panic isolation
//!
//! A panicking worker must not abort the process or poison later
//! dispatches. Each kernel has a `try_` variant ([`try_for_chunks`],
//! [`try_for_zip3_mut`], [`try_map_tasks`]) that catches worker panics:
//! the dispatch always drains deterministically (every chunk finishes or
//! unwinds before the call returns; the pool workers themselves survive),
//! the calling thread's own chunk runs under [`std::panic::catch_unwind`],
//! and the caller receives `Err(`[`PoolPanic`]`)` naming the lowest-index
//! panicking worker. A panic is caught in the worker's run loop, so the
//! pool is immediately reusable after an error. The infallible variants
//! delegate to the `try_` forms and re-raise the panic on the calling
//! thread, preserving their original contract.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use crate::workpool;

static ENV_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// 0 = no override; otherwise the forced thread count for this thread.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Maximum number of threads a parallel kernel may use right now.
///
/// Honors (in order) the [`with_threads`] override, `NTR_THREADS`, and the
/// machine's available parallelism. Always at least 1.
pub fn max_threads() -> usize {
    let forced = OVERRIDE.with(|c| c.get());
    if forced > 0 {
        return forced;
    }
    *ENV_THREADS.get_or_init(|| {
        std::env::var("NTR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Runs `f` with [`max_threads`] forced to `n` on the current thread.
///
/// The override is thread-local and restored on exit (including unwind), so
/// concurrent tests can pin different thread counts without touching the
/// process environment. `n = 0` is treated as "remove the override".
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// A worker panic captured by a `try_` dispatch: the lowest-index panicking
/// worker and its panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPanic {
    /// Index of the panicking worker within the dispatch (the calling
    /// thread's own chunk counts as the last worker).
    pub worker: usize,
    /// The panic payload, stringified (`"<non-string panic payload>"` when
    /// it was neither `&str` nor `String`).
    pub message: String,
}

impl std::fmt::Display for PoolPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool worker {} panicked: {}", self.worker, self.message)
    }
}

impl std::error::Error for PoolPanic {}

/// Stringifies a caught panic payload.
pub(crate) fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    }
}

/// Runs `f` on the calling thread, converting a panic into a [`PoolPanic`]
/// attributed to `worker`.
fn run_caught(worker: usize, f: impl FnOnce()) -> Result<(), PoolPanic> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| PoolPanic {
        worker,
        message: payload_message(p),
    })
}

/// Fires an injected fault (see [`crate::faults::arm_worker_panic`]) when
/// this worker was designated to take it.
fn maybe_inject(designated: bool) {
    if designated {
        panic!("{}", crate::faults::INJECTED_PANIC_MSG);
    }
}

/// Runs a worker body, attributing its wall time to `worker` in the global
/// pool counters when observability is armed. With `armed = false` (the
/// default) this is a direct call — no clock, no atomics.
#[inline]
fn timed(armed: bool, worker: usize, body: impl FnOnce()) {
    if armed {
        let t0 = std::time::Instant::now();
        body();
        ntr_obs::pool::record_busy(worker, t0.elapsed().as_nanos() as u64);
    } else {
        body();
    }
}

/// Feeds a finished dispatch's outcome into the pool counters (panic
/// isolations) when armed.
#[inline]
fn note_outcome<T>(armed: bool, r: &Result<T, PoolPanic>) {
    if armed && r.is_err() {
        ntr_obs::pool::record_panic_isolated();
    }
}

/// The single-chunk path shared by every dispatcher: chunk 0 runs on the
/// calling thread (taking any injected fault) with no pool interaction.
fn dispatch_single(inject: bool, armed: bool, body: impl FnOnce()) -> Result<(), PoolPanic> {
    if armed {
        ntr_obs::pool::record_dispatch(1);
    }
    let r = run_caught(0, || {
        maybe_inject(inject);
        timed(armed, 0, body)
    });
    note_outcome(armed, &r);
    r
}

/// The fan-out path shared by every dispatcher: chunks `0..t-1` go to pool
/// workers, chunk `t-1` runs on the calling thread, and chunk 0 takes any
/// injected fault (it always executes on a genuinely separate pool thread
/// here). Returns after every chunk finished — the deterministic drain.
fn dispatch_multi(
    t: usize,
    inject: bool,
    armed: bool,
    body: &(dyn Fn(usize) + Sync),
) -> Result<(), PoolPanic> {
    debug_assert!(t >= 2);
    if armed {
        ntr_obs::pool::record_dispatch(t as u64);
    }
    // Pool workers inherit the dispatcher's per-thread SIMD veto: kernels
    // invoked *inside* a chunk (map_tasks bodies) re-read `simd::active()`
    // on the worker thread, so a `force_scalar` scope on the caller must
    // extend to them.
    let veto = crate::simd::vetoed();
    let task = |c: usize| {
        maybe_inject(inject && c == 0);
        if veto {
            crate::simd::force_scalar(|| timed(armed, c, || body(c)));
        } else {
            timed(armed, c, || body(c));
        }
    };
    let r = match workpool::run(t, &task) {
        Some((worker, message)) => Err(PoolPanic { worker, message }),
        None => Ok(()),
    };
    note_outcome(armed, &r);
    r
}

/// A raw mutable base pointer smuggled into chunk closures. Chunks are
/// disjoint by construction, so concurrent writes never alias; the pool's
/// completion latch keeps the pointee alive for the whole dispatch.
#[derive(Clone, Copy)]
struct MutPtr(*mut f32);
unsafe impl Send for MutPtr {}
unsafe impl Sync for MutPtr {}

/// Shared (read-only) counterpart of [`MutPtr`].
#[derive(Clone, Copy)]
struct ConstPtr(*const f32);
unsafe impl Send for ConstPtr {}
unsafe impl Sync for ConstPtr {}

/// Near-even partition of `units` units into `t` chunks: chunk `c` starts
/// at unit `c·base + min(c, extra)` and spans `base + (c < extra)` units.
#[inline]
fn chunk_bounds(units: usize, t: usize, c: usize) -> (usize, usize) {
    let base = units / t;
    let extra = units % t;
    (c * base + c.min(extra), base + usize::from(c < extra))
}

/// Splits `data` into up to `threads` contiguous chunks on `unit` boundaries
/// and runs `f(start_unit_index, chunk)` on each, in parallel.
///
/// `unit` is the indivisible span in elements (a row length, or 1 for flat
/// element-wise work); chunks always hold a whole number of units. With one
/// thread (or one unit) `f` runs on the calling thread with no dispatch at
/// all. The final chunk also runs on the calling thread, so `threads = 2`
/// occupies a single pool worker.
///
/// Panics on the calling thread when a worker panicked; see
/// [`try_for_chunks`] for the non-panicking form.
pub fn for_chunks(
    data: &mut [f32],
    unit: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if let Err(p) = try_for_chunks(data, unit, threads, f) {
        panic!("{}", p.message);
    }
}

/// [`for_chunks`] with panic isolation: a panicking worker is caught, every
/// other worker runs to completion (deterministic drain), and the first
/// panic by worker index is returned as `Err`.
pub fn try_for_chunks(
    data: &mut [f32],
    unit: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) -> Result<(), PoolPanic> {
    assert!(unit > 0, "for_chunks: unit must be positive");
    debug_assert_eq!(
        data.len() % unit,
        0,
        "for_chunks: data not a whole number of units"
    );
    let inject = crate::faults::take_armed_worker_panic();
    let armed = ntr_obs::pool::enabled();
    let units = data.len() / unit;
    let t = threads.clamp(1, units.max(1));
    if t <= 1 {
        return dispatch_single(inject, armed, || f(0, data));
    }
    let base = MutPtr(data.as_mut_ptr());
    let body = |c: usize| {
        // Capture the wrapper, not its raw-pointer field (edition-2021
        // disjoint capture would otherwise grab the non-Sync `*mut`).
        #[allow(clippy::redundant_locals)]
        let base = base;
        let (start_unit, n_units) = chunk_bounds(units, t, c);
        // SAFETY: chunks are disjoint unit ranges of `data`, which outlives
        // the dispatch (see `dispatch_multi`).
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(base.0.add(start_unit * unit), n_units * unit)
        };
        f(start_unit, chunk);
    };
    dispatch_multi(t, inject, armed, &body)
}

/// Splits three mutable slices and one shared slice of equal length at
/// identical element boundaries and runs `f` on each aligned quadruple in
/// parallel. This is the shape of a fused optimizer update: weights and two
/// moment buffers mutated element-wise against a shared gradient.
///
/// Panics on the calling thread when a worker panicked; see
/// [`try_for_zip3_mut`] for the non-panicking form.
pub fn for_zip3_mut(
    w: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    threads: usize,
    f: impl Fn(&mut [f32], &mut [f32], &mut [f32], &[f32]) + Sync,
) {
    if let Err(p) = try_for_zip3_mut(w, m, v, g, threads, f) {
        panic!("{}", p.message);
    }
}

/// [`for_zip3_mut`] with panic isolation (see [`try_for_chunks`]).
pub fn try_for_zip3_mut(
    w: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    threads: usize,
    f: impl Fn(&mut [f32], &mut [f32], &mut [f32], &[f32]) + Sync,
) -> Result<(), PoolPanic> {
    let len = w.len();
    assert!(
        m.len() == len && v.len() == len && g.len() == len,
        "for_zip3_mut: slice lengths differ"
    );
    let inject = crate::faults::take_armed_worker_panic();
    let armed = ntr_obs::pool::enabled();
    let t = threads.clamp(1, len.max(1));
    if t <= 1 {
        return dispatch_single(inject, armed, || f(w, m, v, g));
    }
    let (pw, pm, pv) = (
        MutPtr(w.as_mut_ptr()),
        MutPtr(m.as_mut_ptr()),
        MutPtr(v.as_mut_ptr()),
    );
    let pg = ConstPtr(g.as_ptr());
    let body = |c: usize| {
        // See `try_for_chunks`: keep the wrappers, not their fields.
        let (pw, pm, pv, pg) = (pw, pm, pv, pg);
        let (start, n) = chunk_bounds(len, t, c);
        // SAFETY: disjoint element ranges of four live, equal-length slices.
        unsafe {
            f(
                std::slice::from_raw_parts_mut(pw.0.add(start), n),
                std::slice::from_raw_parts_mut(pm.0.add(start), n),
                std::slice::from_raw_parts_mut(pv.0.add(start), n),
                std::slice::from_raw_parts(pg.0.add(start), n),
            )
        }
    };
    dispatch_multi(t, inject, armed, &body)
}

/// Runs `f(0..n)` across up to `threads` pool workers and returns the
/// results in index order.
///
/// Used for coarse task parallelism (e.g. attention heads). Each worker's
/// [`max_threads`] is scaled down by the worker count so kernels invoked
/// inside `f` don't oversubscribe the machine with nested dispatches.
pub fn map_tasks<T: Send>(n: usize, threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    match try_map_tasks(n, threads, f) {
        Ok(out) => out,
        Err(p) => panic!("{}", p.message),
    }
}

/// [`map_tasks`] with panic isolation (see [`try_for_chunks`]).
pub fn try_map_tasks<T: Send>(
    n: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Result<Vec<T>, PoolPanic> {
    let inject = crate::faults::take_armed_worker_panic();
    let armed = ntr_obs::pool::enabled();
    let t = threads.clamp(1, n.max(1));
    if t <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        dispatch_single(inject, armed, || out.extend((0..n).map(&f)))?;
        return Ok(out);
    }
    let inner = (max_threads() / t).max(1);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n, || None);
    struct SlotPtr<T>(*mut Option<T>);
    impl<T> Clone for SlotPtr<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for SlotPtr<T> {}
    unsafe impl<T: Send> Send for SlotPtr<T> {}
    unsafe impl<T: Send> Sync for SlotPtr<T> {}
    let slots = SlotPtr(out.as_mut_ptr());
    let body = |c: usize| {
        // Capture the wrapper, not its raw-pointer field (edition-2021
        // disjoint capture would otherwise grab the non-Sync `*mut`).
        #[allow(clippy::redundant_locals)]
        let slots = slots;
        let (start, take) = chunk_bounds(n, t, c);
        with_threads(inner, || {
            for off in 0..take {
                let value = f(start + off);
                // SAFETY: slot ranges are disjoint per chunk and `out`
                // outlives the dispatch.
                unsafe { *slots.0.add(start + off) = Some(value) };
            }
        })
    };
    dispatch_multi(t, inject, armed, &body)?;
    Ok(out
        .into_iter()
        .map(|s| s.expect("map_tasks: worker filled every slot"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = max_threads();
        with_threads(3, || {
            assert_eq!(max_threads(), 3);
            with_threads(1, || assert_eq!(max_threads(), 1));
            assert_eq!(max_threads(), 3);
        });
        assert_eq!(max_threads(), outer);
    }

    #[test]
    fn for_chunks_covers_every_unit_once() {
        for threads in 1..=5 {
            for units in [1usize, 2, 3, 7, 16] {
                let unit = 3;
                let mut data = vec![0.0f32; units * unit];
                for_chunks(&mut data, unit, threads, |start, chunk| {
                    for (u, row) in chunk.chunks_mut(unit).enumerate() {
                        for x in row.iter_mut() {
                            *x += (start + u) as f32 + 1.0;
                        }
                    }
                });
                let expect: Vec<f32> = (0..units)
                    .flat_map(|u| std::iter::repeat_n(u as f32 + 1.0, unit))
                    .collect();
                assert_eq!(data, expect, "threads={threads} units={units}");
            }
        }
    }

    #[test]
    fn for_chunks_handles_more_threads_than_units() {
        let mut data = vec![0.0f32; 2];
        for_chunks(&mut data, 1, 64, |start, chunk| {
            for x in chunk.iter_mut() {
                *x = start as f32;
            }
        });
        assert_eq!(data, vec![0.0, 1.0]);
    }

    #[test]
    fn map_tasks_preserves_order() {
        for threads in 1..=6 {
            let got = map_tasks(11, threads, |i| i * i);
            let expect: Vec<usize> = (0..11).map(|i| i * i).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn pool_counters_record_when_armed() {
        ntr_obs::pool::reset();
        ntr_obs::pool::set_enabled(true);
        let mut data = vec![0.0f32; 8];
        for_chunks(&mut data, 1, 4, |_, chunk| {
            for x in chunk.iter_mut() {
                *x += 1.0;
            }
        });
        ntr_obs::pool::set_enabled(false);
        // Other tests may run concurrently and add their own dispatches, so
        // assert lower bounds only.
        let s = ntr_obs::pool::snapshot();
        assert!(s.dispatches >= 1, "dispatch not recorded: {s:?}");
        assert!(s.tasks >= 4, "fan-out not recorded: {s:?}");
    }

    #[test]
    fn map_tasks_scales_down_nested_parallelism() {
        with_threads(4, || {
            let inner = map_tasks(4, 4, |_| max_threads());
            assert_eq!(inner, vec![1, 1, 1, 1]);
        });
    }

    #[test]
    fn repeated_dispatches_reuse_the_pool_bit_identically() {
        let reference: Vec<f32> = (0..1024).map(|i| (i as f32).sin()).collect();
        for round in 0..10 {
            let mut data = vec![0.0f32; 1024];
            for_chunks(&mut data, 1, 4, |start, chunk| {
                for (u, x) in chunk.iter_mut().enumerate() {
                    *x = ((start + u) as f32).sin();
                }
            });
            assert_eq!(data, reference, "round {round}");
        }
    }
}
