//! Dependency-free data parallelism built on `std::thread::scope`.
//!
//! Every parallel kernel in this crate partitions its *output* buffer into
//! disjoint `&mut` chunks along a unit boundary (a matrix row, or a single
//! element for flat element-wise work) and hands each chunk to one scoped
//! thread. Because each output unit is computed by exactly one thread using
//! the same sequential instruction order as the single-threaded kernel, the
//! results are **bit-identical regardless of thread count** — `NTR_THREADS=1`
//! reproduces the multi-threaded numbers exactly, and vice versa.
//!
//! Thread count resolution, in priority order:
//! 1. a thread-local override installed by [`with_threads`] (used by tests so
//!    they can vary parallelism without racing on the process environment),
//! 2. the `NTR_THREADS` environment variable (read once per process),
//! 3. [`std::thread::available_parallelism`].
//!
//! There is no persistent pool: threads are spawned per call via
//! [`std::thread::scope`], which keeps the module free of `unsafe`, of
//! global mutable state, and of shutdown ordering concerns. Spawn cost is
//! a few microseconds per thread, so callers gate parallelism behind a
//! work-size threshold and fall back to running on the calling thread.
//!
//! ## Panic isolation
//!
//! A panicking worker must not abort the process or poison later
//! dispatches. Each kernel has a `try_` variant ([`try_for_chunks`],
//! [`try_for_zip3_mut`], [`try_map_tasks`]) that catches worker panics:
//! every spawned handle is joined explicitly (so the scope always drains
//! deterministically — no worker is left running, no scope re-panic), the
//! calling thread's own chunk runs under [`std::panic::catch_unwind`], and
//! the caller receives `Err(`[`PoolPanic`]`)` naming the lowest-index
//! panicking worker. Because dispatches spawn fresh scoped threads, the
//! "pool" is trivially reusable after an error. The infallible variants
//! delegate to the `try_` forms and re-raise the panic on the calling
//! thread, preserving their original contract.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

static ENV_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// 0 = no override; otherwise the forced thread count for this thread.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Maximum number of threads a parallel kernel may use right now.
///
/// Honors (in order) the [`with_threads`] override, `NTR_THREADS`, and the
/// machine's available parallelism. Always at least 1.
pub fn max_threads() -> usize {
    let forced = OVERRIDE.with(|c| c.get());
    if forced > 0 {
        return forced;
    }
    *ENV_THREADS.get_or_init(|| {
        std::env::var("NTR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Runs `f` with [`max_threads`] forced to `n` on the current thread.
///
/// The override is thread-local and restored on exit (including unwind), so
/// concurrent tests can pin different thread counts without touching the
/// process environment. `n = 0` is treated as "remove the override".
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// A worker panic captured by a `try_` dispatch: the lowest-index panicking
/// worker and its panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPanic {
    /// Index of the panicking worker within the dispatch (the calling
    /// thread's own chunk counts as the last worker).
    pub worker: usize,
    /// The panic payload, stringified (`"<non-string panic payload>"` when
    /// it was neither `&str` nor `String`).
    pub message: String,
}

impl std::fmt::Display for PoolPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool worker {} panicked: {}", self.worker, self.message)
    }
}

impl std::error::Error for PoolPanic {}

/// Stringifies a caught panic payload.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    }
}

/// Runs `f` on the calling thread, converting a panic into a [`PoolPanic`]
/// attributed to `worker`.
fn run_caught(worker: usize, f: impl FnOnce()) -> Result<(), PoolPanic> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| PoolPanic {
        worker,
        message: payload_message(p),
    })
}

/// Fires an injected fault (see [`crate::faults::arm_worker_panic`]) when
/// this worker was designated to take it.
fn maybe_inject(designated: bool) {
    if designated {
        panic!("{}", crate::faults::INJECTED_PANIC_MSG);
    }
}

/// Runs a worker body, attributing its wall time to `worker` in the global
/// pool counters when observability is armed. With `armed = false` (the
/// default) this is a direct call — no clock, no atomics.
#[inline]
fn timed(armed: bool, worker: usize, body: impl FnOnce()) {
    if armed {
        let t0 = std::time::Instant::now();
        body();
        ntr_obs::pool::record_busy(worker, t0.elapsed().as_nanos() as u64);
    } else {
        body();
    }
}

/// Feeds a finished dispatch's outcome into the pool counters (panic
/// isolations) when armed.
#[inline]
fn note_outcome<T>(armed: bool, r: &Result<T, PoolPanic>) {
    if armed && r.is_err() {
        ntr_obs::pool::record_panic_isolated();
    }
}

/// Splits `data` into up to `threads` contiguous chunks on `unit` boundaries
/// and runs `f(start_unit_index, chunk)` on each, in parallel.
///
/// `unit` is the indivisible span in elements (a row length, or 1 for flat
/// element-wise work); chunks always hold a whole number of units. With one
/// thread (or one unit) `f` runs on the calling thread with no spawn at all.
/// The final chunk also runs on the calling thread, so `threads = 2` spawns
/// a single worker.
///
/// Panics on the calling thread when a worker panicked; see
/// [`try_for_chunks`] for the non-panicking form.
pub fn for_chunks(
    data: &mut [f32],
    unit: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if let Err(p) = try_for_chunks(data, unit, threads, f) {
        panic!("{}", p.message);
    }
}

/// [`for_chunks`] with panic isolation: a panicking worker is caught, every
/// other worker runs to completion and is joined (deterministic drain), and
/// the first panic by worker index is returned as `Err`.
pub fn try_for_chunks(
    data: &mut [f32],
    unit: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) -> Result<(), PoolPanic> {
    assert!(unit > 0, "for_chunks: unit must be positive");
    debug_assert_eq!(
        data.len() % unit,
        0,
        "for_chunks: data not a whole number of units"
    );
    let inject = crate::faults::take_armed_worker_panic();
    let armed = ntr_obs::pool::enabled();
    let units = data.len() / unit;
    let t = threads.clamp(1, units.max(1));
    if armed {
        ntr_obs::pool::record_dispatch(t as u64);
    }
    if t <= 1 {
        let r = run_caught(0, || {
            maybe_inject(inject);
            timed(armed, 0, || f(0, data))
        });
        note_outcome(armed, &r);
        return r;
    }
    // Near-even split: the first `extra` chunks get one additional unit.
    let base = units / t;
    let extra = units % t;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(t - 1);
        let mut rest = data;
        let mut start = 0usize;
        let mut mine = Ok(());
        for c in 0..t {
            let take = (base + usize::from(c < extra)) * unit;
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let begin = start;
            start += take / unit;
            let f = &f;
            if c + 1 == t {
                // Last chunk runs here: the calling thread does its share
                // instead of blocking in `scope` while workers finish.
                mine = run_caught(c, || timed(armed, c, || f(begin, chunk)));
            } else {
                // Worker 0 (a genuinely spawned thread) takes any injected
                // fault.
                let designated = inject && c == 0;
                handles.push(scope.spawn(move || {
                    maybe_inject(designated);
                    timed(armed, c, || f(begin, chunk))
                }));
            }
        }
        // Join every handle explicitly: the scope never re-panics, and all
        // workers drain before we return. First panic by worker index wins.
        let mut first: Option<PoolPanic> = None;
        for (c, h) in handles.into_iter().enumerate() {
            if let Err(payload) = h.join() {
                if first.is_none() {
                    first = Some(PoolPanic {
                        worker: c,
                        message: payload_message(payload),
                    });
                }
            }
        }
        let r = match (first, mine) {
            (Some(p), _) => Err(p),
            (None, mine) => mine,
        };
        note_outcome(armed, &r);
        r
    })
}

/// Splits three mutable slices and one shared slice of equal length at
/// identical element boundaries and runs `f` on each aligned quadruple in
/// parallel. This is the shape of a fused optimizer update: weights and two
/// moment buffers mutated element-wise against a shared gradient.
///
/// Panics on the calling thread when a worker panicked; see
/// [`try_for_zip3_mut`] for the non-panicking form.
pub fn for_zip3_mut(
    w: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    threads: usize,
    f: impl Fn(&mut [f32], &mut [f32], &mut [f32], &[f32]) + Sync,
) {
    if let Err(p) = try_for_zip3_mut(w, m, v, g, threads, f) {
        panic!("{}", p.message);
    }
}

/// [`for_zip3_mut`] with panic isolation (see [`try_for_chunks`]).
pub fn try_for_zip3_mut(
    w: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    threads: usize,
    f: impl Fn(&mut [f32], &mut [f32], &mut [f32], &[f32]) + Sync,
) -> Result<(), PoolPanic> {
    let len = w.len();
    assert!(
        m.len() == len && v.len() == len && g.len() == len,
        "for_zip3_mut: slice lengths differ"
    );
    let inject = crate::faults::take_armed_worker_panic();
    let armed = ntr_obs::pool::enabled();
    let t = threads.clamp(1, len.max(1));
    if armed {
        ntr_obs::pool::record_dispatch(t as u64);
    }
    if t <= 1 {
        let r = run_caught(0, || {
            maybe_inject(inject);
            timed(armed, 0, || f(w, m, v, g))
        });
        note_outcome(armed, &r);
        return r;
    }
    let base = len / t;
    let extra = len % t;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(t - 1);
        let (mut rw, mut rm, mut rv, mut rg) = (w, m, v, g);
        let mut mine = Ok(());
        for c in 0..t {
            let take = base + usize::from(c < extra);
            let (cw, tw) = rw.split_at_mut(take);
            let (cm, tm) = rm.split_at_mut(take);
            let (cv, tv) = rv.split_at_mut(take);
            let (cg, tg) = rg.split_at(take);
            rw = tw;
            rm = tm;
            rv = tv;
            rg = tg;
            let f = &f;
            if c + 1 == t {
                mine = run_caught(c, || timed(armed, c, || f(cw, cm, cv, cg)));
            } else {
                let designated = inject && c == 0;
                handles.push(scope.spawn(move || {
                    maybe_inject(designated);
                    timed(armed, c, || f(cw, cm, cv, cg))
                }));
            }
        }
        let mut first: Option<PoolPanic> = None;
        for (c, h) in handles.into_iter().enumerate() {
            if let Err(payload) = h.join() {
                if first.is_none() {
                    first = Some(PoolPanic {
                        worker: c,
                        message: payload_message(payload),
                    });
                }
            }
        }
        let r = match (first, mine) {
            (Some(p), _) => Err(p),
            (None, mine) => mine,
        };
        note_outcome(armed, &r);
        r
    })
}

/// Runs `f(0..n)` across up to `threads` scoped threads and returns the
/// results in index order.
///
/// Used for coarse task parallelism (e.g. attention heads). Each worker's
/// [`max_threads`] is scaled down by the worker count so kernels invoked
/// inside `f` don't oversubscribe the machine with nested spawns.
pub fn map_tasks<T: Send>(n: usize, threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    match try_map_tasks(n, threads, f) {
        Ok(out) => out,
        Err(p) => panic!("{}", p.message),
    }
}

/// [`map_tasks`] with panic isolation (see [`try_for_chunks`]).
pub fn try_map_tasks<T: Send>(
    n: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Result<Vec<T>, PoolPanic> {
    let inject = crate::faults::take_armed_worker_panic();
    let armed = ntr_obs::pool::enabled();
    let t = threads.clamp(1, n.max(1));
    if t <= 1 || n <= 1 {
        if armed {
            ntr_obs::pool::record_dispatch(1);
        }
        let mut out = Vec::with_capacity(n);
        let r = run_caught(0, || {
            maybe_inject(inject);
            timed(armed, 0, || out.extend((0..n).map(&f)));
        });
        note_outcome(armed, &r);
        r?;
        return Ok(out);
    }
    if armed {
        ntr_obs::pool::record_dispatch(t as u64);
    }
    let inner = (max_threads() / t).max(1);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n, || None);
    let result = {
        let mut rest = &mut out[..];
        let base = n / t;
        let extra = n % t;
        let mut start = 0usize;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(t - 1);
            let mut mine = Ok(());
            for c in 0..t {
                let take = base + usize::from(c < extra);
                let (slots, tail) = rest.split_at_mut(take);
                rest = tail;
                let begin = start;
                start += take;
                let f = &f;
                let designated = inject && c == 0;
                let run = move || {
                    maybe_inject(designated);
                    timed(armed, c, || {
                        with_threads(inner, || {
                            for (off, slot) in slots.iter_mut().enumerate() {
                                *slot = Some(f(begin + off));
                            }
                        })
                    })
                };
                if c + 1 == t {
                    mine = run_caught(c, run);
                } else {
                    handles.push(scope.spawn(run));
                }
            }
            let mut first: Option<PoolPanic> = None;
            for (c, h) in handles.into_iter().enumerate() {
                if let Err(payload) = h.join() {
                    if first.is_none() {
                        first = Some(PoolPanic {
                            worker: c,
                            message: payload_message(payload),
                        });
                    }
                }
            }
            match (first, mine) {
                (Some(p), _) => Err(p),
                (None, mine) => mine,
            }
        })
    };
    note_outcome(armed, &result);
    result?;
    Ok(out
        .into_iter()
        .map(|s| s.expect("map_tasks: worker filled every slot"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = max_threads();
        with_threads(3, || {
            assert_eq!(max_threads(), 3);
            with_threads(1, || assert_eq!(max_threads(), 1));
            assert_eq!(max_threads(), 3);
        });
        assert_eq!(max_threads(), outer);
    }

    #[test]
    fn for_chunks_covers_every_unit_once() {
        for threads in 1..=5 {
            for units in [1usize, 2, 3, 7, 16] {
                let unit = 3;
                let mut data = vec![0.0f32; units * unit];
                for_chunks(&mut data, unit, threads, |start, chunk| {
                    for (u, row) in chunk.chunks_mut(unit).enumerate() {
                        for x in row.iter_mut() {
                            *x += (start + u) as f32 + 1.0;
                        }
                    }
                });
                let expect: Vec<f32> = (0..units)
                    .flat_map(|u| std::iter::repeat_n(u as f32 + 1.0, unit))
                    .collect();
                assert_eq!(data, expect, "threads={threads} units={units}");
            }
        }
    }

    #[test]
    fn for_chunks_handles_more_threads_than_units() {
        let mut data = vec![0.0f32; 2];
        for_chunks(&mut data, 1, 64, |start, chunk| {
            for x in chunk.iter_mut() {
                *x = start as f32;
            }
        });
        assert_eq!(data, vec![0.0, 1.0]);
    }

    #[test]
    fn map_tasks_preserves_order() {
        for threads in 1..=6 {
            let got = map_tasks(11, threads, |i| i * i);
            let expect: Vec<usize> = (0..11).map(|i| i * i).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn pool_counters_record_when_armed() {
        ntr_obs::pool::reset();
        ntr_obs::pool::set_enabled(true);
        let mut data = vec![0.0f32; 8];
        for_chunks(&mut data, 1, 4, |_, chunk| {
            for x in chunk.iter_mut() {
                *x += 1.0;
            }
        });
        ntr_obs::pool::set_enabled(false);
        // Other tests may run concurrently and add their own dispatches, so
        // assert lower bounds only.
        let s = ntr_obs::pool::snapshot();
        assert!(s.dispatches >= 1, "dispatch not recorded: {s:?}");
        assert!(s.tasks >= 4, "fan-out not recorded: {s:?}");
    }

    #[test]
    fn map_tasks_scales_down_nested_parallelism() {
        with_threads(4, || {
            let inner = map_tasks(4, 4, |_| max_threads());
            assert_eq!(inner, vec![1, 1, 1, 1]);
        });
    }
}
