//! Reductions and normalizations: softmax, log-softmax, argmax, sums, norms.
//!
//! The softmax family operates row-wise on 2-D tensors because that is the
//! only pattern transformers need (attention rows, logit rows). All variants
//! subtract the row max first for numerical stability, and rows that are
//! entirely `-inf` (fully masked attention rows) produce a uniform
//! distribution instead of NaN — a deliberate choice that keeps padded
//! sequences finite end-to-end.

use crate::{grain, par, simd, Tensor};

/// Thread count for a row-wise reduction over `rows · cols` floats: rows are
/// independent, so any partition gives bit-identical results. The grain model
/// prices each element at a transcendental (`exp` dominates the softmax
/// family) and never fans out wider than the row count.
fn rowwise_threads(rows: usize, numel: usize) -> usize {
    grain::threads_for_units(grain::Work::Transcendental(numel), rows, 1)
}

impl Tensor {
    /// Row-wise numerically-stable softmax of a 2-D tensor.
    ///
    /// Rows are normalized fully in place (no per-row temporaries) and
    /// partitioned across the thread pool for large matrices.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "softmax_rows requires a 2-D tensor");
        let cols = self.dim(1);
        let mut out = self.clone();
        let threads = rowwise_threads(self.dim(0), out.numel());
        let on = simd::active();
        par::for_chunks(out.data_mut(), cols.max(1), threads, |_, chunk| {
            for row in chunk.chunks_mut(cols.max(1)) {
                softmax_in_place_with(on, row);
            }
        });
        out
    }

    /// Row-wise log-softmax of a 2-D tensor (stable: max-shift + log-sum-exp).
    pub fn log_softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "log_softmax_rows requires a 2-D tensor");
        let cols = self.dim(1);
        let mut out = self.clone();
        let threads = rowwise_threads(self.dim(0), out.numel());
        let on = simd::active();
        par::for_chunks(out.data_mut(), cols.max(1), threads, |_, chunk| {
            for row in chunk.chunks_mut(cols.max(1)) {
                log_softmax_in_place_with(on, row);
            }
        });
        out
    }

    /// Index of the maximum element in each row of a 2-D tensor.
    /// Ties break toward the lower index.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows requires a 2-D tensor");
        let cols = self.dim(1);
        self.data()
            .chunks(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        simd::sum(simd::active(), self.data())
    }

    /// Mean of all elements. Returns 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Sum over rows of a 2-D tensor, producing a 1-D tensor of length `cols`
    /// — the bias-gradient reduction.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "sum_rows requires a 2-D tensor");
        let cols = self.dim(1);
        let mut out = vec![0.0f32; cols];
        let on = simd::active();
        // Row-by-row accumulation in row order: the SIMD add is the same
        // single rounding per element, so this stays bit-identical.
        for row in self.data().chunks(cols.max(1)) {
            simd::add_assign(on, &mut out, row);
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        simd::sum_sq(simd::active(), self.data()).sqrt()
    }

    /// Cosine similarity between two tensors of equal element count.
    /// Returns 0.0 when either vector has zero norm.
    pub fn cosine(&self, other: &Tensor) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Mean of the rows of a 2-D tensor: mean pooling over a token span.
    pub fn mean_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "mean_rows requires a 2-D tensor");
        let rows = self.dim(0).max(1) as f32;
        self.sum_rows().scale(1.0 / rows)
    }
}

/// In-place stable softmax over one row; fully-masked rows become uniform.
pub(crate) fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        let u = 1.0 / row.len() as f32;
        row.fill(u);
        return;
    }
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in row.iter_mut() {
        *x /= sum;
    }
}

/// [`softmax_in_place`] with SIMD max/sum/divide passes when `on`. The
/// `exp` itself stays scalar (no dependency-free vector exp); the SIMD
/// variant's reassociated sum makes it tolerance-bounded against scalar,
/// but still bit-identical across thread counts (rows are independent).
pub(crate) fn softmax_in_place_with(on: bool, row: &mut [f32]) {
    if !on {
        return softmax_in_place(row);
    }
    let max = simd::max(true, row);
    if max == f32::NEG_INFINITY {
        let u = 1.0 / row.len() as f32;
        row.fill(u);
        return;
    }
    for x in row.iter_mut() {
        *x = (*x - max).exp();
    }
    let sum = simd::sum(true, row);
    simd::div_assign_scalar(true, row, sum);
}

/// In-place stable log-softmax over one row; fully-masked rows become the log
/// of the uniform distribution, matching [`softmax_in_place`].
pub(crate) fn log_softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        let u = -(row.len() as f32).ln();
        row.fill(u);
        return;
    }
    let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
    for x in row.iter_mut() {
        *x -= lse;
    }
}

/// [`log_softmax_in_place`] with SIMD max and shift passes when `on` (the
/// exp/log-sum stays scalar — it is one sequential pass either way).
pub(crate) fn log_softmax_in_place_with(on: bool, row: &mut [f32]) {
    if !on {
        return log_softmax_in_place(row);
    }
    let max = simd::max(true, row);
    if max == f32::NEG_INFINITY {
        let u = -(row.len() as f32).ln();
        row.fill(u);
        return;
    }
    let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
    simd::sub_assign_scalar(true, row, lse);
}

#[cfg(test)]
mod tests {
    use crate::{allclose, Tensor};

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.at(&[r, 2]) > s.at(&[r, 1]));
            assert!(s.at(&[r, 1]) > s.at(&[r, 0]));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).softmax_rows();
        let b = Tensor::from_vec(vec![1001.0, 1002.0, 1003.0], &[1, 3]).softmax_rows();
        assert!(allclose(a.data(), b.data(), 1e-5, 1e-6));
    }

    #[test]
    fn fully_masked_softmax_row_is_uniform_not_nan() {
        let t = Tensor::full(&[1, 4], f32::NEG_INFINITY).softmax_rows();
        for &x in t.data() {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0], &[2, 2]);
        let ls = t.log_softmax_rows();
        let s = t.softmax_rows().map(f32::ln);
        assert!(allclose(ls.data(), s.data(), 1e-5, 1e-6));
    }

    #[test]
    fn log_softmax_fully_masked_row_is_uniform() {
        let t = Tensor::full(&[1, 4], f32::NEG_INFINITY).log_softmax_rows();
        for &x in t.data() {
            assert!((x - (0.25f32).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_breaks_ties_low() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0, -1.0, -1.0], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.sum_rows().data(), &[4.0, 6.0]);
        assert_eq!(t.mean_rows().data(), &[2.0, 3.0]);
        assert!((t.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let b = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
        assert!(a.cosine(&b).abs() < 1e-6);
        assert_eq!(a.cosine(&Tensor::zeros(&[2])), 0.0);
    }
}
