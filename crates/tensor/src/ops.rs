//! Element-wise arithmetic and matrix-multiplication kernels.
//!
//! The four matmul variants (`matmul`, `matmul_tn`, `matmul_nt`, `matmul_tt`)
//! exist because hand-derived backward passes in `ntr-nn` need products with
//! either operand transposed; computing them directly avoids materializing
//! transposed copies in the training hot path.
//!
//! # Kernel structure
//!
//! All four variants funnel into one cache-blocked GEMM ([`gemm_into`]) that
//! computes `C = A · B` with both operands in row-major `[rows, k]` /
//! `[k, cols]` layout. Transposed operands are packed into that layout once
//! per call ([`pack_transpose`]), so the innermost loop is always unit-stride
//! over `B` and `C` regardless of variant. The GEMM tiles the k dimension
//! into panels that stay L1/L2-resident across row blocks and updates
//! `MR = 4` output rows per pass through a panel (a register-blocked
//! extension of the 4-wide unrolled [`dot`] the crate started with).
//!
//! Output rows are partitioned across threads via [`crate::par`]; every row's
//! floating-point accumulation order is the same in the 4-row and tail paths
//! and independent of the partition, so results are **bit-identical for any
//! thread count**. How wide to partition is decided by the [`crate::grain`]
//! cost model (serial below the grain threshold, capped fan-out above it).
//! Products below [`NAIVE_MAX_FLOPS`] take the original simple loops in
//! [`crate::naive`] instead — at that size packing overhead would cost more
//! than it saves.
//!
//! With the `simd` feature active ([`crate::simd::active`], captured once
//! per kernel call), the element-wise kernels and the GEMM core dispatch to
//! explicit AVX2/FMA micro-kernels. Element-wise SIMD is bit-identical to
//! scalar; the FMA GEMM is tolerance-bounded against scalar but still
//! bit-identical across thread counts (per-element accumulation stays
//! k-sequential under any partition).

use crate::{grain, par, simd, Tensor};

/// `m·k·n` at or below this uses the [`crate::naive`] kernels (32³).
const NAIVE_MAX_FLOPS: usize = 32 * 32 * 32;
/// Don't give a GEMM worker thread fewer output rows than this.
const MIN_ROWS_PER_THREAD: usize = 8;
/// k-panel length: `KC · n` floats of `B` stay cache-hot across row blocks.
const KC: usize = 256;
/// Output rows updated per pass through a k-panel (register block height).
const MR: usize = 4;
/// Output columns per micro-kernel tile (register block width): the
/// `MR × NR` accumulator block lives in registers for a whole k-panel.
const NR: usize = 8;

impl Tensor {
    // ------------------------------------------------------------------
    // Element-wise ops
    // ------------------------------------------------------------------

    /// Element-wise sum. Shapes must match exactly.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference. Shapes must match exactly.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product. Shapes must match exactly.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.par_map(|x| x * s)
    }

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.data().iter().map(|&x| f(x)).collect(), self.shape())
    }

    /// [`map`](Self::map) that runs chunks on the thread pool for large
    /// tensors; `f` must be `Sync` so threads can share it.
    pub fn par_map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let src = self.data();
        let mut out = vec![0.0f32; src.len()];
        par::for_chunks(&mut out, 1, elem_threads(src.len(), 8), |start, chunk| {
            let end = start + chunk.len();
            for (o, &x) in chunk.iter_mut().zip(&src[start..end]) {
                *o = f(x);
            }
        });
        Tensor::from_vec(out, self.shape())
    }

    /// In-place [`map`](Self::map), avoiding the output allocation. Used by
    /// activation backward passes and other train-loop element-wise work.
    pub fn map_mut(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let threads = elem_threads(self.numel(), 8);
        par::for_chunks(self.data_mut(), 1, threads, |_, chunk| {
            for x in chunk.iter_mut() {
                *x = f(*x);
            }
        });
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        let o = other.data();
        let on = simd::active();
        par::for_chunks(
            self.data_mut(),
            1,
            elem_threads(o.len(), 12),
            |start, chunk| {
                let end = start + chunk.len();
                simd::add_assign(on, chunk, &o[start..end]);
            },
        );
    }

    /// In-place Hadamard product `self *= other`.
    pub fn mul_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "mul_assign: shape mismatch");
        let o = other.data();
        let on = simd::active();
        par::for_chunks(
            self.data_mut(),
            1,
            elem_threads(o.len(), 12),
            |start, chunk| {
                let end = start + chunk.len();
                simd::mul_assign(on, chunk, &o[start..end]);
            },
        );
    }

    /// In-place `self += s * other`, the AXPY primitive used by optimizers.
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        let o = other.data();
        let on = simd::active();
        par::for_chunks(
            self.data_mut(),
            1,
            elem_threads(o.len(), 12),
            |start, chunk| {
                let end = start + chunk.len();
                simd::axpy(on, chunk, s, &o[start..end]);
            },
        );
    }

    /// Adds a 1-D bias of length `cols` to every row of a 2-D tensor.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "add_row_broadcast requires a 2-D tensor");
        assert_eq!(
            bias.numel(),
            self.dim(1),
            "bias length {} does not match column count {}",
            bias.numel(),
            self.dim(1)
        );
        let cols = self.dim(1);
        let mut out = self.clone();
        let b = bias.data();
        let threads = elem_threads(out.numel(), 12);
        par::for_chunks(out.data_mut(), cols.max(1), threads, |_, chunk| {
            for row in chunk.chunks_mut(cols.max(1)) {
                for (x, &bv) in row.iter_mut().zip(b) {
                    *x += bv;
                }
            }
        });
        out
    }

    fn zip_with(&self, other: &Tensor, op: &str, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Tensor::from_vec(
            self.data()
                .iter()
                .zip(other.data())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.shape(),
        )
    }

    // ------------------------------------------------------------------
    // Matrix multiplication kernels (2-D)
    // ------------------------------------------------------------------

    /// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
    ///
    /// Cache-blocked and multithreaded above [`NAIVE_MAX_FLOPS`]; `B` is
    /// already in the packed `[k, n]` layout the GEMM core consumes, so no
    /// copy is needed for this variant.
    pub fn matmul(&self, b: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matmul lhs");
        let (kb, n) = dims2(b, "matmul rhs");
        assert_eq!(k, kb, "matmul: inner dims differ ({k} vs {kb})");
        if m * k * n <= NAIVE_MAX_FLOPS {
            return crate::naive::matmul(self, b);
        }
        let mut out = vec![0.0f32; m * n];
        gemm_into(&mut out, self.data(), b.data(), m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` — gradient w.r.t. weights.
    ///
    /// `A` is packed to `[m, k]` once so the panel walk is unit-stride.
    pub fn matmul_tn(&self, b: &Tensor) -> Tensor {
        let (k, m) = dims2(self, "matmul_tn lhs");
        let (kb, n) = dims2(b, "matmul_tn rhs");
        assert_eq!(k, kb, "matmul_tn: leading dims differ ({k} vs {kb})");
        if m * k * n <= NAIVE_MAX_FLOPS {
            return crate::naive::matmul_tn(self, b);
        }
        let at = pack_transpose(self.data(), k, m);
        let mut out = vec![0.0f32; m * n];
        gemm_into(&mut out, &at, b.data(), m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` — attention scores and
    /// gradient w.r.t. inputs.
    ///
    /// `B` is packed to `[k, n]` once so the inner loop streams `B` and `C`
    /// contiguously instead of striding down `B`'s rows.
    pub fn matmul_nt(&self, b: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matmul_nt lhs");
        let (n, kb) = dims2(b, "matmul_nt rhs");
        assert_eq!(k, kb, "matmul_nt: inner dims differ ({k} vs {kb})");
        if m * k * n <= NAIVE_MAX_FLOPS {
            return crate::naive::matmul_nt(self, b);
        }
        let bt = pack_transpose(b.data(), n, k);
        let mut out = vec![0.0f32; m * n];
        gemm_into(&mut out, self.data(), &bt, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `C = Aᵀ · Bᵀ` for `A: [k, m]`, `B: [n, k]`. Rarely needed; provided
    /// for completeness of the backward-pass algebra. Both operands are
    /// packed.
    pub fn matmul_tt(&self, b: &Tensor) -> Tensor {
        let (k, m) = dims2(self, "matmul_tt lhs");
        let (n, kb) = dims2(b, "matmul_tt rhs");
        assert_eq!(k, kb, "matmul_tt: inner dims differ ({k} vs {kb})");
        if m * k * n <= NAIVE_MAX_FLOPS {
            return crate::naive::matmul_tt(self, b);
        }
        let at = pack_transpose(self.data(), k, m);
        let bt = pack_transpose(b.data(), n, k);
        let mut out = vec![0.0f32; m * n];
        gemm_into(&mut out, &at, &bt, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Dot product of two 1-D tensors (or any equal-length tensors, flattened).
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.numel(),
            other.numel(),
            "dot: element counts differ ({} vs {})",
            self.numel(),
            other.numel()
        );
        dot(self.data(), other.data())
    }
}

pub(crate) fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.ndim(), 2, "{what} must be 2-D, got shape {:?}", t.shape());
    (t.dim(0), t.dim(1))
}

/// Thread count for a flat element-wise op over `len` floats touching
/// `bytes_per_elem` bytes of memory per element (reads + writes).
fn elem_threads(len: usize, bytes_per_elem: usize) -> usize {
    grain::threads_for(grain::Work::StreamBytes(len.saturating_mul(bytes_per_elem)))
}

/// Thread count for an `m·k·n` GEMM with `m` output rows: grain-capped
/// fan-out, never fewer than [`MIN_ROWS_PER_THREAD`] rows per worker.
fn gemm_threads(m: usize, k: usize, n: usize) -> usize {
    let madds = m.saturating_mul(k).saturating_mul(n);
    grain::threads_for_units(grain::Work::Madds(madds), m, MIN_ROWS_PER_THREAD)
}

/// Row-major transpose: `src: [rows, cols]` → returned `[cols, rows]`.
///
/// Walked in 32×32 blocks so both the strided reads and the strided writes
/// stay within a few cache lines per block.
fn pack_transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    const B: usize = 32;
    let mut dst = vec![0.0f32; src.len()];
    for rb in (0..rows).step_by(B) {
        let rend = (rb + B).min(rows);
        for cb in (0..cols).step_by(B) {
            let cend = (cb + B).min(cols);
            for r in rb..rend {
                for c in cb..cend {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
    dst
}

/// `C += A · B` into a zeroed `out`, with `A: [m, k]`, `B: [k, n]` row-major.
/// Partitions output rows across the pool; each row's accumulation order is
/// partition-independent, so the result is bit-identical for any thread count.
fn gemm_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    // Captured on the calling thread: the per-thread SIMD veto must govern
    // the chunks that pool workers run on its behalf.
    let on = simd::active() && simd::has_gemm();
    par::for_chunks(out, n.max(1), gemm_threads(m, k, n), |r0, chunk| {
        let rows = chunk.len() / n.max(1);
        let a_rows = &a[r0 * k..(r0 + rows) * k];
        if on {
            simd::gemm_block(chunk, a_rows, b, k, n);
        } else {
            gemm_block(chunk, a_rows, b, k, n);
        }
    });
}

/// The serial GEMM core: `out: [rows, n] += a: [rows, k] · b: [k, n]`.
///
/// k is blocked into [`KC`]-length panels; for each panel, [`MR`] = 4 output
/// rows are updated per pass so the panel's `B` rows are reused from cache
/// four times per load, with 4 independent accumulation streams for the
/// vectorizer. Tail rows (< MR) use the identical per-row operation order,
/// which keeps row results bit-identical however rows are grouped.
fn gemm_block(out: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
    if n == 0 || k == 0 {
        return;
    }
    let rows = out.len() / n;
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        let mut i = 0;
        while i + MR <= rows {
            let block = &mut out[i * n..(i + MR) * n];
            let ar = [
                &a[i * k + kb..i * k + kb + kc],
                &a[(i + 1) * k + kb..(i + 1) * k + kb + kc],
                &a[(i + 2) * k + kb..(i + 2) * k + kb + kc],
                &a[(i + 3) * k + kb..(i + 3) * k + kb + kc],
            ];
            let mut jb = 0;
            while jb + NR <= n {
                micro_kernel::<NR>(block, ar, b, kb, jb, kc, n);
                jb += NR;
            }
            if jb < n {
                micro_kernel_tail(block, ar, b, kb, jb, kc, n);
            }
            i += MR;
        }
        while i < rows {
            let crow = &mut out[i * n..(i + 1) * n];
            let arow = &a[i * k + kb..i * k + kb + kc];
            for (off, &av) in arow.iter().enumerate() {
                let brow = &b[(kb + off) * n..(kb + off) * n + n];
                for j in 0..n {
                    crow[j] += av * brow[j];
                }
            }
            i += 1;
        }
    }
}

/// `MR × W` register tile: loads the current partial sums, accumulates one
/// whole k-panel with k innermost, stores once. Per output element the adds
/// stay k-sequential, so this is bit-identical to the single-row tail path
/// (and hence invariant to how rows are partitioned across threads).
#[inline]
fn micro_kernel<const W: usize>(
    block: &mut [f32],
    ar: [&[f32]; MR],
    b: &[f32],
    kb: usize,
    jb: usize,
    kc: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; W]; MR];
    for (r, acc_r) in acc.iter_mut().enumerate() {
        acc_r.copy_from_slice(&block[r * n + jb..r * n + jb + W]);
    }
    for off in 0..kc {
        let brow = &b[(kb + off) * n + jb..(kb + off) * n + jb + W];
        for (acc_r, a_r) in acc.iter_mut().zip(&ar) {
            let x = a_r[off];
            for (c, &bv) in acc_r.iter_mut().zip(brow) {
                *c += x * bv;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        block[r * n + jb..r * n + jb + W].copy_from_slice(acc_r);
    }
}

/// Column remainder (`n mod NR`) of the `MR`-row block, same accumulation
/// order as [`micro_kernel`] but with a runtime tile width.
#[inline]
fn micro_kernel_tail(
    block: &mut [f32],
    ar: [&[f32]; MR],
    b: &[f32],
    kb: usize,
    jb: usize,
    kc: usize,
    n: usize,
) {
    let nr = n - jb;
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_r) in acc.iter_mut().enumerate() {
        acc_r[..nr].copy_from_slice(&block[r * n + jb..r * n + jb + nr]);
    }
    for off in 0..kc {
        let brow = &b[(kb + off) * n + jb..(kb + off) * n + jb + nr];
        for (acc_r, a_r) in acc.iter_mut().zip(&ar) {
            let x = a_r[off];
            for (c, &bv) in acc_r[..nr].iter_mut().zip(brow) {
                *c += x * bv;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        block[r * n + jb..r * n + jb + nr].copy_from_slice(&acc_r[..nr]);
    }
}

#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    // Scalar path is the crate's original 4-way unroll (in `simd`);
    // AVX2/FMA when active.
    simd::dot(simd::active(), a, b)
}

#[cfg(test)]
mod tests {
    use crate::{allclose, par, Tensor};

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = t(&[1.0, 1.0], &[2]);
        a.add_assign(&t(&[2.0, 3.0], &[2]));
        assert_eq!(a.data(), &[3.0, 4.0]);
        a.axpy(-0.5, &t(&[2.0, 2.0], &[2]));
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn map_mut_and_mul_assign_match_out_of_place() {
        let mut a = t(&[1.0, -2.0, 3.0], &[3]);
        let expect = a.map(|x| x * x);
        a.map_mut(|x| x * x);
        assert_eq!(a, expect);
        let mut b = t(&[2.0, 3.0, 4.0], &[3]);
        let expect = b.mul(&a);
        b.mul_assign(&a);
        assert_eq!(b, expect);
    }

    #[test]
    fn par_map_matches_map() {
        let a = Tensor::from_fn(&[513], |i| i as f32 - 100.0);
        par::with_threads(4, || {
            assert_eq!(a.par_map(|x| x.abs()), a.map(|x| x.abs()));
        });
    }

    #[test]
    fn bias_broadcast_adds_per_column() {
        let x = t(&[0.0, 0.0, 1.0, 1.0], &[2, 2]);
        let b = t(&[10.0, 20.0], &[2]);
        assert_eq!(x.add_row_broadcast(&b).data(), &[10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn tiled_matmul_identity_is_noop() {
        // 64×64 exceeds NAIVE_MAX_FLOPS, so this exercises the tiled path.
        let a = Tensor::from_fn(&[64, 64], |i| (i % 97) as f32 * 0.01 - 1.0);
        let c = a.matmul(&Tensor::eye(64));
        assert!(allclose(c.data(), a.data(), 1e-6, 1e-6));
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(&[1.0, -2.0, 0.5, 3.0, 4.0, -1.0], &[3, 2]);
        let b = t(&[2.0, 0.0, 1.0, -1.0, 3.0, 2.0], &[3, 2]);
        // Aᵀ·B : [2,3]·[3,2]
        let tn = a.matmul_tn(&b);
        let expect = a.transpose().matmul(&b);
        assert!(allclose(tn.data(), expect.data(), 1e-6, 1e-6));
        // A·Bᵀ with compatible shapes: a is [3,2], b is [3,2] → a·bᵀ = [3,3]
        let nt = a.matmul_nt(&b);
        let expect = a.matmul(&b.transpose());
        assert!(allclose(nt.data(), expect.data(), 1e-6, 1e-6));
        // Aᵀ·Bᵀ: [2,3]·[2,3]ᵀ? shapes: a [3,2] → aᵀ [2,3]; need bᵀ [2,3]ᵀ… use b [3,2] ⇒ bᵀ [2,3]
        let c = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = a.matmul_tt(&c);
        let expect = a.transpose().matmul(&c.transpose());
        assert!(allclose(tt.data(), expect.data(), 1e-6, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_dim_mismatch() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn dot_handles_non_multiple_of_four() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0], &[5]);
        let b = t(&[1.0, 1.0, 1.0, 1.0, 1.0], &[5]);
        assert_eq!(a.dot(&b), 15.0);
    }

    #[test]
    fn pack_transpose_round_trips() {
        let rows = 37;
        let cols = 53;
        let src: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
        let tr = super::pack_transpose(&src, rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(tr[c * rows + r], src[r * cols + c]);
            }
        }
        assert_eq!(super::pack_transpose(&tr, cols, rows), src);
    }
}
