//! Element-wise arithmetic and matrix-multiplication kernels.
//!
//! The four matmul variants (`matmul`, `matmul_tn`, `matmul_nt`, `matmul_tt`)
//! exist because hand-derived backward passes in `ntr-nn` need products with
//! either operand transposed; computing them directly avoids materializing
//! transposed copies in the training hot path.

use crate::Tensor;

impl Tensor {
    // ------------------------------------------------------------------
    // Element-wise ops
    // ------------------------------------------------------------------

    /// Element-wise sum. Shapes must match exactly.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference. Shapes must match exactly.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product. Shapes must match exactly.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.data().iter().map(|&x| f(x)).collect(), self.shape())
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
    }

    /// In-place `self += s * other`, the AXPY primitive used by optimizers.
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += s * b;
        }
    }

    /// Adds a 1-D bias of length `cols` to every row of a 2-D tensor.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "add_row_broadcast requires a 2-D tensor");
        assert_eq!(
            bias.numel(),
            self.dim(1),
            "bias length {} does not match column count {}",
            bias.numel(),
            self.dim(1)
        );
        let cols = self.dim(1);
        let mut out = self.clone();
        for row in out.data_mut().chunks_mut(cols) {
            for (x, &b) in row.iter_mut().zip(bias.data()) {
                *x += b;
            }
        }
        out
    }

    fn zip_with(&self, other: &Tensor, op: &str, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Tensor::from_vec(
            self.data()
                .iter()
                .zip(other.data())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.shape(),
        )
    }

    // ------------------------------------------------------------------
    // Matrix multiplication kernels (2-D)
    // ------------------------------------------------------------------

    /// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
    ///
    /// Uses the i-k-j loop order so the inner loop walks both `B` and `C`
    /// contiguously, which LLVM auto-vectorizes.
    pub fn matmul(&self, b: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matmul lhs");
        let (kb, n) = dims2(b, "matmul rhs");
        assert_eq!(k, kb, "matmul: inner dims differ ({k} vs {kb})");
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let bd = b.data();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut out[i * n..(i + 1) * n];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[kk * n..(kk + 1) * n];
                for (c, &bv) in crow.iter_mut().zip(brow) {
                    *c += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` — gradient w.r.t. weights.
    pub fn matmul_tn(&self, b: &Tensor) -> Tensor {
        let (k, m) = dims2(self, "matmul_tn lhs");
        let (kb, n) = dims2(b, "matmul_tn rhs");
        assert_eq!(k, kb, "matmul_tn: leading dims differ ({k} vs {kb})");
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let bd = b.data();
        for kk in 0..k {
            let arow = &a[kk * m..(kk + 1) * m];
            let brow = &bd[kk * n..(kk + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let crow = &mut out[i * n..(i + 1) * n];
                for (c, &bv) in crow.iter_mut().zip(brow) {
                    *c += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` — attention scores and
    /// gradient w.r.t. inputs.
    pub fn matmul_nt(&self, b: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matmul_nt lhs");
        let (n, kb) = dims2(b, "matmul_nt rhs");
        assert_eq!(k, kb, "matmul_nt: inner dims differ ({k} vs {kb})");
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let bd = b.data();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &bd[j * k..(j + 1) * k];
                out[i * n + j] = dot(arow, brow);
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `C = Aᵀ · Bᵀ` for `A: [k, m]`, `B: [n, k]`. Rarely needed; provided
    /// for completeness of the backward-pass algebra.
    pub fn matmul_tt(&self, b: &Tensor) -> Tensor {
        self.transpose().matmul(&b.transpose())
    }

    /// Dot product of two 1-D tensors (or any equal-length tensors, flattened).
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.numel(),
            other.numel(),
            "dot: element counts differ ({} vs {})",
            self.numel(),
            other.numel()
        );
        dot(self.data(), other.data())
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.ndim(), 2, "{what} must be 2-D, got shape {:?}", t.shape());
    (t.dim(0), t.dim(1))
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    // Manual 4-way unroll: reliable vectorization without unsafe.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

#[cfg(test)]
mod tests {
    use crate::{allclose, Tensor};

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = t(&[1.0, 1.0], &[2]);
        a.add_assign(&t(&[2.0, 3.0], &[2]));
        assert_eq!(a.data(), &[3.0, 4.0]);
        a.axpy(-0.5, &t(&[2.0, 2.0], &[2]));
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn bias_broadcast_adds_per_column() {
        let x = t(&[0.0, 0.0, 1.0, 1.0], &[2, 2]);
        let b = t(&[10.0, 20.0], &[2]);
        assert_eq!(x.add_row_broadcast(&b).data(), &[10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(&[1.0, -2.0, 0.5, 3.0, 4.0, -1.0], &[3, 2]);
        let b = t(&[2.0, 0.0, 1.0, -1.0, 3.0, 2.0], &[3, 2]);
        // Aᵀ·B : [2,3]·[3,2]
        let tn = a.matmul_tn(&b);
        let expect = a.transpose().matmul(&b);
        assert!(allclose(tn.data(), expect.data(), 1e-6, 1e-6));
        // A·Bᵀ with compatible shapes: a is [3,2], b is [3,2] → a·bᵀ = [3,3]
        let nt = a.matmul_nt(&b);
        let expect = a.matmul(&b.transpose());
        assert!(allclose(nt.data(), expect.data(), 1e-6, 1e-6));
        // Aᵀ·Bᵀ: [2,3]·[2,3]ᵀ? shapes: a [3,2] → aᵀ [2,3]; need bᵀ [2,3]ᵀ… use b [3,2] ⇒ bᵀ [2,3]
        let c = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = a.matmul_tt(&c);
        let expect = a.transpose().matmul(&c.transpose());
        assert!(allclose(tt.data(), expect.data(), 1e-6, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_dim_mismatch() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn dot_handles_non_multiple_of_four() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0], &[5]);
        let b = t(&[1.0, 1.0, 1.0, 1.0, 1.0], &[5]);
        assert_eq!(a.dot(&b), 15.0);
    }
}
