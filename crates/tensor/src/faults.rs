//! Deterministic fault injection for robustness drills.
//!
//! The training supervisor in `ntr-tasks` is tested against *injected*
//! failures rather than waiting for real ones. A [`FaultPlan`] names which
//! fault fires at which optimizer step, parsed from a spec string such as
//!
//! ```text
//! nan@120,panic@300,crash@450,corrupt-ckpt
//! ```
//!
//! (the `NTR_FAULTS` environment variable and the `ntr pretrain --faults`
//! flag both use this grammar). Every fault is **one-shot**: once consumed
//! by [`FaultPlan::take`] it never fires again, so a supervisor that rolls
//! back and replays the surrounding steps does not re-trip the same fault.
//! A fault with no explicit `@step` fires at the first opportunity.
//!
//! The fault classes:
//!
//! * `nan@N` — poison the gradients of step `N` with a NaN payload;
//! * `panic@N` — panic inside a thread-pool worker during step `N`
//!   (armed here, fired by the workers in [`crate::par`]);
//! * `crash@N` — simulate a hard kill immediately before step `N` (the
//!   supervisor wipes its in-memory state and restarts from disk);
//! * `corrupt-ckpt@N` — flip one bit of the on-disk checkpoint written at
//!   step `N` ([`corrupt_file`]), so a later `crash` exercises the
//!   corrupt-checkpoint fallback path;
//! * `serve-panic@N` — panic inside the `ntr-serve` micro-batcher's `N`th
//!   flush (consumed by the serve flush path; `@N` counts flushes);
//! * `serve-slow@N` — delay the `N`th serve flush, exercising request
//!   deadlines and slow-path isolation.
//!
//! Only the *schedule* lives here; what each fault means is defined by the
//! component that consumes it. This module is deliberately free of any
//! training-loop knowledge so `ntr-tensor::par` can participate without a
//! dependency cycle.

/// The injectable failure classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// NaN payload in a step's gradients.
    Nan,
    /// Panic inside a thread-pool worker.
    WorkerPanic,
    /// Simulated hard kill (process death + restart).
    Crash,
    /// Single-bit corruption of the on-disk checkpoint.
    CorruptCkpt,
    /// Panic inside the serve micro-batcher's Nth flush (`@N` counts
    /// completed flushes, not optimizer steps).
    ServePanic,
    /// Delay the serve micro-batcher's Nth flush (tests deadline
    /// enforcement and slow-path isolation).
    ServeSlow,
}

impl FaultKind {
    /// The spec-string name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Nan => "nan",
            FaultKind::WorkerPanic => "panic",
            FaultKind::Crash => "crash",
            FaultKind::CorruptCkpt => "corrupt-ckpt",
            FaultKind::ServePanic => "serve-panic",
            FaultKind::ServeSlow => "serve-slow",
        }
    }
}

/// One scheduled fault: a kind, the step it arms at, and whether it has
/// already fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// What fails.
    pub kind: FaultKind,
    /// First optimizer step at which the fault may fire (0 = first
    /// opportunity).
    pub step: u64,
    fired: bool,
}

/// A deterministic schedule of one-shot faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn none() -> Self {
        Self::default()
    }

    /// Parses a spec string: comma-separated `kind[@step]` entries, e.g.
    /// `nan@120,panic@300,crash@450,corrupt-ckpt`. Whitespace around
    /// entries is ignored; an empty spec yields an empty plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, step) = match entry.split_once('@') {
                Some((name, step)) => {
                    let step: u64 = step
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad fault step in {entry:?}"))?;
                    (name.trim(), step)
                }
                None => (entry, 0),
            };
            let kind = match name {
                "nan" => FaultKind::Nan,
                "panic" => FaultKind::WorkerPanic,
                "crash" => FaultKind::Crash,
                "corrupt-ckpt" => FaultKind::CorruptCkpt,
                "serve-panic" => FaultKind::ServePanic,
                "serve-slow" => FaultKind::ServeSlow,
                other => {
                    return Err(format!(
                        "unknown fault {other:?} (expected \
                         nan|panic|crash|corrupt-ckpt|serve-panic|serve-slow)"
                    ))
                }
            };
            faults.push(Fault {
                kind,
                step,
                fired: false,
            });
        }
        Ok(Self { faults })
    }

    /// Parses the `NTR_FAULTS` environment variable, if set. An unset or
    /// empty variable yields `None`; a malformed one is an error (silently
    /// dropping a drill would make a failing drill look like a pass).
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("NTR_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// True when no (unfired) faults remain.
    pub fn is_empty(&self) -> bool {
        self.faults.iter().all(|f| f.fired)
    }

    /// The scheduled faults (fired ones included).
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Consumes the first unfired fault of `kind` whose arm step is at or
    /// before `step`. Returns whether one fired.
    pub fn take(&mut self, kind: FaultKind, step: u64) -> bool {
        for f in &mut self.faults {
            if !f.fired && f.kind == kind && f.step <= step {
                f.fired = true;
                return true;
            }
        }
        false
    }
}

thread_local! {
    /// Set when a worker-panic fault is armed **on this thread**. The next
    /// pool dispatch issued from this thread consumes it and panics inside
    /// one of its workers. Thread-local (rather than a process global) so
    /// concurrently running tests cannot trip each other's faults.
    static WORKER_PANIC_ARMED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Message carried by an injected worker panic (stable for assertions).
pub const INJECTED_PANIC_MSG: &str = "ntr-faults: injected worker panic";

/// Arms the calling thread's next thread-pool dispatch to panic inside one
/// of its workers.
pub fn arm_worker_panic() {
    WORKER_PANIC_ARMED.with(|c| c.set(true));
}

/// Clears any armed worker panic on this thread; returns whether one was
/// still pending (i.e. never consumed by a dispatch).
pub fn disarm_worker_panic() -> bool {
    WORKER_PANIC_ARMED.with(|c| c.replace(false))
}

/// Called by [`crate::par`] at dispatch entry: consumes the calling
/// thread's armed fault, if any. The dispatch then designates one worker to
/// panic with [`INJECTED_PANIC_MSG`].
pub fn take_armed_worker_panic() -> bool {
    WORKER_PANIC_ARMED.with(|c| c.get()) && WORKER_PANIC_ARMED.with(|c| c.replace(false))
}

/// Flips one bit in the middle of the file at `path` — the same corruption
/// the NTRW fault-injection sweep applies, packaged for live drills. The
/// file's CRCs guarantee a subsequent load fails with a typed error.
pub fn corrupt_file(path: &std::path::Path) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        bytes.push(0xFF);
    } else {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
    }
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "nan@120, panic@300,crash@450,corrupt-ckpt,serve-panic@50, serve-slow@120",
        )
        .unwrap();
        let kinds: Vec<_> = plan.faults().iter().map(|f| (f.kind, f.step)).collect();
        assert_eq!(
            kinds,
            vec![
                (FaultKind::Nan, 120),
                (FaultKind::WorkerPanic, 300),
                (FaultKind::Crash, 450),
                (FaultKind::CorruptCkpt, 0),
                (FaultKind::ServePanic, 50),
                (FaultKind::ServeSlow, 120),
            ]
        );
    }

    #[test]
    fn serve_faults_are_step_gated_and_one_shot() {
        let mut plan = FaultPlan::parse("serve-panic@2,serve-slow@3").unwrap();
        assert!(!plan.take(FaultKind::ServePanic, 1));
        assert!(!plan.take(FaultKind::ServeSlow, 2));
        assert!(plan.take(FaultKind::ServePanic, 2));
        assert!(!plan.take(FaultKind::ServePanic, 3), "one-shot");
        assert!(plan.take(FaultKind::ServeSlow, 3));
        assert!(plan.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("explode@3").is_err());
        assert!(FaultPlan::parse("nan@abc").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn take_is_one_shot_and_step_gated() {
        let mut plan = FaultPlan::parse("nan@5").unwrap();
        assert!(!plan.take(FaultKind::Nan, 4), "not armed before step 5");
        assert!(plan.take(FaultKind::Nan, 5));
        assert!(!plan.take(FaultKind::Nan, 5), "one-shot");
        assert!(!plan.take(FaultKind::Nan, 6), "stays consumed");
        assert!(plan.is_empty());
    }

    #[test]
    fn take_matches_kind() {
        let mut plan = FaultPlan::parse("nan@1,crash@1").unwrap();
        assert!(!plan.take(FaultKind::WorkerPanic, 10));
        assert!(plan.take(FaultKind::Crash, 1));
        assert!(plan.take(FaultKind::Nan, 1));
    }

    #[test]
    fn arm_take_disarm_are_thread_local_and_one_shot() {
        assert!(!disarm_worker_panic());
        arm_worker_panic();
        assert!(take_armed_worker_panic());
        assert!(!take_armed_worker_panic(), "consumed by first dispatch");
        arm_worker_panic();
        assert!(disarm_worker_panic());
        assert!(!disarm_worker_panic());
        // Arming here is invisible to other threads.
        arm_worker_panic();
        let other = std::thread::spawn(take_armed_worker_panic);
        assert!(!other.join().unwrap());
        assert!(disarm_worker_panic());
    }

    #[test]
    fn corrupt_file_flips_one_bit() {
        let dir = std::env::temp_dir().join("ntr_faults_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        corrupt_file(&path).unwrap();
        let got = std::fs::read(&path).unwrap();
        assert_eq!(got, vec![1, 2, 3 ^ 1, 4, 5]);
        let _ = std::fs::remove_file(&path);
    }
}
