//! The [`Tensor`] type: a contiguous, row-major `f32` buffer with a shape.

use std::fmt;

/// A dense, row-major, contiguous `f32` tensor.
///
/// All data lives in a single `Vec<f32>`; the shape describes how that buffer
/// is interpreted. Strides are implicit (row-major) — slicing that would
/// require non-contiguous views instead copies, which keeps every downstream
/// kernel simple and cache-friendly at the scales this workspace targets.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a tensor from an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "Tensor::from_vec: buffer of {} elements cannot have shape {shape:?} ({numel} elements)",
            data.len()
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor by calling `f(flat_index)` for each element.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(&mut f).collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    /// Panics if `d >= self.ndim()`.
    pub fn dim(&self, d: usize) -> usize {
        self.shape[d]
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row-major flat index for a multi-dimensional index.
    ///
    /// # Panics
    /// Panics when `idx` has the wrong arity or an index is out of bounds.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.shape.len(),
            "index arity {} does not match tensor rank {}",
            idx.len(),
            self.shape.len()
        );
        let mut flat = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of bounds for dim {d} of size {s}");
            flat = flat * s + i;
        }
        flat
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let flat = self.flat_index(idx);
        self.data[flat] = value;
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterprets the buffer with a new shape of equal element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.data.len(),
            "reshape: cannot view {:?} ({} elements) as {shape:?} ({numel} elements)",
            self.shape,
            self.data.len()
        );
        Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Borrowed row `r` of a 2-D tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not 2-D or `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(
            self.ndim(),
            2,
            "row() requires a 2-D tensor, got {:?}",
            self.shape
        );
        let cols = self.shape[1];
        assert!(
            r < self.shape[0],
            "row {r} out of bounds ({} rows)",
            self.shape[0]
        );
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row `r` of a 2-D tensor.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(
            self.ndim(),
            2,
            "row_mut() requires a 2-D tensor, got {:?}",
            self.shape
        );
        let cols = self.shape[1];
        assert!(
            r < self.shape[0],
            "row {r} out of bounds ({} rows)",
            self.shape[0]
        );
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copies rows `[start, end)` of a 2-D tensor into a new tensor.
    pub fn rows(&self, start: usize, end: usize) -> Self {
        assert_eq!(
            self.ndim(),
            2,
            "rows() requires a 2-D tensor, got {:?}",
            self.shape
        );
        assert!(
            start <= end && end <= self.shape[0],
            "row range {start}..{end} out of bounds ({} rows)",
            self.shape[0]
        );
        let cols = self.shape[1];
        Self {
            shape: vec![end - start, cols],
            data: self.data[start * cols..end * cols].to_vec(),
        }
    }

    /// Copies columns `[start, end)` of a 2-D tensor into a new tensor —
    /// used to split projection outputs into attention heads.
    pub fn cols(&self, start: usize, end: usize) -> Self {
        assert_eq!(
            self.ndim(),
            2,
            "cols() requires a 2-D tensor, got {:?}",
            self.shape
        );
        assert!(
            start <= end && end <= self.shape[1],
            "column range {start}..{end} out of bounds ({} cols)",
            self.shape[1]
        );
        let rows = self.shape[0];
        let cols = self.shape[1];
        let width = end - start;
        let mut data = Vec::with_capacity(rows * width);
        for r in 0..rows {
            data.extend_from_slice(&self.data[r * cols + start..r * cols + end]);
        }
        Self {
            shape: vec![rows, width],
            data,
        }
    }

    /// Writes `src` into columns starting at `start` — the inverse of
    /// [`Tensor::cols`].
    ///
    /// # Panics
    /// Panics on rank/row/width mismatches.
    pub fn set_cols(&mut self, start: usize, src: &Tensor) {
        assert_eq!(self.ndim(), 2, "set_cols() requires a 2-D tensor");
        assert_eq!(src.ndim(), 2, "set_cols() source must be 2-D");
        assert_eq!(self.shape[0], src.shape[0], "set_cols: row count mismatch");
        let width = src.shape[1];
        assert!(
            start + width <= self.shape[1],
            "set_cols: columns {start}..{} out of bounds ({} cols)",
            start + width,
            self.shape[1]
        );
        let cols = self.shape[1];
        for r in 0..self.shape[0] {
            self.data[r * cols + start..r * cols + start + width]
                .copy_from_slice(&src.data[r * width..(r + 1) * width]);
        }
    }

    /// Transpose of a 2-D tensor (copies).
    pub fn transpose(&self) -> Self {
        assert_eq!(
            self.ndim(),
            2,
            "transpose() requires a 2-D tensor, got {:?}",
            self.shape
        );
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Self {
            shape: vec![c, r],
            data: out,
        }
    }

    /// Vertically stacks 2-D tensors with equal column counts.
    ///
    /// # Panics
    /// Panics when `parts` is empty or column counts disagree.
    pub fn vstack(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty(), "vstack of zero tensors");
        let cols = parts[0].dim(1);
        let mut rows = 0;
        let mut data = Vec::new();
        for p in parts {
            assert_eq!(p.ndim(), 2, "vstack requires 2-D tensors");
            assert_eq!(p.dim(1), cols, "vstack: column count mismatch");
            rows += p.dim(0);
            data.extend_from_slice(p.data());
        }
        Self {
            shape: vec![rows, cols],
            data,
        }
    }

    /// Horizontally concatenates 2-D tensors with equal row counts.
    pub fn hstack(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty(), "hstack of zero tensors");
        let rows = parts[0].dim(0);
        let total_cols: usize = parts
            .iter()
            .map(|p| {
                assert_eq!(p.ndim(), 2, "hstack requires 2-D tensors");
                assert_eq!(p.dim(0), rows, "hstack: row count mismatch");
                p.dim(1)
            })
            .sum();
        let mut data = Vec::with_capacity(rows * total_cols);
        for r in 0..rows {
            for p in parts {
                data.extend_from_slice(p.row(r));
            }
        }
        Self {
            shape: vec![rows, total_cols],
            data,
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:?}... ({} elements)]",
                &self.data[..8.min(self.data.len())],
                self.data.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "cannot have shape")]
    fn from_vec_rejects_shape_mismatch() {
        let _ = Tensor::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    fn set_and_flat_index_roundtrip() {
        let mut t = Tensor::zeros(&[3, 4, 5]);
        t.set(&[2, 1, 3], 7.5);
        assert_eq!(t.at(&[2, 1, 3]), 7.5);
        assert_eq!(t.flat_index(&[2, 1, 3]), 2 * 20 + 5 + 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_rejects_out_of_bounds() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[0, 2]);
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_swaps_dims() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 0]), 3.0);
        assert_eq!(tt.at(&[0, 1]), 4.0);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn rows_slices_copy() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let mid = t.rows(1, 3);
        assert_eq!(mid.shape(), &[2, 3]);
        assert_eq!(mid.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn cols_and_set_cols_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let mid = t.cols(1, 3);
        assert_eq!(mid.shape(), &[3, 2]);
        assert_eq!(mid.data(), &[1.0, 2.0, 5.0, 6.0, 9.0, 10.0]);
        let mut out = Tensor::zeros(&[3, 4]);
        out.set_cols(1, &mid);
        assert_eq!(out.cols(1, 3), mid);
        assert_eq!(out.at(&[0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn cols_rejects_bad_range() {
        let _ = Tensor::zeros(&[2, 3]).cols(1, 4);
    }

    #[test]
    fn vstack_and_hstack() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]);
        let v = Tensor::vstack(&[&a, &b]);
        assert_eq!(v.shape(), &[2, 2]);
        assert_eq!(v.data(), &[1.0, 2.0, 3.0, 4.0]);
        let h = Tensor::hstack(&[&a, &b]);
        assert_eq!(h.shape(), &[1, 4]);
        assert_eq!(h.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_fn_uses_flat_index() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
