//! Fuzz suite for the WordPiece tokenizer: arbitrary strings — non-ASCII,
//! empty, pathologically long, control characters, lone surrogate-adjacent
//! code points — must never panic the encoder, every produced id must be
//! in vocabulary bounds, and decoding in-bounds ids must round-trip
//! without panicking.

use ntr_tokenizer::train::WordPieceTrainer;
use ntr_tokenizer::WordPieceTokenizer;
use proptest::prelude::*;
use std::sync::OnceLock;

fn tok() -> &'static WordPieceTokenizer {
    static TOK: OnceLock<WordPieceTokenizer> = OnceLock::new();
    TOK.get_or_init(|| {
        let docs = [
            "the quick brown fox jumps over the lazy dog",
            "population capital country continent language 1 2 3 4 5",
            "über naïve café façade übel — em-dash ₣ ¥ €",
            "tables rows columns cells headers values numbers text",
        ];
        let vocab = WordPieceTrainer::new(400).train(docs.iter().copied());
        WordPieceTokenizer::new(vocab)
    })
}

/// Arbitrary Unicode strings, including astral-plane and control chars
/// (surrogate gap code points are skipped by `char::from_u32`).
fn unicode_string(max_chars: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..=0x10FFFF, 0..=max_chars)
        .prop_map(|cps| cps.into_iter().filter_map(char::from_u32).collect())
}

proptest! {
    #[test]
    fn encode_never_panics_and_ids_stay_in_bounds(s in unicode_string(200)) {
        let t = tok();
        let ids = t.encode(&s);
        prop_assert!(ids.iter().all(|&id| id < t.vocab_size()));
    }

    #[test]
    fn encode_pieces_matches_encode_length(s in unicode_string(80)) {
        let t = tok();
        prop_assert_eq!(t.encode(&s).len(), t.encode_pieces(&s).len());
    }

    #[test]
    fn decode_of_in_bounds_ids_never_panics(ids in proptest::collection::vec(0usize..400, 0..=64)) {
        let t = tok();
        let vocab_size = t.vocab_size();
        let clamped: Vec<usize> = ids.into_iter().map(|i| i % vocab_size).collect();
        let _ = t.decode(&clamped);
    }

    #[test]
    fn encode_decode_round_trip_stays_in_vocab(s in unicode_string(120)) {
        let t = tok();
        let ids = t.encode(&s);
        // Round-trip: decoding what encode produced and re-encoding must
        // stay within vocabulary bounds and never panic.
        let text = t.decode(&ids);
        let again = t.encode(&text);
        prop_assert!(again.iter().all(|&id| id < t.vocab_size()));
    }
}

#[test]
fn encode_survives_pathological_inputs() {
    let t = tok();
    // Empty, whitespace-only, and a single word far longer than u16::MAX
    // bytes (stress for any length arithmetic in the matcher).
    for s in [
        String::new(),
        " \t\n\r ".to_string(),
        "a".repeat(70_000),
        "é".repeat(70_000),
        format!("prefix {} suffix", "𝔘𝔫𝔦𝔠𝔬𝔡𝔢".repeat(9_000)),
        "\u{0}\u{1}\u{2}".to_string(),
    ] {
        let ids = t.encode(&s);
        assert!(ids.iter().all(|&id| id < t.vocab_size()));
        let _ = t.decode(&ids);
    }
}
