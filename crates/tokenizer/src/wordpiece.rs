//! Greedy longest-match WordPiece encoding and decoding.

use crate::pretokenize::{pretokenize, PretokenizeOptions};
use crate::vocab::{SpecialToken, Vocab};

/// Words longer than this are mapped to `[UNK]` wholesale, bounding the
/// quadratic worst case of greedy matching (the BERT convention is 100;
/// table cells rarely need more).
const MAX_WORD_CHARS: usize = 64;

/// A WordPiece tokenizer over a trained [`Vocab`].
#[derive(Debug, Clone)]
pub struct WordPieceTokenizer {
    vocab: Vocab,
    opts: PretokenizeOptions,
}

impl WordPieceTokenizer {
    /// Wraps a vocabulary with default pre-tokenization.
    pub fn new(vocab: Vocab) -> Self {
        Self {
            vocab,
            opts: PretokenizeOptions::default(),
        }
    }

    /// Overrides pre-tokenization options (must match training options for
    /// sensible results).
    pub fn with_options(mut self, opts: PretokenizeOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Vocabulary size (convenience for sizing embedding tables).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Encodes text into token ids (no special tokens added).
    pub fn encode(&self, text: &str) -> Vec<usize> {
        self.encode_pieces(text)
            .into_iter()
            .map(|p| self.vocab.id_or_unk(&p))
            .collect()
    }

    /// Encodes text into surface pieces (`##`-prefixed continuations).
    pub fn encode_pieces(&self, text: &str) -> Vec<String> {
        let mut pieces = Vec::new();
        for word in pretokenize(text, self.opts) {
            self.word_to_pieces(&word, &mut pieces);
        }
        pieces
    }

    /// Greedy longest-match of one word; emits `[UNK]` when any part of the
    /// word cannot be matched.
    fn word_to_pieces(&self, word: &str, out: &mut Vec<String>) {
        let chars: Vec<char> = word.chars().collect();
        if chars.is_empty() {
            return;
        }
        if chars.len() > MAX_WORD_CHARS {
            out.push(SpecialToken::Unk.text().to_string());
            return;
        }
        let mut result = Vec::new();
        let mut start = 0;
        while start < chars.len() {
            let mut end = chars.len();
            let mut found: Option<String> = None;
            while end > start {
                let core: String = chars[start..end].iter().collect();
                let candidate = if start == 0 {
                    core
                } else {
                    format!("##{core}")
                };
                if self.vocab.id_of(&candidate).is_some() {
                    found = Some(candidate);
                    break;
                }
                end -= 1;
            }
            match found {
                Some(p) => {
                    result.push(p);
                    start = end;
                }
                None => {
                    out.push(SpecialToken::Unk.text().to_string());
                    return;
                }
            }
        }
        out.extend(result);
    }

    /// Decodes ids back to text: pieces joined by spaces, `##` continuations
    /// attached to the previous piece, `[PAD]` dropped.
    pub fn decode(&self, ids: &[usize]) -> String {
        let mut out = String::new();
        for &id in ids {
            if id == SpecialToken::Pad.id() {
                continue;
            }
            let tok = self.vocab.token_of(id);
            if let Some(cont) = tok.strip_prefix("##") {
                out.push_str(cont);
            } else {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(tok);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::WordPieceTrainer;

    fn trained() -> WordPieceTokenizer {
        let corpus = [
            "the population of france is large",
            "the capital of france is paris",
            "population and capital tables",
            "france population france capital",
            "cities: paris, lyon, nice. done.",
        ];
        let vocab = WordPieceTrainer::new(400).train(corpus.iter().copied());
        WordPieceTokenizer::new(vocab)
    }

    #[test]
    fn known_words_roundtrip() {
        let tok = trained();
        let text = "the capital of france";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn unseen_word_splits_into_subwords_of_seen_chars() {
        let tok = trained();
        // "pariscapital" was never seen, but its characters were.
        let pieces = tok.encode_pieces("pariscapital");
        assert!(pieces.len() > 1);
        assert!(pieces.iter().all(|p| p != "[UNK]"), "{pieces:?}");
        assert_eq!(tok.decode(&tok.encode("pariscapital")), "pariscapital");
    }

    #[test]
    fn unknown_characters_produce_unk() {
        let tok = trained();
        let ids = tok.encode("日本");
        assert_eq!(ids, vec![SpecialToken::Unk.id()]);
    }

    #[test]
    fn greedy_prefers_longest_match() {
        let vocab = crate::Vocab::new(["ab", "a", "##b", "##c", "abc"]).unwrap();
        let tok = WordPieceTokenizer::new(vocab);
        assert_eq!(tok.encode_pieces("abc"), ["abc"]);
        // "abb": longest prefix "ab", then "##b".
        assert_eq!(tok.encode_pieces("abb"), ["ab", "##b"]);
    }

    #[test]
    fn overlong_word_is_unk() {
        let tok = trained();
        let long = "a".repeat(100);
        assert_eq!(tok.encode(&long), vec![SpecialToken::Unk.id()]);
    }

    #[test]
    fn decode_skips_padding() {
        let tok = trained();
        let mut ids = tok.encode("paris");
        ids.push(SpecialToken::Pad.id());
        ids.insert(0, SpecialToken::Pad.id());
        assert_eq!(tok.decode(&ids), "paris");
    }

    #[test]
    fn punctuation_tokens_are_separate() {
        let tok = trained();
        let pieces = tok.encode_pieces("france, paris.");
        assert!(pieces.contains(&",".to_string()));
        assert!(pieces.contains(&".".to_string()));
    }

    #[test]
    fn empty_text_is_empty() {
        let tok = trained();
        assert!(tok.encode("").is_empty());
        assert_eq!(tok.decode(&[]), "");
    }
}
