//! WordPiece vocabulary training via BPE-style pair merging.
//!
//! The trainer counts word frequencies over a corpus, represents each word
//! as characters (continuations prefixed with `##`), and repeatedly merges
//! the most frequent adjacent symbol pair until the vocabulary budget is
//! reached. Ties break lexicographically so training is deterministic.

use crate::pretokenize::{pretokenize, PretokenizeOptions};
use crate::vocab::{SpecialToken, Vocab};
use std::collections::{BTreeMap, HashMap};

/// Trains a WordPiece vocabulary from raw text.
#[derive(Debug, Clone)]
pub struct WordPieceTrainer {
    vocab_size: usize,
    min_pair_freq: u64,
    opts: PretokenizeOptions,
}

impl WordPieceTrainer {
    /// A trainer targeting `vocab_size` total tokens (special tokens
    /// included) with default pre-tokenization.
    pub fn new(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            min_pair_freq: 2,
            opts: PretokenizeOptions::default(),
        }
    }

    /// Overrides the pre-tokenization options.
    pub fn with_options(mut self, opts: PretokenizeOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the minimum pair frequency required to perform a merge
    /// (default 2; merges of singletons only memorize noise).
    pub fn with_min_pair_freq(mut self, f: u64) -> Self {
        self.min_pair_freq = f.max(1);
        self
    }

    /// Trains on an iterator of documents and returns the vocabulary.
    pub fn train<'a, I>(&self, corpus: I) -> Vocab
    where
        I: IntoIterator<Item = &'a str>,
    {
        // 1. Word frequencies.
        let mut word_freq: HashMap<String, u64> = HashMap::new();
        for doc in corpus {
            for piece in pretokenize(doc, self.opts) {
                *word_freq.entry(piece).or_insert(0) += 1;
            }
        }

        // 2. Words as symbol sequences: first char bare, rest ##-prefixed.
        let mut words: Vec<(Vec<String>, u64)> = word_freq
            .into_iter()
            .map(|(w, f)| (split_word(&w), f))
            .collect();
        // Deterministic iteration order independent of HashMap state.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        // 3. Base symbols, ordered for determinism.
        let mut symbols: BTreeMap<String, ()> = BTreeMap::new();
        for (syms, _) in &words {
            for s in syms {
                symbols.insert(s.clone(), ());
            }
        }
        let mut vocab_tokens: Vec<String> = symbols.into_keys().collect();
        let specials = SpecialToken::ALL.len();

        // 4. Merge loop.
        while vocab_tokens.len() + specials < self.vocab_size {
            let mut pair_freq: BTreeMap<(String, String), u64> = BTreeMap::new();
            for (syms, f) in &words {
                for win in syms.windows(2) {
                    *pair_freq
                        .entry((win[0].clone(), win[1].clone()))
                        .or_insert(0) += f;
                }
            }
            // Highest frequency wins; BTreeMap order breaks ties low.
            let Some(((left, right), freq)) = pair_freq
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            else {
                break;
            };
            if freq < self.min_pair_freq {
                break;
            }
            let merged = merge_symbols(&left, &right);
            for (syms, _) in &mut words {
                apply_merge(syms, &left, &right, &merged);
            }
            vocab_tokens.push(merged);
        }

        Vocab::new(vocab_tokens).expect("trainer produces unique tokens")
    }
}

/// Splits a word into WordPiece base symbols.
fn split_word(w: &str) -> Vec<String> {
    w.chars()
        .enumerate()
        .map(|(i, c)| {
            if i == 0 {
                c.to_string()
            } else {
                format!("##{c}")
            }
        })
        .collect()
}

/// WordPiece merge: `p + ##o → po`, `##o + ##p → ##op`.
fn merge_symbols(left: &str, right: &str) -> String {
    let right_core = right.strip_prefix("##").unwrap_or(right);
    format!("{left}{right_core}")
}

fn apply_merge(syms: &mut Vec<String>, left: &str, right: &str, merged: &str) {
    let mut i = 0;
    while i + 1 < syms.len() {
        if syms[i] == left && syms[i + 1] == right {
            syms[i] = merged.to_string();
            syms.remove(i + 1);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_word_marks_continuations() {
        assert_eq!(split_word("abc"), ["a", "##b", "##c"]);
        assert_eq!(split_word("x"), ["x"]);
    }

    #[test]
    fn merge_symbols_handles_prefixes() {
        assert_eq!(merge_symbols("p", "##o"), "po");
        assert_eq!(merge_symbols("##o", "##p"), "##op");
    }

    #[test]
    fn frequent_word_becomes_single_token() {
        let corpus: Vec<&str> = std::iter::repeat_n("population", 50)
            .chain(std::iter::repeat_n("zebra", 2))
            .collect();
        let vocab = WordPieceTrainer::new(120).train(corpus);
        assert!(
            vocab.id_of("population").is_some(),
            "frequent word should be fully merged"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = ["france paris population", "france population of paris"];
        let a = WordPieceTrainer::new(60).train(corpus.iter().copied());
        let b = WordPieceTrainer::new(60).train(corpus.iter().copied());
        assert_eq!(a.len(), b.len());
        for (id, tok) in a.iter() {
            assert_eq!(b.token_of(id), tok);
        }
    }

    #[test]
    fn vocab_size_budget_is_respected() {
        let corpus = ["aaa bbb ccc ddd eee fff ggg aaa bbb aaa"];
        let vocab = WordPieceTrainer::new(20).train(corpus.iter().copied());
        assert!(vocab.len() <= 20 + 7, "len={} exceeds budget", vocab.len());
    }

    #[test]
    fn min_pair_freq_stops_noise_merges() {
        // Every word unique → no pair reaches freq 2 → only base chars.
        let vocab = WordPieceTrainer::new(1000).train(["qx wy ez"]);
        assert!(vocab.id_of("qx").is_none());
        assert!(vocab.id_of("q").is_some());
        assert!(vocab.id_of("##x").is_some());
    }

    #[test]
    fn empty_corpus_yields_specials_only() {
        let vocab = WordPieceTrainer::new(100).train(std::iter::empty());
        assert!(vocab.is_empty());
    }
}
