//! Pre-tokenization: normalizing raw text into word-level pieces before
//! subword encoding.
//!
//! The rules mirror BERT's BasicTokenizer: lowercase (optional), split on
//! whitespace, and emit each punctuation character as its own piece. An
//! additional `split_digits` mode breaks numbers into single digits — the
//! mitigation several table models use for the "numeric cells" failure mode
//! the paper's §3.4 discusses.

/// Options controlling [`pretokenize`].
#[derive(Debug, Clone, Copy)]
pub struct PretokenizeOptions {
    /// Lowercase the input first (BERT-uncased convention).
    pub lowercase: bool,
    /// Emit each ASCII digit as its own piece, so `"25.69"` becomes
    /// `["2", "5", ".", "6", "9"]`. Improves numeric generalization.
    pub split_digits: bool,
}

impl Default for PretokenizeOptions {
    fn default() -> Self {
        Self {
            lowercase: true,
            split_digits: false,
        }
    }
}

/// Splits `text` into word/punctuation (and optionally digit) pieces.
///
/// Whitespace never produces pieces; punctuation is any non-alphanumeric,
/// non-whitespace character and is always its own piece.
pub fn pretokenize(text: &str, opts: PretokenizeOptions) -> Vec<String> {
    let lowered;
    let text = if opts.lowercase {
        lowered = text.to_lowercase();
        &lowered
    } else {
        text
    };
    let mut pieces = Vec::new();
    let mut current = String::new();
    let flush = |current: &mut String, pieces: &mut Vec<String>| {
        if !current.is_empty() {
            pieces.push(std::mem::take(current));
        }
    };
    for ch in text.chars() {
        if ch.is_whitespace() {
            flush(&mut current, &mut pieces);
        } else if !ch.is_alphanumeric() || (opts.split_digits && ch.is_ascii_digit()) {
            flush(&mut current, &mut pieces);
            pieces.push(ch.to_string());
        } else {
            current.push(ch);
        }
    }
    flush(&mut current, &mut pieces);
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(s: &str) -> Vec<String> {
        pretokenize(s, PretokenizeOptions::default())
    }

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(
            pt("hello  world\tfoo\nbar"),
            ["hello", "world", "foo", "bar"]
        );
    }

    #[test]
    fn lowercases_by_default() {
        assert_eq!(pt("Hello WORLD"), ["hello", "world"]);
    }

    #[test]
    fn preserves_case_when_disabled() {
        let opts = PretokenizeOptions {
            lowercase: false,
            split_digits: false,
        };
        assert_eq!(pretokenize("Hello", opts), ["Hello"]);
    }

    #[test]
    fn punctuation_is_isolated() {
        assert_eq!(pt("don't stop."), ["don", "'", "t", "stop", "."]);
        assert_eq!(pt("a,b|c"), ["a", ",", "b", "|", "c"]);
    }

    #[test]
    fn numbers_whole_by_default() {
        assert_eq!(pt("25.69 million"), ["25", ".", "69", "million"]);
    }

    #[test]
    fn split_digits_mode() {
        let opts = PretokenizeOptions {
            lowercase: true,
            split_digits: true,
        };
        assert_eq!(pretokenize("25.69", opts), ["2", "5", ".", "6", "9"]);
        assert_eq!(pretokenize("a1b", opts), ["a", "1", "b"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(pt("").is_empty());
        assert!(pt("   \t\n").is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(pt("café über"), ["café", "über"]);
    }
}
