//! # ntr-tokenizer
//!
//! A from-scratch WordPiece tokenizer: vocabulary training, greedy
//! longest-match encoding, decoding, and the special-token conventions the
//! table models in `ntr-models` rely on.
//!
//! The paper's hands-on session (§3.1–3.2) formats tables into token
//! sequences "compatible with BERT"; this crate is that machinery. The
//! pipeline is:
//!
//! 1. [`pretokenize`] normalizes text into word/punctuation/number pieces;
//! 2. [`train::WordPieceTrainer`] learns a subword vocabulary from a corpus
//!    by BPE-style pair merging;
//! 3. [`WordPieceTokenizer`] encodes text by greedy longest-match against
//!    that vocabulary, emitting `##`-prefixed continuation pieces.
//!
//! Special tokens occupy fixed low ids (see [`SpecialToken`]) so model
//! embedding tables can hard-code them.
//!
//! ```
//! use ntr_tokenizer::{train::WordPieceTrainer, WordPieceTokenizer};
//!
//! let corpus = ["the population of france", "the capital of france is paris"];
//! let vocab = WordPieceTrainer::new(200).train(corpus.iter().copied());
//! let tok = WordPieceTokenizer::new(vocab);
//! let ids = tok.encode("capital of france");
//! assert!(!ids.is_empty());
//! assert_eq!(tok.decode(&ids), "capital of france");
//! ```

mod pretokenize;
pub mod train;
mod vocab;
mod wordpiece;

pub use pretokenize::{pretokenize, PretokenizeOptions};
pub use vocab::{SpecialToken, Vocab, VocabError};
pub use wordpiece::WordPieceTokenizer;
