//! Vocabulary: token ↔ id maps with fixed special tokens.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;

/// The special tokens every vocabulary starts with, at fixed ids `0..=6`.
///
/// Fixed ids let model code address them without a vocabulary lookup and
/// keep checkpoints portable across vocabularies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialToken {
    /// Padding; id 0.
    Pad,
    /// Unknown token; id 1.
    Unk,
    /// Sequence-start classification token; id 2.
    Cls,
    /// Separator between context and table segments; id 3.
    Sep,
    /// Mask token for MLM/MER pretraining; id 4.
    Mask,
    /// Placeholder for empty/NULL cells; id 5.
    Empty,
    /// Start-of-sequence for decoder targets; id 6.
    Bos,
}

impl SpecialToken {
    /// All special tokens, in id order.
    pub const ALL: [SpecialToken; 7] = [
        SpecialToken::Pad,
        SpecialToken::Unk,
        SpecialToken::Cls,
        SpecialToken::Sep,
        SpecialToken::Mask,
        SpecialToken::Empty,
        SpecialToken::Bos,
    ];

    /// The token's fixed id.
    pub fn id(self) -> usize {
        match self {
            SpecialToken::Pad => 0,
            SpecialToken::Unk => 1,
            SpecialToken::Cls => 2,
            SpecialToken::Sep => 3,
            SpecialToken::Mask => 4,
            SpecialToken::Empty => 5,
            SpecialToken::Bos => 6,
        }
    }

    /// The token's surface form.
    pub fn text(self) -> &'static str {
        match self {
            SpecialToken::Pad => "[PAD]",
            SpecialToken::Unk => "[UNK]",
            SpecialToken::Cls => "[CLS]",
            SpecialToken::Sep => "[SEP]",
            SpecialToken::Mask => "[MASK]",
            SpecialToken::Empty => "[EMPTY]",
            SpecialToken::Bos => "[BOS]",
        }
    }
}

/// Errors from vocabulary I/O and construction.
#[derive(Debug)]
pub enum VocabError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Duplicate token in the input.
    Duplicate(String),
    /// File does not begin with the expected special tokens.
    MissingSpecials,
}

impl fmt::Display for VocabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VocabError::Io(e) => write!(f, "vocab I/O error: {e}"),
            VocabError::Duplicate(t) => write!(f, "duplicate token in vocab: {t:?}"),
            VocabError::MissingSpecials => {
                write!(f, "vocab file does not start with the 7 special tokens")
            }
        }
    }
}

impl std::error::Error for VocabError {}

impl From<std::io::Error> for VocabError {
    fn from(e: std::io::Error) -> Self {
        VocabError::Io(e)
    }
}

/// A token ↔ id bijection. Ids `0..7` are always the special tokens.
#[derive(Debug, Clone)]
pub struct Vocab {
    id_to_token: Vec<String>,
    token_to_id: HashMap<String, usize>,
}

impl Vocab {
    /// Builds a vocabulary from regular tokens (special tokens are prepended
    /// automatically and must not appear in `tokens`).
    pub fn new<I, S>(tokens: I) -> Result<Self, VocabError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut id_to_token: Vec<String> = SpecialToken::ALL
            .iter()
            .map(|s| s.text().to_string())
            .collect();
        let mut token_to_id: HashMap<String, usize> = id_to_token
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        for tok in tokens {
            let tok = tok.into();
            if token_to_id.contains_key(&tok) {
                return Err(VocabError::Duplicate(tok));
            }
            token_to_id.insert(tok.clone(), id_to_token.len());
            id_to_token.push(tok);
        }
        Ok(Self {
            id_to_token,
            token_to_id,
        })
    }

    /// Number of tokens, special tokens included.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when only the special tokens are present.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() == SpecialToken::ALL.len()
    }

    /// Id for `token`, if present.
    pub fn id_of(&self, token: &str) -> Option<usize> {
        self.token_to_id.get(token).copied()
    }

    /// Id for `token`, or the `[UNK]` id.
    pub fn id_or_unk(&self, token: &str) -> usize {
        self.id_of(token).unwrap_or(SpecialToken::Unk.id())
    }

    /// Surface form of `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn token_of(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Iterates over `(id, token)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.id_to_token
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.as_str()))
    }

    /// Writes the vocabulary as one token per line (id = line number).
    pub fn save(&self, path: &Path) -> Result<(), VocabError> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        for t in &self.id_to_token {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }

    /// Loads a vocabulary saved by [`Vocab::save`].
    pub fn load(path: &Path) -> Result<Self, VocabError> {
        let f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut lines = Vec::new();
        for line in f.lines() {
            lines.push(line?);
        }
        let specials: Vec<&str> = SpecialToken::ALL.iter().map(|s| s.text()).collect();
        if lines.len() < specials.len()
            || lines[..specials.len()]
                .iter()
                .map(String::as_str)
                .ne(specials.iter().copied())
        {
            return Err(VocabError::MissingSpecials);
        }
        Self::new(lines.into_iter().skip(specials.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_tokens_have_fixed_low_ids() {
        let v = Vocab::new(Vec::<String>::new()).unwrap();
        for s in SpecialToken::ALL {
            assert_eq!(v.id_of(s.text()), Some(s.id()));
            assert_eq!(v.token_of(s.id()), s.text());
        }
        assert!(v.is_empty());
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn regular_tokens_follow_specials() {
        let v = Vocab::new(["hello", "world"]).unwrap();
        assert_eq!(v.id_of("hello"), Some(7));
        assert_eq!(v.id_of("world"), Some(8));
        assert_eq!(v.len(), 9);
    }

    #[test]
    fn unknown_maps_to_unk() {
        let v = Vocab::new(["a"]).unwrap();
        assert_eq!(v.id_or_unk("zzz"), SpecialToken::Unk.id());
        assert_eq!(v.id_or_unk("a"), 7);
    }

    #[test]
    fn duplicate_is_rejected() {
        let err = Vocab::new(["x", "x"]).unwrap_err();
        assert!(matches!(err, VocabError::Duplicate(_)));
        let err = Vocab::new(["[CLS]"]).unwrap_err();
        assert!(matches!(err, VocabError::Duplicate(_)));
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("ntr_vocab_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vocab.txt");
        let v = Vocab::new(["alpha", "##beta", "γ"]).unwrap();
        v.save(&path).unwrap();
        let w = Vocab::load(&path).unwrap();
        assert_eq!(v.len(), w.len());
        for (id, tok) in v.iter() {
            assert_eq!(w.token_of(id), tok);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_file_without_specials() {
        let dir = std::env::temp_dir().join("ntr_vocab_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "just\nsome\ntokens\n").unwrap();
        assert!(matches!(
            Vocab::load(&path),
            Err(VocabError::MissingSpecials)
        ));
        let _ = std::fs::remove_file(&path);
    }
}
