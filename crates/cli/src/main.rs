//! `ntr` — command-line interface to the neural-table-representation
//! pipeline: inspect a CSV, preview its serializations, run mini-SQL over
//! it, or encode it with any model family.
//!
//! ```text
//! ntr inspect   data/countries.csv
//! ntr serialize data/countries.csv --strategy tapex --max-tokens 64
//! ntr query     data/countries.csv "SELECT Capital FROM t WHERE Country = 'France'"
//! ntr encode    data/countries.csv --model tapas --context "population by country"
//! ntr pretrain  data/countries.csv --trace run.jsonl --metrics metrics.json
//! ntr serve     data/countries.csv --port 7878 --max-batch 8 --max-wait-ms 2
//! ntr index build idx/ --tables 500 --model bert --seed 7
//! ntr index query idx/ data/countries.csv --k 5
//! ntr serve     --index idx/ --port 7878
//! ntr trace summarize run.jsonl
//! ```

use ntr::corpus::kb::{World, WorldConfig};
use ntr::corpus::tables::{CorpusConfig, TableCorpus, TableKind};
use ntr::models::{ModelConfig, RowStudent};
use ntr::obs::trace::{parse_line, schema};
use ntr::obs::{Obs, ObsOptions};
use ntr::pipeline::{EncodeRequest, Pipeline};
use ntr::sql::{execute, parse_query};
use ntr::table::{LinearizerKind, LinearizerOptions, Table};
use ntr::tasks::pretrain::MlmModel;
use ntr::tasks::supervisor::SupervisorConfig;
use ntr::tasks::trainer::{TrainConfig, TrainerOptions};
use ntr::tasks::{DistillRun, TrainRun};
use ntr::tensor::faults::FaultPlan;
use ntr::zoo::{build_encoder, build_mlm_model, EncoderSpec, ModelKind, QuantSpec};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  ntr inspect   <table.csv> [--no-header]
  ntr serialize <table.csv> [--strategy row-major|template|column-major|tapex|turl]
                            [--max-tokens N] [--context TEXT] [--no-header]
  ntr query     <table.csv> <SQL> [--no-header]
  ntr encode    <table.csv> [--model bert|tapas|turl|mate|row-student]
                            [--precision f32|int8] [--context TEXT] [--no-header]
  ntr pretrain  <table.csv> [--model bert|tapas|turl|mate] [--epochs N] [--batch-size N]
                            [--max-tokens N] [--seed N] [--save PATH]
                            [--checkpoint PATH] [--checkpoint-every N] [--resume PATH]
                            [--halt-after N] [--no-header]
                            [--clip-norm F] [--rollback] [--max-retries N] [--faults SPEC]
                            [--snapshot-every N] [--trace PATH] [--metrics PATH]
  ntr distill   <table.csv> [--teacher bert|tapas|turl|mate] [--teacher-ckpt PATH]
                            [--epochs N] [--batch-size N] [--max-tokens N] [--seed N]
                            [--cos-weight F] [--save PATH]
                            [--checkpoint PATH] [--checkpoint-every N] [--resume PATH]
                            [--halt-after N] [--trace PATH] [--metrics PATH] [--no-header]
  ntr serve     <vocab.csv> [--port N] [--max-batch N] [--max-wait-ms N]
                            [--cache-mb N] [--workers N] [--queue-cap N]
                            [--max-conns N] [--idle-timeout-ms N]
                            [--request-timeout-ms N] [--faults SPEC]
                            [--trace PATH] [--metrics PATH] [--no-header]
  ntr serve     --index <dir> [...same flags; <vocab.csv> is omitted]
  ntr index build <dir> [--tables N] [--model bert|tapas|turl|mate|row-student]
                        [--precision f32|int8] [--nlist N]
                        [--seed N] [--vocab-size N] [--max-tokens N]
                        [--trace PATH] [--metrics PATH]
  ntr index query <dir> <table.csv> [--k N] [--nprobe N] [--context TEXT]
                        [--no-header] [--trace PATH] [--metrics PATH]
  ntr trace summarize <trace.jsonl>
  ntr trace validate  <trace.jsonl>

  --no-header: treat the first CSV record as data and use synthetic col0..N names
  pretrain: MLM-pretrain on the CSV; --checkpoint-every writes a crash-safe full
  training checkpoint (weights + optimizer + cursor) every N steps; --resume
  continues a run bit-identically from such a checkpoint.
  Self-healing supervisor: --clip-norm clips the global gradient norm;
  --rollback restores the last good checkpoint on NaN/Inf/loss-spike anomalies,
  skips the offending batch, and retries (at most --max-retries times, default 3)
  before aborting with a typed error; --faults injects deterministic failures
  for drills, e.g. 'nan@120,panic@300,crash@450,corrupt-ckpt@500' (the
  NTR_FAULTS env var is the fallback). All supervisor features default to off,
  leaving training bit-identical to previous releases.
  Observability: --trace appends one JSONL event per step / anomaly / rollback /
  checkpoint to PATH; --metrics writes a counter+histogram snapshot (JSON) at
  run end; --snapshot-every N deep-snapshots the model for rollback only every
  N good steps (default 1 = every step). Both sinks default to off and are
  bit-identical no-ops when unset.
  distill: trains a per-row student encoder against a frozen --teacher
  (optionally restored from --teacher-ckpt) by MSE + cosine matching of the
  teacher's pooled row embeddings (--cos-weight sets the cosine term, default
  0.5). --save writes the student checkpoint; serve it back with
  --model row-student and --precision int8 for quantized inference. The
  checkpoint/resume/trace/metrics flags behave exactly as in pretrain.
  encode / index build: --precision int8 runs the row-student's symmetric
  per-row int8 path (integer-exact, so bit-identical across SIMD lanes and
  thread counts); int8 on a teacher family is a typed BadModelChoice error.
  index build stamps model and precision into the store metadata so queries
  and serve --index reconstruct the same encoder.
  serve: newline-delimited-JSON embedding server over TCP on 127.0.0.1. The
  CSV trains the vocabulary; clients send
  {\"id\":1,\"model\":\"tapas\",\"context\":\"...\",\"columns\":[...],\"rows\":[[...]]}
  per line and get the table embedding (or a typed error) back; requests are
  micro-batched (--max-batch, --max-wait-ms) across --workers model replicas
  with an LRU embedding cache of --cache-mb megabytes (0 disables). Batching
  is bit-identical to sequential encoding. {\"cmd\":\"shutdown\"} drains and
  exits; --port 0 picks an ephemeral port (printed on startup).
  All connections share one event-loop thread (no thread per connection):
  --max-conns caps concurrent connections (excess get a typed Overloaded line),
  --queue-cap bounds the submit queue ahead of the micro-batcher (0 = unbounded;
  requests past the cap are shed with {\"error\":{\"kind\":\"Overloaded\"}}), and
  --idle-timeout-ms closes connections that make no progress (or never read
  their responses) for that long. Oversized request lines (>1 MiB) are
  discarded with a LineTooLong error without buffering.
  Self-healing serve: panics in the flush path are isolated — every affected
  request gets a typed Internal error, the faulty replica is quarantined and
  rebuilt bit-identically, and the batcher restarts with bounded backoff.
  --request-timeout-ms sets a default per-request deadline (0 = none; a
  request's own \"timeout_ms\" field overrides it) answered with
  DeadlineExceeded when missed; clustered internal faults flip the service
  into cache-only degraded mode (misses get a typed Degraded error) until a
  half-open probe batch succeeds. {\"cmd\":\"health\"} reports
  state (ok|degraded|draining), queue depth, restart/quarantine counts, and
  per-replica status. --faults injects deterministic serve drills,
  e.g. 'serve-panic@50,serve-slow@120' (@N counts flushes; NTR_FAULTS env
  var is the fallback).
  index build: encodes the synthetic-KB table corpus (--tables tables grown
  from --seed) with --model via the batch pipeline and writes an embedding
  store (store.ntrs) plus an IVF-flat ANN index (index.ntri) into <dir>.
  Both files are crash-safe (temp + fsync + rename, per-section CRCs) and
  byte-identical for a given seed; --nlist 0 (the default) picks sqrt(n)
  clusters. The store's metadata records every generation parameter, so
  later commands rebuild the exact pipeline + model the index was built with.
  index query: encodes <table.csv> with that reconstructed pipeline and
  prints the --k nearest stored tables by squared L2 (ties broken by id);
  --nprobe widens the cluster scan (default nlist/8, clamped to [1, nlist]).
  serve --index: loads <dir> and additionally answers the
  {\"cmd\":\"search\",\"k\":K,...} verb: the query table is encoded through
  the micro-batcher (deadlines, shedding, and degraded mode all apply), then
  looked up in the IVF index; a missing index or unusable k comes back as a
  typed IndexNotLoaded / BadK error.
  trace summarize: per-event table plus loss-curve stats from a trace file.
  trace validate: checks every line against the v1 trace schema";

fn run(args: &[String]) -> Result<(), String> {
    let (cmd, rest) = args.split_first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "inspect" => inspect(rest),
        "serialize" => serialize(rest),
        "query" => query(rest),
        "encode" => encode(rest),
        "pretrain" => pretrain(rest),
        "distill" => distill(rest),
        "serve" => serve(rest),
        "index" => index_cmd(rest),
        "trace" => trace_cmd(rest),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn load_table(rest: &[String]) -> Result<(Table, Vec<String>), String> {
    let (path, flags) = rest.split_first().ok_or("missing <table.csv>")?;
    let table = if flags.iter().any(|f| f == "--no-header") {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let id = Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "table".to_string());
        Table::from_csv_str(&id, &text, false).map_err(|e| e.to_string())?
    } else {
        Table::from_csv_path(Path::new(path)).map_err(|e| e.to_string())?
    };
    Ok((table, flags.to_vec()))
}

fn flag_value<'a>(flags: &'a [String], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .position(|f| f == name)
        .and_then(|i| flags.get(i + 1))
        .map(String::as_str)
        // Another flag in value position means the value was omitted.
        .filter(|v| !v.starts_with("--"))
}

fn inspect(rest: &[String]) -> Result<(), String> {
    let (table, _) = load_table(rest)?;
    println!(
        "table `{}`: {} rows x {} cols, {:.0}% null, headers {}",
        table.id,
        table.n_rows(),
        table.n_cols(),
        table.null_fraction() * 100.0,
        if table.is_headerless() {
            "synthetic"
        } else {
            "descriptive"
        }
    );
    println!("\ncolumns:");
    for (i, col) in table.columns().iter().enumerate() {
        let sample = if table.n_rows() > 0 {
            table.cell(0, i).text()
        } else {
            ""
        };
        println!(
            "  {i:>2}  {:<20} {:<8} e.g. {sample:?}",
            col.name,
            col.sem_type.name()
        );
    }
    Ok(())
}

fn serialize(rest: &[String]) -> Result<(), String> {
    let (table, flags) = load_table(rest)?;
    let strategy = flag_value(&flags, "--strategy").unwrap_or("row-major");
    let lin =
        LinearizerKind::parse(strategy).ok_or_else(|| format!("unknown strategy {strategy:?}"))?;
    let max_tokens: usize = flag_value(&flags, "--max-tokens")
        .map(|v| v.parse().map_err(|_| format!("bad --max-tokens {v:?}")))
        .transpose()?
        .unwrap_or(256);
    let context = flag_value(&flags, "--context")
        .unwrap_or(&table.caption)
        .to_string();

    let pipeline = Pipeline::builder()
        .vocab_from_tables(std::slice::from_ref(&table))
        .vocab_from_texts(std::slice::from_ref(&context))
        .linearizer(lin)
        .options(LinearizerOptions {
            max_tokens,
            ..Default::default()
        })
        .build()
        .map_err(|e| e.to_string())?;
    let e = pipeline.serialize(&table, &context);
    println!(
        "strategy {} | {} tokens | {} rows encoded | {} rows truncated\n",
        e.linearizer(),
        e.len(),
        e.n_rows_encoded(),
        e.truncated_rows()
    );
    println!(
        "{:>4} {:<14} {:>3} {:>3} {:>4} {:<9}",
        "pos", "token", "row", "col", "rank", "kind"
    );
    for (i, (&id, m)) in e.ids().iter().zip(e.meta()).enumerate() {
        let kind = match m.kind {
            ntr::table::TokenKind::Special => "special",
            ntr::table::TokenKind::Context => "context",
            ntr::table::TokenKind::Header => "header",
            ntr::table::TokenKind::Cell => "cell",
            ntr::table::TokenKind::Template => "template",
        };
        println!(
            "{i:>4} {:<14} {:>3} {:>3} {:>4} {kind:<9}",
            pipeline.tokenizer().vocab().token_of(id),
            m.row,
            m.col,
            m.rank
        );
    }
    Ok(())
}

fn query(rest: &[String]) -> Result<(), String> {
    let (table, flags) = load_table(rest)?;
    // The SQL is the first positional (non-flag) argument, so flags may
    // appear on either side of it.
    let sql = flags
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing SQL (quote it)")?;
    let q = parse_query(sql).map_err(|e| e.to_string())?;
    let ans = execute(&q, &table).map_err(|e| e.to_string())?;
    for v in &ans.values {
        println!("{v}");
    }
    eprintln!("({} value(s))", ans.values.len());
    Ok(())
}

fn parsed_flag<T: std::str::FromStr>(
    flags: &[String],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(flags, name) {
        Some(v) => v.parse().map_err(|_| format!("bad {name} {v:?}")),
        None => Ok(default),
    }
}

fn pretrain(rest: &[String]) -> Result<(), String> {
    let (table, flags) = load_table(rest)?;
    let kind: ModelKind = flag_value(&flags, "--model").unwrap_or("tapas").parse()?;
    let cfg = TrainConfig {
        epochs: parsed_flag(&flags, "--epochs", 3)?,
        batch_size: parsed_flag(&flags, "--batch-size", 4)?,
        seed: parsed_flag(&flags, "--seed", TrainConfig::default().seed)?,
        ..TrainConfig::default()
    };
    let max_tokens: usize = parsed_flag(&flags, "--max-tokens", 128)?;
    let every: u64 = parsed_flag(&flags, "--checkpoint-every", 1)?;
    let topts = TrainerOptions {
        checkpoint: flag_value(&flags, "--checkpoint").map(|p| (PathBuf::from(p), every)),
        resume: flag_value(&flags, "--resume").map(PathBuf::from),
        halt_after: flag_value(&flags, "--halt-after")
            .map(|v| v.parse().map_err(|_| format!("bad --halt-after {v:?}")))
            .transpose()?,
        obs: ObsOptions {
            trace: flag_value(&flags, "--trace").map(PathBuf::from),
            metrics: flag_value(&flags, "--metrics").map(PathBuf::from),
        },
    };
    let faults = match flag_value(&flags, "--faults") {
        Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| format!("bad --faults: {e}"))?),
        None => FaultPlan::from_env().map_err(|e| format!("bad NTR_FAULTS: {e}"))?,
    };
    let scfg = SupervisorConfig {
        clip_norm: flag_value(&flags, "--clip-norm")
            .map(|v| v.parse().map_err(|_| format!("bad --clip-norm {v:?}")))
            .transpose()?,
        rollback: flags.iter().any(|f| f == "--rollback"),
        max_retries: parsed_flag(&flags, "--max-retries", 3)?,
        spike_factor: 4.0,
        ema_alpha: 0.1,
        lr_backoff: 0.5,
        snapshot_every: parsed_flag(&flags, "--snapshot-every", 1)?,
        faults,
    };

    // Split the table's rows into per-row shards so one CSV yields a small
    // corpus of training examples rather than a single one.
    let mut tables = Vec::new();
    for r in 0..table.n_rows().max(1) {
        if table.n_rows() > 1 {
            let hi = (r + 2).min(table.n_rows());
            let idx: Vec<usize> = (r..hi).collect();
            tables.push(table.select_rows(&idx));
        } else {
            tables.push(table.clone());
        }
    }
    let kinds = vec![TableKind::Employees; tables.len()];
    let corpus = TableCorpus { tables, kinds };

    let pipeline = Pipeline::builder()
        .vocab_from_tables(&corpus.tables)
        .build()
        .map_err(|e| e.to_string())?;
    let tok = pipeline.tokenizer();
    let model_cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        n_entities: 1,
        ..ModelConfig::tiny(tok.vocab_size())
    };

    #[allow(clippy::too_many_arguments)]
    fn run_mlm<M: MlmModel>(
        mut model: M,
        corpus: &TableCorpus,
        tok: &ntr::tokenizer::WordPieceTokenizer,
        cfg: &TrainConfig,
        max_tokens: usize,
        topts: &TrainerOptions,
        scfg: &SupervisorConfig,
        save: Option<&str>,
    ) -> Result<(usize, f32, f32), String> {
        let report = TrainRun::new(*cfg)
            .max_tokens(max_tokens)
            .trainer(topts)
            .supervisor(scfg)
            .mlm(&mut model, corpus, tok)
            .map_err(|e| e.to_string())?;
        if let Some(path) = save {
            ntr::nn::serialize::save(&mut model, Path::new(path)).map_err(|e| e.to_string())?;
        }
        let n = report.mlm_loss.len();
        let first = report.mlm_loss.first().copied().unwrap_or(0.0);
        let last = report.mlm_loss.last().copied().unwrap_or(0.0);
        Ok((n, first, last))
    }

    let save = flag_value(&flags, "--save");
    let model = build_mlm_model(kind, &model_cfg).map_err(|e| e.to_string())?;
    let (steps, first, last) = run_mlm(model, &corpus, tok, &cfg, max_tokens, &topts, &scfg, save)?;
    println!(
        "model {} | {} optimizer step(s) this run | mlm loss {first:.4} -> {last:.4}",
        kind.name(),
        steps
    );
    if let Some((path, every)) = &topts.checkpoint {
        println!("checkpointing to {} every {every} step(s)", path.display());
    }
    if let Some(path) = &topts.resume {
        println!("resumed from {}", path.display());
    }
    if scfg.enabled() {
        println!(
            "supervisor: clip-norm {} | rollback {} | max-retries {} | faults {}",
            scfg.clip_norm.map_or("off".to_string(), |c| format!("{c}")),
            if scfg.rollback { "on" } else { "off" },
            scfg.max_retries,
            scfg.faults.as_ref().map_or("none".to_string(), |p| format!(
                "{} armed",
                p.faults().len()
            )),
        );
    }
    Ok(())
}

fn distill(rest: &[String]) -> Result<(), String> {
    let (table, flags) = load_table(rest)?;
    let teacher_kind: ModelKind = flag_value(&flags, "--teacher").unwrap_or("tapas").parse()?;
    if teacher_kind == ModelKind::RowStudent {
        return Err("the teacher must be a full-context family, not row-student".into());
    }
    let cfg = TrainConfig {
        epochs: parsed_flag(&flags, "--epochs", 3)?,
        batch_size: parsed_flag(&flags, "--batch-size", 4)?,
        seed: parsed_flag(&flags, "--seed", TrainConfig::default().seed)?,
        ..TrainConfig::default()
    };
    let max_tokens: usize = parsed_flag(&flags, "--max-tokens", 128)?;
    let cos_weight: f32 = parsed_flag(&flags, "--cos-weight", DistillRun::DEFAULT_COS_WEIGHT)?;
    let every: u64 = parsed_flag(&flags, "--checkpoint-every", 1)?;
    let topts = TrainerOptions {
        checkpoint: flag_value(&flags, "--checkpoint").map(|p| (PathBuf::from(p), every)),
        resume: flag_value(&flags, "--resume").map(PathBuf::from),
        halt_after: flag_value(&flags, "--halt-after")
            .map(|v| v.parse().map_err(|_| format!("bad --halt-after {v:?}")))
            .transpose()?,
        obs: ObsOptions {
            trace: flag_value(&flags, "--trace").map(PathBuf::from),
            metrics: flag_value(&flags, "--metrics").map(PathBuf::from),
        },
    };
    let scfg = SupervisorConfig::default();

    // The same per-row sharding as pretrain: one CSV becomes a small corpus
    // of (overlapping) row windows, so the student sees many examples.
    let mut tables = Vec::new();
    for r in 0..table.n_rows().max(1) {
        if table.n_rows() > 1 {
            let hi = (r + 2).min(table.n_rows());
            let idx: Vec<usize> = (r..hi).collect();
            tables.push(table.select_rows(&idx));
        } else {
            tables.push(table.clone());
        }
    }
    let kinds = vec![TableKind::Employees; tables.len()];
    let corpus = TableCorpus { tables, kinds };

    let pipeline = Pipeline::builder()
        .vocab_from_tables(&corpus.tables)
        .build()
        .map_err(|e| e.to_string())?;
    let tok = pipeline.tokenizer();
    let model_cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        n_entities: 1,
        ..ModelConfig::tiny(tok.vocab_size())
    };

    let mut teacher =
        build_encoder(EncoderSpec::f32(teacher_kind), &model_cfg).map_err(|e| e.to_string())?;
    if let Some(path) = flag_value(&flags, "--teacher-ckpt") {
        ntr::nn::serialize::load(teacher.as_mut(), Path::new(path))
            .map_err(|e| format!("bad --teacher-ckpt: {e}"))?;
    }
    let mut student = RowStudent::new(&model_cfg);
    let report = DistillRun::new(cfg)
        .max_tokens(max_tokens)
        .trainer(&topts)
        .supervisor(&scfg)
        .cos_weight(cos_weight)
        .run(&mut student, teacher.as_mut(), &corpus, tok)
        .map_err(|e| e.to_string())?;
    if let Some(path) = flag_value(&flags, "--save") {
        ntr::nn::serialize::save(&mut student, Path::new(path)).map_err(|e| e.to_string())?;
    }
    let first = report.loss.first().copied().unwrap_or(0.0);
    let last = report.loss.last().copied().unwrap_or(0.0);
    println!(
        "teacher {} -> row-student | {} optimizer step(s) this run | distill loss {first:.4} -> {last:.4} | final cosine {:.4}",
        teacher_kind.name(),
        report.loss.len(),
        report.final_cosine()
    );
    if let Some((path, every)) = &topts.checkpoint {
        println!("checkpointing to {} every {every} step(s)", path.display());
    }
    if let Some(path) = &topts.resume {
        println!("resumed from {}", path.display());
    }
    Ok(())
}

fn open_obs(flags: &[String]) -> Result<Obs, String> {
    Obs::open(&ObsOptions {
        trace: flag_value(flags, "--trace").map(PathBuf::from),
        metrics: flag_value(flags, "--metrics").map(PathBuf::from),
    })
    .map_err(|e| e.to_string())
}

/// Everything that pins an index's embedding space: the synthetic-KB
/// generation parameters, vocabulary size, token budget, and model family.
/// `index build` stamps these into the store's metadata so `index query`
/// and `serve --index` reconstruct the exact pipeline + model the vectors
/// were produced with (the repo's bit-identical-encode guarantee does the
/// rest).
struct IndexParams {
    kind: ModelKind,
    precision: QuantSpec,
    n_tables: usize,
    seed: u64,
    vocab_size: usize,
    max_tokens: usize,
}

impl IndexParams {
    fn from_flags(flags: &[String]) -> Result<Self, String> {
        Ok(Self {
            kind: flag_value(flags, "--model").unwrap_or("bert").parse()?,
            precision: flag_value(flags, "--precision").unwrap_or("f32").parse()?,
            n_tables: parsed_flag(flags, "--tables", 200)?,
            seed: parsed_flag(flags, "--seed", 7)?,
            vocab_size: parsed_flag(flags, "--vocab-size", 600)?,
            max_tokens: parsed_flag(flags, "--max-tokens", 64)?,
        })
    }

    fn from_meta(store: &ntr_index::EmbeddingStore) -> Result<Self, String> {
        fn get<T: std::str::FromStr>(
            store: &ntr_index::EmbeddingStore,
            key: &str,
        ) -> Result<T, String> {
            store
                .meta_get(key)
                .ok_or_else(|| format!("index metadata is missing {key:?}; rebuild the index"))?
                .parse()
                .map_err(|_| format!("index metadata {key:?} is unparseable"))
        }
        let name = store
            .meta_get("model")
            .ok_or("index metadata is missing \"model\"; rebuild the index")?;
        Ok(Self {
            kind: name.parse()?,
            // Indexes built before the precision stamp existed are f32.
            precision: store.meta_get("precision").unwrap_or("f32").parse()?,
            n_tables: get(store, "n_tables")?,
            seed: get(store, "seed")?,
            vocab_size: get(store, "vocab_size")?,
            max_tokens: get(store, "max_tokens")?,
        })
    }

    fn spec(&self) -> EncoderSpec {
        EncoderSpec::new(self.kind, self.precision)
    }

    fn stamp(&self, store: &mut ntr_index::EmbeddingStore) {
        store.set_meta("model", self.kind.name());
        store.set_meta("precision", self.precision.name());
        store.set_meta("dim", store.dim().to_string());
        store.set_meta("n_tables", self.n_tables.to_string());
        store.set_meta("seed", self.seed.to_string());
        store.set_meta("vocab_size", self.vocab_size.to_string());
        store.set_meta("max_tokens", self.max_tokens.to_string());
    }

    /// Deterministically regrows the corpus and rebuilds the pipeline and
    /// model configuration these parameters describe.
    fn stack(&self) -> Result<(TableCorpus, Pipeline, ModelConfig), String> {
        let world = World::generate(WorldConfig {
            seed: self.seed,
            ..WorldConfig::default()
        });
        let corpus = TableCorpus::generate(
            &world,
            &CorpusConfig {
                n_tables: self.n_tables,
                seed: self.seed,
                headerless_prob: 0.0,
                ..CorpusConfig::default()
            },
        );
        let pipeline = Pipeline::builder()
            .vocab_from_tables(&corpus.tables)
            .vocab_size(self.vocab_size)
            .encoder(self.spec())
            .options(LinearizerOptions {
                max_tokens: self.max_tokens,
                ..LinearizerOptions::default()
            })
            .build()
            .map_err(|e| e.to_string())?;
        let model_cfg = ModelConfig::tiny(pipeline.tokenizer().vocab_size());
        Ok((corpus, pipeline, model_cfg))
    }
}

fn index_cmd(rest: &[String]) -> Result<(), String> {
    let (verb, rest) = rest
        .split_first()
        .ok_or("missing index verb (build|query)")?;
    match verb.as_str() {
        "build" => index_build(rest),
        "query" => index_query(rest),
        other => Err(format!("unknown index verb {other:?}")),
    }
}

fn index_build(rest: &[String]) -> Result<(), String> {
    let (dir, flags) = rest.split_first().ok_or("missing <index-dir>")?;
    let flags = flags.to_vec();
    let params = IndexParams::from_flags(&flags)?;
    let obs = open_obs(&flags)?;
    let (corpus, pipeline, model_cfg) = params.stack()?;
    let mut model = build_encoder(params.spec(), &model_cfg).map_err(|e| e.to_string())?;

    let t_encode = std::time::Instant::now();
    let mut store = ntr_index::EmbeddingStore::new(model_cfg.d_model);
    let reqs: Vec<EncodeRequest> = corpus
        .tables
        .iter()
        .map(|t| EncodeRequest::captioned(t.clone()))
        .collect();
    for chunk in reqs.chunks(32) {
        let encs = pipeline
            .encode_batch(model.as_mut(), chunk)
            .map_err(|e| e.to_string())?;
        for (req, enc) in chunk.iter().zip(&encs) {
            store
                .push(req.table.id.clone(), enc.table_embedding().data())
                .map_err(|e| e.to_string())?;
        }
    }
    let encode_ms = t_encode.elapsed().as_millis() as u64;
    params.stamp(&mut store);

    let t_build = std::time::Instant::now();
    let ivf = ntr_index::IvfIndex::build(
        &store,
        &ntr_index::IvfConfig {
            nlist: parsed_flag(&flags, "--nlist", 0usize)?,
            seed: params.seed,
            ..ntr_index::IvfConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let build_ms = t_build.elapsed().as_millis() as u64;

    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let store_bytes = store
        .save(&dir.join(ntr_index::SearchIndex::STORE_FILE))
        .map_err(|e| e.to_string())?;
    let ivf_bytes = ivf
        .save(&dir.join(ntr_index::SearchIndex::IVF_FILE))
        .map_err(|e| e.to_string())?;

    if let Some(ev) = obs.event("index_build") {
        ev.u64("tables", store.len() as u64)
            .u64("dim", store.dim() as u64)
            .u64("nlist", ivf.nlist() as u64)
            .u64("seed", params.seed)
            .u64("bytes", store_bytes + ivf_bytes)
            .u64("encode_ms", encode_ms)
            .u64("build_ms", build_ms)
            .finish();
    }
    obs.inc("index/builds");
    obs.add("index/bytes", store_bytes + ivf_bytes);
    obs.write_metrics().map_err(|e| e.to_string())?;
    println!(
        "indexed {} table(s) ({} dim, model {}) into {} | {} cluster(s) | {} byte(s) | encode {encode_ms} ms | build {build_ms} ms",
        store.len(),
        store.dim(),
        params.spec(),
        dir.display(),
        ivf.nlist(),
        store_bytes + ivf_bytes
    );
    Ok(())
}

fn index_query(rest: &[String]) -> Result<(), String> {
    let (dir, rest) = rest.split_first().ok_or("missing <index-dir>")?;
    let idx = ntr_index::SearchIndex::open(Path::new(dir)).map_err(|e| e.to_string())?;
    let params = IndexParams::from_meta(&idx.store)?;
    let (table, flags) = load_table(rest)?;
    let obs = open_obs(&flags)?;
    let k: usize = parsed_flag(&flags, "--k", 10)?;
    let nprobe: Option<usize> = flag_value(&flags, "--nprobe")
        .map(|v| v.parse().map_err(|_| format!("bad --nprobe {v:?}")))
        .transpose()?;
    let context = flag_value(&flags, "--context")
        .unwrap_or(&table.caption)
        .to_string();

    let (_, pipeline, model_cfg) = params.stack()?;
    let mut model = build_encoder(params.spec(), &model_cfg).map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    let enc = pipeline.encode(model.as_mut(), &table, &context);
    let res = idx
        .search(enc.table_embedding().data(), k, nprobe)
        .map_err(|e| e.to_string())?;
    let query_ms = t0.elapsed().as_millis() as u64;

    if let Some(ev) = obs.event("index_query") {
        ev.u64("k", k as u64)
            .u64(
                "nprobe",
                nprobe.unwrap_or_else(|| idx.ivf.default_nprobe()) as u64,
            )
            .u64("results", res.hits.len() as u64)
            .u64("scanned", res.scanned as u64)
            .u64("query_ms", query_ms)
            .finish();
    }
    obs.inc("index/searches");
    obs.write_metrics().map_err(|e| e.to_string())?;

    println!(
        "top {} of {} stored table(s) ({} scanned, model {}):",
        res.hits.len(),
        idx.store.len(),
        res.scanned,
        params.spec()
    );
    println!("{:>4} {:<24} {:>12}", "rank", "table_id", "distance");
    for (rank, (id, dist)) in res.hits.iter().enumerate() {
        println!("{rank:>4} {:<24} {dist:>12.6}", idx.store.id(*id as usize));
    }
    Ok(())
}

fn serve(rest: &[String]) -> Result<(), String> {
    // With --index the vocabulary, token budget, and model configuration
    // are reconstructed from the index's own metadata — query embeddings
    // must live in the stored embedding space — and the <vocab.csv>
    // positional is omitted.
    let (pipeline, model_config, index, flags) = match flag_value(rest, "--index") {
        Some(dir) => {
            let idx = ntr_index::SearchIndex::open(Path::new(dir)).map_err(|e| e.to_string())?;
            let params = IndexParams::from_meta(&idx.store)?;
            let (_, pipeline, model_cfg) = params.stack()?;
            (
                pipeline,
                Some(model_cfg),
                Some(std::sync::Arc::new(idx)),
                rest.to_vec(),
            )
        }
        None => {
            let (table, flags) = load_table(rest)?;
            let pipeline = Pipeline::builder()
                .vocab_from_tables(std::slice::from_ref(&table))
                .build()
                .map_err(|e| e.to_string())?;
            (pipeline, None, None, flags)
        }
    };
    let port: u16 = parsed_flag(&flags, "--port", 7878)?;
    // Same grammar and env fallback as `pretrain --faults`; the serve
    // faults are `serve-panic@N` / `serve-slow@N` with `@N` counting
    // flushes.
    let faults = match flag_value(&flags, "--faults") {
        Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| format!("bad --faults: {e}"))?),
        None => FaultPlan::from_env().map_err(|e| format!("bad NTR_FAULTS: {e}"))?,
    };
    let timeout_ms: u64 = parsed_flag(&flags, "--request-timeout-ms", 0u64)?;
    let cfg = ntr_serve::ServeConfig {
        max_batch: parsed_flag(&flags, "--max-batch", 8)?,
        max_wait: std::time::Duration::from_millis(parsed_flag(&flags, "--max-wait-ms", 2)?),
        n_workers: parsed_flag(&flags, "--workers", 0).map(|w: usize| {
            if w == 0 {
                ntr::tensor::par::max_threads()
            } else {
                w
            }
        })?,
        cache_bytes: parsed_flag(&flags, "--cache-mb", 32usize)? << 20,
        queue_cap: parsed_flag(&flags, "--queue-cap", 256usize)?,
        model_config,
        default_timeout: (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms)),
        faults,
        ..Default::default()
    };
    let server_cfg = ntr_serve::ServerConfig {
        max_conns: parsed_flag(&flags, "--max-conns", 1024usize)?,
        idle_timeout: std::time::Duration::from_millis(parsed_flag(
            &flags,
            "--idle-timeout-ms",
            30_000u64,
        )?),
        ..Default::default()
    };
    let obs = open_obs(&flags)?;
    let server = ntr_serve::Server::start_with_index(pipeline, cfg, server_cfg, port, obs, index)
        .map_err(|e| e.to_string())?;
    // Scripts scrape this line for the (possibly ephemeral) port.
    println!("listening on {}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let stats = server.wait();
    let svc = stats.service;
    println!(
        "served {} request(s) in {} batch(es) | {} error(s) | {} shed | cache {} hit(s) / {} miss(es) / {} eviction(s) | p50 {} ms | p99 {} ms",
        svc.requests,
        svc.batches,
        svc.errors,
        svc.shed,
        svc.cache.hits,
        svc.cache.misses,
        svc.cache.evictions,
        svc.p50_ms,
        svc.p99_ms
    );
    if svc.internal + svc.restarts + svc.quarantined + svc.deadline_exceeded + svc.degraded_rejects
        > 0
    {
        println!(
            "self-healing: {} internal error(s) | {} batcher restart(s) | {} quarantine(s) | {} deadline(s) exceeded | {} degraded reject(s) / {} probe(s)",
            svc.internal,
            svc.restarts,
            svc.quarantined,
            svc.deadline_exceeded,
            svc.degraded_rejects,
            svc.degraded_probes
        );
    }
    let ev = stats.event_loop;
    println!(
        "connections: {} accepted | {} rejected | {} accept error(s) | {} idle close(s) | {} slow close(s) | {} oversized line(s)",
        ev.conns_accepted,
        ev.conns_rejected,
        ev.accept_errors,
        ev.idle_closes,
        ev.slow_closes,
        ev.oversized_lines
    );
    Ok(())
}

fn trace_cmd(rest: &[String]) -> Result<(), String> {
    let (verb, rest) = rest
        .split_first()
        .ok_or("missing trace verb (summarize|validate)")?;
    if !matches!(verb.as_str(), "summarize" | "validate") {
        return Err(format!("unknown trace verb {verb:?}"));
    }
    let path = rest.first().ok_or("missing <trace.jsonl>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    match verb.as_str() {
        "validate" => {
            let n = schema::validate_trace(&text)?;
            println!("{path}: {n} event(s), all valid against trace schema v1");
            Ok(())
        }
        _ => summarize_trace(path, &text),
    }
}

/// Prints a per-event-kind table and loss-curve stats for a JSONL trace.
fn summarize_trace(path: &str, text: &str) -> Result<(), String> {
    // Per-event-kind tallies, in schema order so the table is stable.
    let kinds: Vec<&str> = schema::EVENTS.iter().map(|e| e.name).collect();
    let mut counts = vec![0u64; kinds.len()];
    let mut first_ms = vec![None::<u64>; kinds.len()];
    let mut last_ms = vec![0u64; kinds.len()];
    let mut losses: Vec<f64> = Vec::new();
    let mut anomalies: Vec<(String, u64)> = Vec::new();
    let mut retries = 0u64;
    let mut ckpt_bytes = 0u64;
    let mut tokens = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = parse_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        let get = |k: &str| {
            fields
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, raw)| raw.as_str())
        };
        let ev = get("ev").ok_or_else(|| format!("{path}:{}: missing ev", i + 1))?;
        let ev = ev.trim_matches('"').to_string();
        let slot = kinds
            .iter()
            .position(|k| *k == ev)
            .ok_or_else(|| format!("{path}:{}: unknown event {ev:?}", i + 1))?;
        counts[slot] += 1;
        if let Some(ms) = get("wall_ms").and_then(|v| v.parse::<u64>().ok()) {
            first_ms[slot].get_or_insert(ms);
            last_ms[slot] = last_ms[slot].max(ms);
        }
        match ev.as_str() {
            "step" => {
                if let Some(l) = get("loss").and_then(|v| v.parse::<f64>().ok()) {
                    losses.push(l);
                }
                tokens += get("tokens")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0);
            }
            "anomaly" => {
                let kind = get("kind").unwrap_or("\"?\"").trim_matches('"').to_string();
                match anomalies.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, n)) => *n += 1,
                    None => anomalies.push((kind, 1)),
                }
            }
            "rollback" => retries += 1,
            "ckpt_save" => {
                ckpt_bytes += get("bytes")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0);
            }
            _ => {}
        }
    }

    println!("{path}: {} event(s)\n", counts.iter().sum::<u64>());
    println!(
        "{:<16} {:>7} {:>10} {:>10}",
        "event", "count", "first_ms", "last_ms"
    );
    for (i, kind) in kinds.iter().enumerate() {
        if counts[i] == 0 {
            continue;
        }
        println!(
            "{kind:<16} {:>7} {:>10} {:>10}",
            counts[i],
            first_ms[i].unwrap_or(0),
            last_ms[i]
        );
    }
    if !losses.is_empty() {
        let n = losses.len() as f64;
        let mean = losses.iter().sum::<f64>() / n;
        let min = losses.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = losses.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "\nloss curve over {} step(s): first {:.4} | last {:.4} | min {:.4} | max {:.4} | mean {:.4}",
            losses.len(),
            losses[0],
            losses[losses.len() - 1],
            min,
            max,
            mean
        );
    }
    if tokens > 0 {
        println!("tokens processed: {tokens}");
    }
    if retries > 0 || !anomalies.is_empty() {
        let kinds_str = anomalies
            .iter()
            .map(|(k, n)| format!("{k} x{n}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "supervisor: {retries} rollback(s) | anomalies: {}",
            if kinds_str.is_empty() {
                "none".to_string()
            } else {
                kinds_str
            }
        );
    }
    if ckpt_bytes > 0 {
        println!("checkpoints written: {ckpt_bytes} byte(s) total");
    }
    Ok(())
}

fn encode(rest: &[String]) -> Result<(), String> {
    let (table, flags) = load_table(rest)?;
    let kind: ModelKind = flag_value(&flags, "--model").unwrap_or("tapas").parse()?;
    let precision: QuantSpec = flag_value(&flags, "--precision").unwrap_or("f32").parse()?;
    let spec = EncoderSpec::new(kind, precision);
    let context = flag_value(&flags, "--context")
        .unwrap_or(&table.caption)
        .to_string();
    let pipeline = Pipeline::builder()
        .vocab_from_tables(std::slice::from_ref(&table))
        .vocab_from_texts(std::slice::from_ref(&context))
        .encoder(spec)
        .build()
        .map_err(|e| e.to_string())?;
    let mut model = pipeline
        .build_default_encoder()
        .map_err(|e| e.to_string())?;
    let enc = pipeline.encode(model.as_mut(), &table, &context);
    println!(
        "model {} | {} tokens -> states {:?} | table embedding norm {:.3}",
        spec,
        enc.encoded.len(),
        enc.states.shape(),
        enc.table_embedding().norm()
    );
    println!("\ncell-embedding cosine to cell (0,0):");
    for r in 0..table.n_rows().min(6) {
        let mut line = String::new();
        for c in 0..table.n_cols().min(8) {
            match enc.cell_similarity((0, 0), (r, c)) {
                Some(cos) => line.push_str(&format!("{cos:+.2} ")),
                None => line.push_str("  --  "),
            }
        }
        println!("  {line}");
    }
    Ok(())
}
