//! `serve_smoke` — concurrent smoke-test client for `ntr serve`.
//!
//! ```text
//! serve_smoke 127.0.0.1:7878 50 data/countries.csv
//! ```
//!
//! Opens several connections, fires `n` encode requests at the server
//! (half of them duplicates, to exercise the embedding cache), validates
//! every response line (ok flag, embedding length, finite floats, and
//! bit-identical embeddings for duplicated requests), then sends the
//! shutdown command. Exits non-zero on any failure, so CI can gate on it.

use ntr::table::Table;
use ntr_serve::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve_smoke: {e}");
            ExitCode::from(1)
        }
    }
}

/// One request line over a row window of `table`; the window and context
/// both derive from `variant` (not `id`), so two requests with the same
/// variant have identical content and must collide in the cache.
fn request_line(id: u64, table: &Table, model: &str, variant: u64) -> String {
    let n_rows = table.n_rows().max(1);
    let start = (variant as usize) % n_rows;
    let end = (start + 2).min(table.n_rows());
    let rows: Vec<usize> = (start..end).collect();
    let window = table.select_rows(&rows);
    let mut line = String::new();
    line.push_str(&format!("{{\"id\": {id}, \"model\": "));
    json::write_str(&mut line, model);
    line.push_str(", \"context\": ");
    json::write_str(&mut line, &format!("what is in window {variant}"));
    line.push_str(", \"columns\": [");
    for (i, col) in window.columns().iter().enumerate() {
        if i > 0 {
            line.push_str(", ");
        }
        json::write_str(&mut line, &col.name);
    }
    line.push_str("], \"rows\": [");
    for r in 0..window.n_rows() {
        if r > 0 {
            line.push_str(", ");
        }
        line.push('[');
        for c in 0..window.n_cols() {
            if c > 0 {
                line.push_str(", ");
            }
            json::write_str(&mut line, window.cell(r, c).text());
        }
        line.push(']');
    }
    line.push_str("]}");
    line
}

/// Sends `line`, reads one response line, validates it, and returns the
/// embedding plus the `cached` flag.
fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &str,
    id: u64,
) -> Result<(Vec<f64>, bool), String> {
    writer
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| e.to_string())?;
    let mut resp = String::new();
    reader.read_line(&mut resp).map_err(|e| e.to_string())?;
    let doc = json::parse(resp.trim()).map_err(|e| format!("bad response JSON: {e}"))?;
    if doc.get("id").and_then(Json::as_u64) != Some(id) {
        return Err(format!("response id mismatch: {resp}"));
    }
    if doc.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("request {id} failed: {resp}"));
    }
    let d_model = doc
        .get("d_model")
        .and_then(Json::as_u64)
        .ok_or("missing d_model")?;
    let emb: Vec<f64> = doc
        .get("embedding")
        .and_then(Json::as_arr)
        .ok_or("missing embedding")?
        .iter()
        .map(|v| v.as_f64().ok_or("non-numeric embedding entry"))
        .collect::<Result<_, _>>()?;
    if emb.len() != d_model as usize || emb.is_empty() {
        return Err(format!(
            "request {id}: embedding length {} != d_model {d_model}",
            emb.len()
        ));
    }
    if emb.iter().any(|v| !v.is_finite()) {
        return Err(format!("request {id}: non-finite embedding values"));
    }
    let cached = doc.get("cached") == Some(&Json::Bool(true));
    Ok((emb, cached))
}

fn run(args: &[String]) -> Result<String, String> {
    let [addr, n, csv] = args else {
        return Err("usage: serve_smoke <addr> <n_requests> <table.csv>".into());
    };
    let n: u64 = n.parse().map_err(|_| format!("bad n_requests {n:?}"))?;
    let table = Table::from_csv_path(Path::new(csv)).map_err(|e| e.to_string())?;
    let models = ["bert", "tapas", "turl", "mate"];
    let n_conns = 8.min(n.max(1)) as usize;

    // Each connection thread sends its slice of the ids. Every second
    // request on a connection repeats the *previous* request's content
    // (same window, same context, same model) — by then the first
    // response has arrived, so the entry is in the cache and the server
    // must answer `cached: true` with a bit-identical embedding. Variants
    // are globally unique ids, so connections never collide with each
    // other and the expectation is deterministic.
    let results: Vec<Result<(u64, u64), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_conns)
            .map(|conn| {
                let table = &table;
                let addr = addr.as_str();
                scope.spawn(move || -> Result<(u64, u64), String> {
                    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
                    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                    let mut writer = stream;
                    let mut sent = 0u64;
                    let mut cache_hits = 0u64;
                    let mut prev: Option<(u64, Vec<f64>)> = None;
                    let my_ids: Vec<u64> = (conn as u64..n).step_by(n_conns).collect();
                    for (k, &id) in my_ids.iter().enumerate() {
                        let duplicate = k % 2 == 1;
                        let variant = if duplicate { my_ids[k - 1] } else { id };
                        let model = models[variant as usize % models.len()];
                        let line = request_line(id, table, model, variant);
                        let (emb, cached) = roundtrip(&mut reader, &mut writer, &line, id)?;
                        if cached {
                            cache_hits += 1;
                        }
                        if duplicate {
                            let (base_variant, base) =
                                prev.as_ref().expect("duplicate follows an original");
                            if *base_variant != variant || *base != emb {
                                return Err(format!(
                                    "request {id}: duplicate content produced a \
                                     different embedding"
                                ));
                            }
                            if !cached {
                                return Err(format!(
                                    "request {id}: expected a cache hit for repeated content"
                                ));
                            }
                        } else {
                            prev = Some((variant, emb));
                        }
                        sent += 1;
                    }
                    Ok((sent, cache_hits))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client thread panicked".into()))
            })
            .collect()
    });

    let mut total = 0u64;
    let mut hits = 0u64;
    for r in results {
        let (sent, cache_hits) = r?;
        total += sent;
        hits += cache_hits;
    }

    // A malformed request must come back as a structured error, not a
    // dropped connection.
    {
        let stream = TcpStream::connect(addr.as_str()).map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut writer = stream;
        writer
            .write_all(b"{\"id\": 999999, \"model\": \"gpt\", \"columns\": [], \"rows\": []}\n")
            .map_err(|e| e.to_string())?;
        let mut resp = String::new();
        reader.read_line(&mut resp).map_err(|e| e.to_string())?;
        let doc = json::parse(resp.trim()).map_err(|e| e.to_string())?;
        let kind = doc
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str);
        if doc.get("ok") != Some(&Json::Bool(false)) || kind != Some("BadModelChoice") {
            return Err(format!("expected BadModelChoice error, got: {resp}"));
        }
    }

    // Graceful shutdown.
    {
        let stream = TcpStream::connect(addr.as_str()).map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut writer = stream;
        writer
            .write_all(b"{\"cmd\": \"shutdown\"}\n")
            .map_err(|e| e.to_string())?;
        let mut ack = String::new();
        reader.read_line(&mut ack).map_err(|e| e.to_string())?;
        if !ack.contains("shutdown") {
            return Err(format!("expected shutdown ack, got: {ack}"));
        }
    }

    Ok(format!(
        "serve_smoke: {total}/{n} request(s) ok over {n_conns} connection(s), \
         {hits} cache hit(s), errors surfaced as typed responses, shutdown acked"
    ))
}
