//! # ntr-bench
//!
//! The experiment harness that regenerates every figure/exercise of the
//! paper (see DESIGN.md §2 for the experiment index E1–E12), plus shared
//! infrastructure for the criterion micro-benchmarks in `benches/`.
//!
//! Run all experiments:
//!
//! ```text
//! cargo run -p ntr-bench --release --bin experiments all
//! ```
//!
//! or a subset: `cargo run -p ntr-bench --release --bin experiments e1 e6`.
//! Results are printed as markdown tables and recorded in EXPERIMENTS.md.

pub mod experiments;
pub mod report;
pub mod setup;
