//! E8 — the context-placement ablation the survey notes (§2.3): "context
//! followed by serialized table vs. table appended by context".
//!
//! The same QA selector is trained and evaluated under both placements.

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::corpus::datasets::QaDataset;
use ntr::corpus::Split;
use ntr::models::Tapas;
use ntr::table::{ContextPosition, LinearizerOptions};
use ntr::tasks::qa::{evaluate, finetune, snapshot_dataset, CellSelector};
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

pub fn run(setup: &Setup) -> Vec<Report> {
    let cfg = setup.model_config();
    let ds = snapshot_dataset(&QaDataset::build(&setup.corpus, 5, 0x8A1), 2);

    let mut report = Report::new(
        "E8 — context before vs after the serialized table (QA accuracy)",
        &["context position", "coord acc", "denotation acc", "n"],
    );
    report.note(format!(
        "{} snapshot QA examples; identical model/pretraining/fine-tuning budgets",
        ds.examples.len()
    ));

    for (name, position) in [
        ("before table", ContextPosition::Before),
        ("after table", ContextPosition::After),
    ] {
        let opts = LinearizerOptions {
            max_tokens: 160,
            context_position: position,
        };
        let mut encoder = Tapas::new(&cfg);
        TrainRun::new(TrainConfig {
            epochs: setup.epochs(4, 10),
            lr: 3e-3,
            batch_size: 8,
            warmup_frac: 0.1,
            seed: 0x8A2,
        })
        .max_tokens(160)
        .mlm(&mut encoder, &setup.corpus, &setup.tok)
        .expect("infallible: no checkpointing configured");
        let mut model = CellSelector::new(encoder, 0x8A3);
        finetune(
            &mut model,
            &ds,
            &setup.tok,
            &TrainConfig {
                epochs: setup.epochs(6, 15),
                lr: 1e-3,
                batch_size: 8,
                warmup_frac: 0.1,
                seed: 0x8A4,
            },
            &opts,
        );
        let eval = evaluate(&mut model, &ds, Split::Test, &setup.tok, &opts);
        report.row(&[
            name.to_string(),
            f3(eval.coord_accuracy),
            f3(eval.denotation_accuracy),
            eval.n.to_string(),
        ]);
    }
    vec![report]
}
