//! E2 — Fig 2b: table processing and encoding.
//!
//! Compare the five serialization strategies across the whole corpus:
//! sequence length, cell coverage under a fixed token budget, rows lost to
//! truncation, and round-trip fidelity (does the decoded sequence still
//! contain the cell text?).

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::table::{
    ColumnMajorLinearizer, Linearizer, LinearizerOptions, RowMajorLinearizer, TapexLinearizer,
    TemplateLinearizer, TurlLinearizer,
};

pub fn run(setup: &Setup) -> Vec<Report> {
    let linearizers: Vec<Box<dyn Linearizer>> = vec![
        Box::new(RowMajorLinearizer),
        Box::new(TemplateLinearizer),
        Box::new(ColumnMajorLinearizer),
        Box::new(TapexLinearizer),
        Box::new(TurlLinearizer),
    ];
    let mut reports = Vec::new();
    for budget in [96usize, 256] {
        let opts = LinearizerOptions {
            max_tokens: budget,
            ..Default::default()
        };
        let mut report = Report::new(
            format!("E2 — serialization strategies (Fig 2b), budget {budget} tokens"),
            &[
                "strategy",
                "mean tokens",
                "cell coverage",
                "rows dropped",
                "roundtrip",
            ],
        );
        report.note(format!(
            "averaged over {} corpus tables; roundtrip = fraction of encoded cells whose text \
             survives decode (numeric sub-wording collapses whitespace)",
            setup.corpus.len()
        ));
        for lin in &linearizers {
            let mut tokens = 0usize;
            let mut total_cells = 0usize;
            let mut covered_cells = 0usize;
            let mut dropped_rows = 0usize;
            let mut roundtrip_hits = 0usize;
            let mut roundtrip_total = 0usize;
            for t in &setup.corpus.tables {
                let e = lin.linearize(t, &t.caption, &setup.tok, &opts);
                tokens += e.len();
                total_cells += t.n_rows() * t.n_cols();
                dropped_rows += e.truncated_rows();
                let decoded = setup.tok.decode(e.ids()).replace(' ', "");
                for (coord, _) in e.cells() {
                    covered_cells += 1;
                    let text = t
                        .cell(coord.0, coord.1)
                        .text()
                        .to_lowercase()
                        .replace(' ', "");
                    if !text.is_empty() {
                        roundtrip_total += 1;
                        if decoded.contains(&text) {
                            roundtrip_hits += 1;
                        }
                    }
                }
            }
            let n = setup.corpus.len() as f64;
            report.row(&[
                lin.name().to_string(),
                format!("{:.0}", tokens as f64 / n),
                f3(covered_cells as f64 / total_cells.max(1) as f64),
                format!("{:.1}", dropped_rows as f64 / n),
                f3(roundtrip_hits as f64 / roundtrip_total.max(1) as f64),
            ]);
        }
        reports.push(report);
    }
    reports
}
