//! E3 — Fig 2c: pretraining and output encoding.
//!
//! TURL pretraining with both objectives (MLM + masked entity recovery):
//! loss/accuracy trajectory, compared against an MLM-only BERT baseline on
//! the same corpus.

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::models::{Turl, VanillaBert};
use ntr::tasks::pretrain::PretrainReport;
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

fn quartiles(xs: &[f32]) -> [f32; 4] {
    if xs.is_empty() {
        return [0.0; 4];
    }
    let q = xs.len().div_ceil(4).max(1);
    let mut out = [0.0f32; 4];
    for (k, chunk) in xs.chunks(q).take(4).enumerate() {
        out[k] = chunk.iter().sum::<f32>() / chunk.len() as f32;
    }
    out
}

fn curve_rows(report: &mut Report, name: &str, loss: &[f32], acc: &[f32]) {
    let lq = quartiles(loss);
    let aq = quartiles(acc);
    for k in 0..4 {
        report.row(&[
            name.to_string(),
            format!("Q{}", k + 1),
            f3(lq[k] as f64),
            f3(aq[k] as f64),
        ]);
    }
}

pub fn run(setup: &Setup) -> Vec<Report> {
    let cfg = setup.model_config();
    let tc = TrainConfig {
        epochs: setup.epochs(6, 20),
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0x3E3,
    };

    let mut turl = Turl::new(&cfg);
    let turl_report: PretrainReport = TrainRun::new(tc)
        .max_tokens(192)
        .turl(&mut turl, &setup.entity_corpus, &setup.tok)
        .expect("infallible: no checkpointing configured");

    let mut bert = VanillaBert::new(&cfg);
    let bert_report = TrainRun::new(tc)
        .max_tokens(192)
        .mlm(&mut bert, &setup.entity_corpus, &setup.tok)
        .expect("infallible: no checkpointing configured");

    let mut report = Report::new(
        "E3 — pretraining trajectories (Fig 2c): loss/accuracy by training quartile",
        &["objective", "quartile", "loss", "masked-recovery acc"],
    );
    report.note(format!(
        "{} entity tables, {} epochs, {} optimizer steps (TURL)",
        setup.entity_corpus.len(),
        tc.epochs,
        turl_report.mlm_loss.len()
    ));
    curve_rows(
        &mut report,
        "turl mlm",
        &turl_report.mlm_loss,
        &turl_report.mlm_acc,
    );
    curve_rows(
        &mut report,
        "turl mer",
        &turl_report.mer_loss,
        &turl_report.mer_acc,
    );
    curve_rows(
        &mut report,
        "bert mlm",
        &bert_report.mlm_loss,
        &bert_report.mlm_acc,
    );
    vec![report]
}
