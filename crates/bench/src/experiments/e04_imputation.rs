//! E4 — Fig 2d: fine-tuning for data imputation, with the §3.4 failure
//! slices (numeric tables, headerless tables).
//!
//! Systems compared: mode baseline, untrained BERT, MLM-pretrained BERT,
//! pretrained+fine-tuned BERT, and jointly pretrained (+fine-tuned) TURL.

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::corpus::datasets::ImputationDataset;
use ntr::corpus::Split;
use ntr::models::{Turl, VanillaBert};
use ntr::tasks::imputation::{baseline_mode, evaluate, finetune, CandidatePools, ImputationEval};
use ntr::tasks::pretrain::MlmModel;
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

const MAX_TOKENS: usize = 192;

fn eval_row(report: &mut Report, name: &str, e: &ImputationEval) {
    report.row(&[
        name.to_string(),
        f3(e.accuracy),
        f3(e.macro_f1),
        f3(e.text_accuracy),
        f3(e.numeric_accuracy),
        f3(e.headered_accuracy),
        f3(e.headerless_accuracy),
    ]);
}

fn light_finetune<M: MlmModel>(model: &mut M, ds: &ImputationDataset, setup: &Setup) {
    finetune(
        model,
        ds,
        &setup.tok,
        &TrainConfig {
            epochs: 1,
            lr: 3e-4,
            batch_size: 8,
            warmup_frac: 0.1,
            seed: 0x4F7,
        },
        MAX_TOKENS,
    );
}

pub fn run(setup: &Setup) -> Vec<Report> {
    let ds = ImputationDataset::build(&setup.corpus, 3, 0x4D5);
    let pools = CandidatePools::build(&ds, Split::Train);
    let cfg = setup.model_config();
    let pre_cfg = TrainConfig {
        epochs: setup.epochs(8, 40),
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0x4AA,
    };

    let mut report = Report::new(
        "E4 — data imputation (Fig 2d): test accuracy/F1 with failure slices",
        &[
            "system",
            "acc",
            "macro-F1",
            "text",
            "numeric",
            "headered",
            "headerless",
        ],
    );
    report.note(format!(
        "{} examples ({} test); candidates per blank <= 64 (gold included); \
         slices follow the paper's §3.4 failure analysis",
        ds.examples.len(),
        ds.indices(Split::Test).len()
    ));

    eval_row(
        &mut report,
        "mode baseline",
        &baseline_mode(&ds, Split::Test, &pools),
    );

    let mut bert = VanillaBert::new(&cfg);
    let untrained = evaluate(&mut bert, &ds, Split::Test, &pools, &setup.tok, MAX_TOKENS);
    eval_row(&mut report, "bert untrained", &untrained);

    TrainRun::new(pre_cfg)
        .max_tokens(MAX_TOKENS)
        .mlm(&mut bert, &setup.corpus, &setup.tok)
        .expect("infallible: no checkpointing configured");
    let pretrained = evaluate(&mut bert, &ds, Split::Test, &pools, &setup.tok, MAX_TOKENS);
    eval_row(&mut report, "bert pretrained", &pretrained);

    light_finetune(&mut bert, &ds, setup);
    let tuned = evaluate(&mut bert, &ds, Split::Test, &pools, &setup.tok, MAX_TOKENS);
    eval_row(&mut report, "bert pretrained+ft", &tuned);

    let mut turl = Turl::new(&cfg);
    TrainRun::new(pre_cfg)
        .max_tokens(MAX_TOKENS)
        .turl(&mut turl, &setup.entity_corpus, &setup.tok)
        .expect("infallible: no checkpointing configured");
    TrainRun::new(pre_cfg)
        .max_tokens(MAX_TOKENS)
        .mlm(&mut turl, &setup.corpus, &setup.tok)
        .expect("infallible: no checkpointing configured");
    light_finetune(&mut turl, &ds, setup);
    let turl_eval = evaluate(&mut turl, &ds, Split::Test, &pools, &setup.tok, MAX_TOKENS);
    eval_row(&mut report, "turl pretrained+ft", &turl_eval);

    vec![report]
}
