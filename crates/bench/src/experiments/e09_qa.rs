//! E9 — the §2.1 QA application (the tutorial's TAPAS demo): cell
//! selection with snapshots vs. the lexical baseline vs. random.

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::corpus::datasets::QaDataset;
use ntr::corpus::Split;
use ntr::models::Tapas;
use ntr::table::LinearizerOptions;
use ntr::tasks::qa::{baseline_lexical, evaluate, finetune, snapshot_dataset, CellSelector};
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

pub fn run(setup: &Setup) -> Vec<Report> {
    let cfg = setup.model_config();
    let full = QaDataset::build(&setup.corpus, 6, 0x9A1);
    let ds = snapshot_dataset(&full, 2);
    let opts = LinearizerOptions {
        max_tokens: 160,
        ..Default::default()
    };

    let mut encoder = Tapas::new(&cfg);
    TrainRun::new(TrainConfig {
        epochs: setup.epochs(4, 10),
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0x9A2,
    })
    .max_tokens(160)
    .mlm(&mut encoder, &setup.corpus, &setup.tok)
    .expect("infallible: no checkpointing configured");
    let mut model = CellSelector::new(encoder, 0x9A3);
    let untrained = evaluate(&mut model, &ds, Split::Test, &setup.tok, &opts);
    finetune(
        &mut model,
        &ds,
        &setup.tok,
        &TrainConfig {
            epochs: setup.epochs(8, 15),
            lr: 1e-3,
            batch_size: 8,
            warmup_frac: 0.1,
            seed: 0x9A4,
        },
        &opts,
    );
    let tuned = evaluate(&mut model, &ds, Split::Test, &setup.tok, &opts);
    let lexical = baseline_lexical(&ds, Split::Test);

    // Random-cell reference: expected accuracy = mean of 1/cells.
    let test_idx = ds.indices(Split::Test);
    let random: f64 = test_idx
        .iter()
        .map(|&i| {
            1.0 / (ds.examples[i].table.n_rows() * (ds.examples[i].table.n_cols() - 1)) as f64
        })
        .sum::<f64>()
        / test_idx.len().max(1) as f64;

    let mut report = Report::new(
        "E9 — table QA by cell selection (snapshot k=2, question as context)",
        &["system", "coord acc", "denotation acc"],
    );
    report.note(format!(
        "{} snapshot examples ({} dropped by snapshot recall); questions are \
         templated, so the lexical baseline is near its ceiling by construction",
        ds.examples.len(),
        full.examples.len() - ds.examples.len()
    ));
    report.row(&["random cell (expected)".into(), f3(random), f3(random)]);
    report.row(&[
        "tapas+pointer untrained".into(),
        f3(untrained.coord_accuracy),
        f3(untrained.denotation_accuracy),
    ]);
    report.row(&[
        "tapas+pointer fine-tuned".into(),
        f3(tuned.coord_accuracy),
        f3(tuned.denotation_accuracy),
    ]);
    report.row(&[
        "lexical baseline".into(),
        f3(lexical.coord_accuracy),
        f3(lexical.denotation_accuracy),
    ]);
    vec![report]
}
