//! E11 — §2.1 table retrieval: dense bi-encoder (zero-shot and
//! contrastively fine-tuned) vs. the lexical tf-idf baseline.

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::corpus::datasets::RetrievalDataset;
use ntr::corpus::Split;
use ntr::models::VanillaBert;
use ntr::table::LinearizerOptions;
use ntr::tasks::retrieval::{evaluate_dense, finetune_contrastive, RetrievalEval, TfIdfIndex};
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

fn row(report: &mut Report, name: &str, e: &RetrievalEval) {
    report.row(&[
        name.to_string(),
        f3(e.mrr),
        f3(e.ndcg5),
        f3(e.hits1),
        e.n.to_string(),
    ]);
}

pub fn run(setup: &Setup) -> Vec<Report> {
    let cfg = setup.model_config();
    let ds = RetrievalDataset::build(setup.corpus.clone(), 4, 0xB01);
    let opts = LinearizerOptions {
        max_tokens: 160,
        ..Default::default()
    };

    let mut report = Report::new(
        "E11 — table retrieval over the corpus pool",
        &["system", "MRR", "NDCG@5", "Hits@1", "queries"],
    );
    report.note(format!(
        "pool of {} tables, {} disambiguated queries (test split reported)",
        ds.corpus.len(),
        ds.queries.len()
    ));

    let index = TfIdfIndex::build(&ds);
    row(
        &mut report,
        "tf-idf (lexical)",
        &index.evaluate(&ds, Split::Test),
    );

    let mut model = VanillaBert::new(&cfg);
    row(
        &mut report,
        "dense untrained",
        &evaluate_dense(&mut model, &ds, Split::Test, &setup.tok, &opts),
    );

    TrainRun::new(TrainConfig {
        epochs: setup.epochs(4, 12),
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0xB02,
    })
    .max_tokens(160)
    .mlm(&mut model, &setup.corpus, &setup.tok)
    .expect("infallible: no checkpointing configured");
    row(
        &mut report,
        "dense MLM-pretrained",
        &evaluate_dense(&mut model, &ds, Split::Test, &setup.tok, &opts),
    );

    finetune_contrastive(
        &mut model,
        &ds,
        &setup.tok,
        &TrainConfig {
            epochs: setup.epochs(2, 4),
            lr: 1e-3,
            batch_size: 4,
            warmup_frac: 0.1,
            seed: 0xB03,
        },
        &opts,
        3,
    );
    row(
        &mut report,
        "dense contrastive",
        &evaluate_dense(&mut model, &ds, Split::Test, &setup.tok, &opts),
    );
    vec![report]
}
