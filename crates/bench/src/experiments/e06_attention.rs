//! E6 — MATE's efficiency claim (§2.3): sparse row/column attention scales
//! better than dense attention as tables grow.
//!
//! For synthetic tables of growing row counts we time (a) dense attention
//! over the full sequence and (b) the genuinely sparse kernel, and report
//! visited (query, key) pairs — the asymptotic driver.

use crate::report::{f1, Report};
use crate::setup::Setup;
use ntr::models::{sparse_attention, EncoderInput, SparseAxis, SparsePattern};
use ntr::nn::init::SeededInit;
use std::time::Instant;

/// Builds the metadata of a synthetic `rows x cols` grid with a small
/// context prefix (5 tokens), 1 token per cell.
fn grid_input(rows: usize, cols: usize) -> EncoderInput {
    let mut input = EncoderInput {
        ids: Vec::new(),
        rows: Vec::new(),
        cols: Vec::new(),
        segments: Vec::new(),
        kinds: Vec::new(),
        ranks: Vec::new(),
    };
    for _ in 0..5 {
        input.ids.push(2);
        input.rows.push(0);
        input.cols.push(0);
        input.segments.push(0);
        input.kinds.push(1);
        input.ranks.push(0);
    }
    for r in 0..rows {
        for c in 0..cols {
            input.ids.push(10);
            input.rows.push(r + 1);
            input.cols.push(c + 1);
            input.segments.push(1);
            input.kinds.push(3);
            input.ranks.push(0);
        }
    }
    input
}

fn time_us(mut f: impl FnMut(), reps: usize) -> f64 {
    // Warm up once, then take the best of `reps` to suppress noise.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let s = Instant::now();
        f();
        best = best.min(s.elapsed().as_secs_f64() * 1e6);
    }
    best
}

pub fn run(_setup: &Setup) -> Vec<Report> {
    let d_head = 16;
    let cols = 8;
    let mut report = Report::new(
        "E6 — dense vs sparse attention scaling (MATE, §2.3)",
        &[
            "rows",
            "seq len",
            "dense pairs",
            "sparse pairs",
            "dense µs",
            "sparse µs",
            "speedup",
        ],
    );
    report.note("one attention head, d_head = 16, 8 columns, 1 token/cell; best of 5 runs");

    let mut init = SeededInit::new(0x6A);
    for rows in [4usize, 8, 16, 32, 64, 96] {
        let input = grid_input(rows, cols);
        let n = input.len();
        let q = init.uniform(&[n, d_head], -1.0, 1.0);
        let k = init.uniform(&[n, d_head], -1.0, 1.0);
        let v = init.uniform(&[n, d_head], -1.0, 1.0);
        let pattern = SparsePattern::from_input(&input, SparseAxis::Row);

        let dense_us = time_us(
            || {
                let scale = 1.0 / (d_head as f32).sqrt();
                let _ = q.matmul_nt(&k).scale(scale).softmax_rows().matmul(&v);
            },
            5,
        );
        let sparse_us = time_us(
            || {
                let _ = sparse_attention(&q, &k, &v, &pattern);
            },
            5,
        );
        report.row(&[
            rows.to_string(),
            n.to_string(),
            (n * n).to_string(),
            pattern.n_pairs().to_string(),
            f1(dense_us),
            f1(sparse_us),
            format!("{:.2}x", dense_us / sparse_us),
        ]);
    }
    vec![report]
}
