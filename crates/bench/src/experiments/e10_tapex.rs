//! E10 — §2.1 semantic parsing plus TAPEX's pretraining objective:
//!
//! * **neural SQL execution**: how close a pretrained TAPEX gets to the
//!   exact executor on held-out queries;
//! * **text-to-SQL**: denotation accuracy of a fine-tuned parser against
//!   the first-column baseline.

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::corpus::datasets::Text2SqlDataset;
use ntr::corpus::Split;
use ntr::models::{ModelConfig, Tapex};
use ntr::sql::gen::{GenConfig, QueryGenerator};
use ntr::tasks::pretrain::eval_tapex_execution;
use ntr::tasks::text2sql::{baseline_first_column, evaluate, finetune};
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

const MAX_TOKENS: usize = 160;

pub fn run(setup: &Setup) -> Vec<Report> {
    // Extend the tokenizer corpus with SQL/question text.
    let ds = Text2SqlDataset::build(&setup.corpus, 4, 0xA01);
    let extra: Vec<String> = ds
        .examples
        .iter()
        .flat_map(|e| [e.question.clone(), e.sql.to_string().to_lowercase()])
        .collect();
    let tok = ntr::corpus::vocab::train_tokenizer(&setup.corpus, &extra, 2600);
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        ..setup.model_config()
    };
    let tc = TrainConfig {
        epochs: setup.epochs(3, 30),
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0xA02,
    };

    // Part A: neural SQL execution.
    let mut executor = Tapex::new(&cfg);
    let losses = TrainRun::new(tc)
        .queries_per_table(3)
        .max_tokens(MAX_TOKENS)
        .tapex(&mut executor, &setup.corpus, &tok)
        .expect("infallible: no checkpointing configured");
    let mut held_out = Vec::new();
    for table in setup.corpus.tables.iter().take(16) {
        let mut g = QueryGenerator::new(0xA03, GenConfig::default());
        for (q, a) in g.generate_n(table, 2) {
            held_out.push((table.clone(), q, a));
        }
    }
    let exec_acc = eval_tapex_execution(&mut executor, &held_out, &tok, MAX_TOKENS);

    let mut exec_report = Report::new(
        "E10a — TAPEX as a neural SQL executor",
        &["executor", "denotation acc", "notes"],
    );
    exec_report.note(format!(
        "pretraining loss {:.3} -> {:.3} over {} steps; {} held-out (table, query) pairs",
        losses.first().copied().unwrap_or(0.0),
        losses.last().copied().unwrap_or(0.0),
        losses.len(),
        held_out.len()
    ));
    exec_report.row(&[
        "ntr-sql (exact)".into(),
        f3(1.0),
        "ground truth by construction".into(),
    ]);
    exec_report.row(&[
        "tapex (neural)".into(),
        f3(exec_acc),
        "greedy decode, token-level match".into(),
    ]);

    // Part B: text-to-SQL.
    let mut parser = Tapex::new(&ModelConfig { seed: 0xA04, ..cfg });
    let ft_losses = finetune(
        &mut parser,
        &ds,
        &tok,
        &TrainConfig {
            epochs: setup.epochs(6, 30),
            ..tc
        },
        MAX_TOKENS,
    );
    let eval = evaluate(&mut parser, &ds, Split::Test, &tok, MAX_TOKENS);
    let base = baseline_first_column(&ds, Split::Test);

    let mut parse_report = Report::new(
        "E10b — text-to-SQL semantic parsing (denotation evaluation)",
        &["system", "parse rate", "denotation acc", "exact match"],
    );
    parse_report.note(format!(
        "{} questions ({} test); fine-tuning loss {:.3} -> {:.3}",
        ds.examples.len(),
        eval.n,
        ft_losses.first().copied().unwrap_or(0.0),
        ft_losses.last().copied().unwrap_or(0.0)
    ));
    parse_report.row(&[
        "tapex parser".into(),
        f3(eval.parse_rate),
        f3(eval.denotation_accuracy),
        f3(eval.exact_match),
    ]);
    parse_report.row(&[
        "first-column baseline".into(),
        f3(base.parse_rate),
        f3(base.denotation_accuracy),
        f3(base.exact_match),
    ]);
    vec![exec_report, parse_report]
}
