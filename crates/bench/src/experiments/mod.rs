//! The experiment suite (DESIGN.md §2): every runnable artifact of the
//! paper mapped to a function. Each experiment takes the shared
//! [`Setup`](crate::setup::Setup) and returns markdown [`Report`]s.

use crate::report::Report;
use crate::setup::Setup;

mod e01_offtheshelf;
mod e02_serialization;
mod e03_pretraining;
mod e04_imputation;
mod e05_dimensions;
mod e06_attention;
mod e07_serialization_ablation;
mod e08_context_position;
mod e09_qa;
mod e10_tapex;
mod e11_retrieval;
mod e12_consistency;
mod e13_aggregation;
mod e14_embedding_ablation;

/// An experiment: id, description, and runner.
pub struct Experiment {
    /// Short id (`e1`…`e12`).
    pub id: &'static str,
    /// What the experiment reproduces.
    pub what: &'static str,
    /// Runner.
    pub run: fn(&Setup) -> Vec<Report>,
}

/// The full registry in id order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            what: "Fig 2a — off-the-shelf model inputs and outputs",
            run: e01_offtheshelf::run,
        },
        Experiment {
            id: "e2",
            what: "Fig 2b — table processing and encoding",
            run: e02_serialization::run,
        },
        Experiment {
            id: "e3",
            what: "Fig 2c — TURL pretraining (MLM + MER)",
            run: e03_pretraining::run,
        },
        Experiment {
            id: "e4",
            what: "Fig 2d — fine-tuning for data imputation + failure slices",
            run: e04_imputation::run,
        },
        Experiment {
            id: "e5",
            what: "§2.3 survey dimension matrix across model families",
            run: e05_dimensions::run,
        },
        Experiment {
            id: "e6",
            what: "§2.3 MATE — sparse attention efficiency",
            run: e06_attention::run,
        },
        Experiment {
            id: "e7",
            what: "§2.3 ablation — row vs column serialization",
            run: e07_serialization_ablation::run,
        },
        Experiment {
            id: "e8",
            what: "§2.3 ablation — context-then-table vs table-then-context",
            run: e08_context_position::run,
        },
        Experiment {
            id: "e9",
            what: "§2.1 QA demo — cell selection vs lexical baseline",
            run: e09_qa::run,
        },
        Experiment {
            id: "e10",
            what: "§2.1 TAPEX neural SQL execution + text-to-SQL",
            run: e10_tapex::run,
        },
        Experiment {
            id: "e11",
            what: "§2.1 table retrieval — dense vs tf-idf",
            run: e11_retrieval::run,
        },
        Experiment {
            id: "e12",
            what: "§2.4 representation-consistency probes",
            run: e12_consistency::run,
        },
        Experiment {
            id: "e13",
            what: "extension — TAPAS aggregation weak supervision",
            run: e13_aggregation::run,
        },
        Experiment {
            id: "e14",
            what: "extension — structural-embedding ablation",
            run: e14_embedding_ablation::run,
        },
    ]
}
