//! E12 — §2.4's call for "data-driven basic tests … to measure the
//! consistency of the data representation": row/column-order invariance
//! and header sensitivity, per model family, before and after pretraining.

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::models::{Mate, Tapas, Turl, VanillaBert};
use ntr::table::LinearizerOptions;
use ntr::tasks::pretrain::MlmModel;
use ntr::tasks::probes::consistency;
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

pub fn run(setup: &Setup) -> Vec<Report> {
    let cfg = setup.model_config();
    let opts = LinearizerOptions {
        max_tokens: 192,
        ..Default::default()
    };
    let tc = TrainConfig {
        epochs: setup.epochs(4, 12),
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0xC01,
    };

    let mut report = Report::new(
        "E12 — representation-consistency probes (cosine similarity of [CLS] embeddings)",
        &[
            "model",
            "state",
            "row-perm ↑",
            "col-perm ↑",
            "header-strip (lower = headers used)",
        ],
    );
    report.note(format!(
        "{} tables probed; a relation is a set of tuples, so row/column \
         permutations should not move the representation, while removing \
         headers removes real information and should",
        setup.corpus.len()
    ));

    fn probe<M: MlmModel>(
        mut model: M,
        name: &str,
        setup: &Setup,
        opts: &LinearizerOptions,
        tc: &TrainConfig,
        report: &mut Report,
    ) {
        let before = consistency(&mut model, &setup.corpus, &setup.tok, opts, 0xC02);
        report.row(&[
            name.to_string(),
            "untrained".to_string(),
            f3(before.row_order_invariance),
            f3(before.col_order_invariance),
            f3(before.header_similarity),
        ]);
        TrainRun::new(*tc)
            .max_tokens(192)
            .mlm(&mut model, &setup.corpus, &setup.tok)
            .expect("infallible: no checkpointing configured");
        let after = consistency(&mut model, &setup.corpus, &setup.tok, opts, 0xC02);
        report.row(&[
            name.to_string(),
            "pretrained".to_string(),
            f3(after.row_order_invariance),
            f3(after.col_order_invariance),
            f3(after.header_similarity),
        ]);
    }

    probe(
        VanillaBert::new(&cfg),
        "bert",
        setup,
        &opts,
        &tc,
        &mut report,
    );
    probe(Tapas::new(&cfg), "tapas", setup, &opts, &tc, &mut report);
    probe(Turl::new(&cfg), "turl", setup, &opts, &tc, &mut report);
    probe(Mate::new(&cfg), "mate", setup, &opts, &tc, &mut report);
    vec![report]
}
