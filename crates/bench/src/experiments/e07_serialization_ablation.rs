//! E7 — the row-vs-column serialization ablation the survey notes a few
//! works ran (§2.3: "row vs. column serialization").
//!
//! Identical models are pretrained with MLM under each serialization and
//! evaluated on held-out tables under the *same* serialization they were
//! trained with; we also cross-evaluate to show format sensitivity.

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::corpus::split_three;
use ntr::corpus::Split;
use ntr::models::VanillaBert;
use ntr::table::{ColumnMajorLinearizer, Linearizer, RowMajorLinearizer};
use ntr::tasks::pretrain::eval_mlm;
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

const MAX_TOKENS: usize = 192;

pub fn run(setup: &Setup) -> Vec<Report> {
    let cfg = setup.model_config();
    let tc = TrainConfig {
        epochs: setup.epochs(6, 20),
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0x7A1,
    };

    // Split the corpus into pretraining and held-out tables.
    let splits = split_three(setup.corpus.len(), 0.0, 0.25, 0x7A2);
    let train_tables: Vec<_> = setup
        .corpus
        .tables
        .iter()
        .zip(&splits)
        .filter(|(_, &s)| s == Split::Train)
        .map(|(t, _)| t.clone())
        .collect();
    let held_out: Vec<_> = setup
        .corpus
        .tables
        .iter()
        .zip(&splits)
        .filter(|(_, &s)| s == Split::Test)
        .map(|(t, _)| t.clone())
        .collect();
    let train_corpus = ntr::corpus::tables::TableCorpus {
        tables: train_tables,
        kinds: Vec::new(),
    };

    let mut report = Report::new(
        "E7 — row-major vs column-major serialization (MLM recovery on held-out tables)",
        &["pretrained with", "eval row-major", "eval column-major"],
    );
    report.note(format!(
        "{} pretraining tables, {} held-out; same model config and budget",
        train_corpus.tables.len(),
        held_out.len()
    ));

    let linearizers: [(&str, &dyn Linearizer); 2] = [
        ("row-major", &RowMajorLinearizer),
        ("column-major", &ColumnMajorLinearizer),
    ];
    for (name, lin) in linearizers {
        let mut model = VanillaBert::new(&cfg);
        TrainRun::new(tc)
            .max_tokens(MAX_TOKENS)
            .linearizer(lin)
            .mlm(&mut model, &train_corpus, &setup.tok)
            .expect("infallible: no checkpointing configured");
        let row_eval = eval_mlm(
            &mut model,
            &held_out,
            &setup.tok,
            MAX_TOKENS,
            &RowMajorLinearizer,
            0x7E,
        );
        let col_eval = eval_mlm(
            &mut model,
            &held_out,
            &setup.tok,
            MAX_TOKENS,
            &ColumnMajorLinearizer,
            0x7E,
        );
        report.row(&[name.to_string(), f3(row_eval), f3(col_eval)]);
    }
    vec![report]
}
