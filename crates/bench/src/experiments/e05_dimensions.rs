//! E5 — the survey's §2.2/§2.3 dimension table, measured.
//!
//! For each model family: its design-space coordinates (input processing,
//! architecture extension, pretraining objective, output granularity) plus
//! *measured* downstream quality on NLI and CTA after identical
//! pretraining+fine-tuning budgets.

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::corpus::datasets::{CtaDataset, NliDataset};
use ntr::corpus::Split;
use ntr::models::{Mate, SequenceEncoder, Tapas, Turl, VanillaBert};
use ntr::table::LinearizerOptions;
use ntr::tasks::cta::{baseline_majority, ColumnAnnotator};
use ntr::tasks::nli::{baseline_lookup, FactVerifier};
use ntr::tasks::pretrain::MlmModel;
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

const MAX_TOKENS: usize = 192;

fn pretrain<M: MlmModel>(model: &mut M, setup: &Setup) {
    TrainRun::new(TrainConfig {
        epochs: setup.epochs(4, 15),
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0x55A,
    })
    .max_tokens(MAX_TOKENS)
    .mlm(model, &setup.corpus, &setup.tok)
    .expect("infallible: no checkpointing configured");
}

fn measure<M: SequenceEncoder + 'static>(
    encoder: M,
    setup: &Setup,
    nli: &NliDataset,
    cta: &CtaDataset,
) -> (f64, f64) {
    let opts = LinearizerOptions {
        max_tokens: MAX_TOKENS,
        ..Default::default()
    };
    let ft = TrainConfig {
        epochs: setup.epochs(3, 8),
        lr: 1e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0x55B,
    };
    // NLI fine-tune + eval (fresh copy of the encoder weights per task via
    // the checkpoint mechanism is unnecessary: we consume the encoder for
    // NLI and re-pretrain for CTA in the caller).
    let mut verifier = FactVerifier::new(encoder, 0x55C);
    ntr::tasks::nli::finetune(&mut verifier, nli, &setup.tok, &ft, &opts);
    let nli_eval = ntr::tasks::nli::evaluate(&mut verifier, nli, Split::Test, &setup.tok, &opts);

    let mut annotator = ColumnAnnotator::new(verifier.encoder, cta.labels.len(), 0x55D);
    ntr::tasks::cta::finetune(&mut annotator, cta, &setup.tok, &ft, &opts);
    let cta_eval = ntr::tasks::cta::evaluate(&mut annotator, cta, Split::Test, &setup.tok, &opts);
    (nli_eval.accuracy, cta_eval.accuracy)
}

pub fn run(setup: &Setup) -> Vec<Report> {
    let cfg = setup.model_config();
    let nli = NliDataset::build(&setup.corpus, 4, 0x5E1);
    let cta = CtaDataset::build(&setup.corpus, 0x5E2);

    let mut dims = Report::new(
        "E5a — survey dimensions per family (design coordinates)",
        &[
            "model",
            "structural embeddings",
            "attention",
            "pretraining",
            "output granularity",
        ],
    );
    dims.row(&[
        "bert".into(),
        "segment only".into(),
        "full".into(),
        "MLM".into(),
        "token/CLS".into(),
    ]);
    dims.row(&[
        "tapas".into(),
        "row+col+kind".into(),
        "full".into(),
        "MLM".into(),
        "cell scores + CLS".into(),
    ]);
    dims.row(&[
        "tabert".into(),
        "row+col+kind".into(),
        "row-wise + vertical".into(),
        "MLM".into(),
        "cell/column".into(),
    ]);
    dims.row(&[
        "turl".into(),
        "row+col+kind".into(),
        "visibility matrix".into(),
        "MLM+MER".into(),
        "cell/entity".into(),
    ]);
    dims.row(&[
        "mate".into(),
        "row+col+kind".into(),
        "row/col sparse heads".into(),
        "MLM".into(),
        "token/CLS".into(),
    ]);
    dims.row(&[
        "tapex".into(),
        "row+col+kind".into(),
        "enc-dec".into(),
        "neural SQL execution".into(),
        "generated text".into(),
    ]);

    let mut measured = Report::new(
        "E5b — measured task accuracy per family (same pretrain+fine-tune budget)",
        &["model", "NLI acc", "CTA acc"],
    );
    measured.note(format!(
        "NLI: {} claims; CTA: {} columns over {} labels; both on held-out test splits",
        nli.examples.len(),
        cta.examples.len(),
        cta.labels.len()
    ));

    {
        let mut m = VanillaBert::new(&cfg);
        pretrain(&mut m, setup);
        let (nli_acc, cta_acc) = measure(m, setup, &nli, &cta);
        measured.row(&["bert".into(), f3(nli_acc), f3(cta_acc)]);
    }
    {
        let mut m = Tapas::new(&cfg);
        pretrain(&mut m, setup);
        let (nli_acc, cta_acc) = measure(m, setup, &nli, &cta);
        measured.row(&["tapas".into(), f3(nli_acc), f3(cta_acc)]);
    }
    {
        let mut m = Turl::new(&cfg);
        pretrain(&mut m, setup);
        let (nli_acc, cta_acc) = measure(m, setup, &nli, &cta);
        measured.row(&["turl".into(), f3(nli_acc), f3(cta_acc)]);
    }
    {
        let mut m = Mate::new(&cfg);
        pretrain(&mut m, setup);
        let (nli_acc, cta_acc) = measure(m, setup, &nli, &cta);
        measured.row(&["mate".into(), f3(nli_acc), f3(cta_acc)]);
    }
    let nli_base = baseline_lookup(&nli, Split::Test);
    let cta_base = baseline_majority(&cta, Split::Test);
    measured.row(&[
        "symbolic/majority baseline".into(),
        f3(nli_base.accuracy),
        f3(cta_base.accuracy),
    ]);

    vec![dims, measured]
}
