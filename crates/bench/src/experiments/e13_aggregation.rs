//! E13 (extension) — TAPAS's weak-supervision setting: predict an
//! aggregation operator and a target column, answer by executing the
//! predicted program. Exercises the aggregation head the TAPAS paper adds
//! at the survey's "output level".

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::corpus::Split;
use ntr::models::Tapas;
use ntr::table::LinearizerOptions;
use ntr::tasks::aggqa::{baseline_keyword, evaluate, finetune, AggQaDataset, AggregationQa};
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

pub fn run(setup: &Setup) -> Vec<Report> {
    let ds = AggQaDataset::build(&setup.corpus, 5, 0xD01);
    let extra: Vec<String> = ds.examples.iter().map(|e| e.question.clone()).collect();
    let tok = ntr::corpus::vocab::train_tokenizer(&setup.corpus, &extra, 2400);
    let cfg = ntr::models::ModelConfig {
        vocab_size: tok.vocab_size(),
        ..setup.model_config()
    };
    let opts = LinearizerOptions {
        max_tokens: 160,
        ..Default::default()
    };

    let mut encoder = Tapas::new(&cfg);
    TrainRun::new(TrainConfig {
        epochs: setup.epochs(4, 10),
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0xD02,
    })
    .max_tokens(160)
    .mlm(&mut encoder, &setup.corpus, &tok)
    .expect("infallible: no checkpointing configured");
    let mut model = AggregationQa::new(encoder, 0xD03);
    let untrained = evaluate(&mut model, &ds, Split::Test, &tok, &opts);
    finetune(
        &mut model,
        &ds,
        &tok,
        &TrainConfig {
            epochs: setup.epochs(6, 15),
            lr: 1e-3,
            batch_size: 8,
            warmup_frac: 0.1,
            seed: 0xD04,
        },
        &opts,
    );
    let tuned = evaluate(&mut model, &ds, Split::Test, &tok, &opts);
    let keyword = baseline_keyword(&ds, Split::Test);

    let mut report = Report::new(
        "E13 — aggregation QA (TAPAS weak supervision): operator + column + execution",
        &["system", "op acc", "col acc", "denotation acc"],
    );
    report.note(format!(
        "{} aggregate questions ({} evaluated on test); predicted programs \
         executed by ntr-sql",
        ds.examples.len(),
        tuned.n
    ));
    report.row(&[
        "tapas untrained".into(),
        f3(untrained.op_accuracy),
        f3(untrained.col_accuracy),
        f3(untrained.denotation_accuracy),
    ]);
    report.row(&[
        "tapas fine-tuned".into(),
        f3(tuned.op_accuracy),
        f3(tuned.col_accuracy),
        f3(tuned.denotation_accuracy),
    ]);
    report.row(&[
        "keyword baseline".into(),
        f3(keyword.op_accuracy),
        f3(keyword.col_accuracy),
        f3(keyword.denotation_accuracy),
    ]);
    vec![report]
}
