//! E14 (extension) — ablation of the structural embeddings (DESIGN.md §4
//! design decision 3 / the survey's input-level extension): the *same*
//! TAPAS architecture with and without row/column/kind embedding tables,
//! compared on MLM recovery and snapshot QA.

use crate::report::{f3, Report};
use crate::setup::Setup;
use ntr::corpus::datasets::QaDataset;
use ntr::corpus::Split;
use ntr::models::{EmbeddingFlags, Tapas};
use ntr::table::{LinearizerOptions, RowMajorLinearizer};
use ntr::tasks::pretrain::eval_mlm;
use ntr::tasks::qa::{evaluate, finetune, snapshot_dataset, CellSelector};
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

pub fn run(setup: &Setup) -> Vec<Report> {
    let cfg = setup.model_config();
    let qa = snapshot_dataset(&QaDataset::build(&setup.corpus, 5, 0xE01), 2);
    let opts = LinearizerOptions {
        max_tokens: 160,
        ..Default::default()
    };
    let pre = TrainConfig {
        epochs: setup.epochs(4, 10),
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0xE02,
    };
    let ft = TrainConfig {
        epochs: setup.epochs(6, 15),
        lr: 1e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 0xE03,
    };

    let mut report = Report::new(
        "E14 — structural-embedding ablation (same TAPAS architecture)",
        &[
            "embeddings",
            "MLM recovery",
            "QA coord acc",
            "QA denotation acc",
        ],
    );
    report.note(format!(
        "{} snapshot QA examples; MLM recovery measured on the pretraining corpus",
        qa.examples.len()
    ));

    for (name, flags) in [
        ("word+pos+segment (BERT-like)", EmbeddingFlags::text_only()),
        ("+row +col +kind (TAPAS)", EmbeddingFlags::structural()),
    ] {
        let mut encoder = Tapas::with_embeddings(&cfg, flags);
        TrainRun::new(pre)
            .max_tokens(160)
            .mlm(&mut encoder, &setup.corpus, &setup.tok)
            .expect("infallible: no checkpointing configured");
        let mlm = eval_mlm(
            &mut encoder,
            &setup.corpus.tables,
            &setup.tok,
            160,
            &RowMajorLinearizer,
            0xE04,
        );
        let mut selector = CellSelector::new(encoder, 0xE05);
        finetune(&mut selector, &qa, &setup.tok, &ft, &opts);
        let eval = evaluate(&mut selector, &qa, Split::Test, &setup.tok, &opts);
        report.row(&[
            name.to_string(),
            f3(mlm),
            f3(eval.coord_accuracy),
            f3(eval.denotation_accuracy),
        ]);
    }
    vec![report]
}
