//! E1 — Fig 2a: off-the-shelf model inputs and outputs.
//!
//! Encode the same table with every model family's input format; compare
//! token counts, encoding shapes, parameter counts, and single-encode
//! latency — the quantitative version of the hands-on §3.1 comparison.

use crate::report::{f1, Report};
use crate::setup::Setup;
use ntr::models::{EncoderInput, TaBert};
use ntr::nn::Layer;
use ntr::table::{
    Linearizer, LinearizerOptions, RowMajorLinearizer, TapexLinearizer, TurlLinearizer,
};
use ntr::zoo::{build_encoder, EncoderSpec, ModelKind};
use std::time::Instant;

pub fn run(setup: &Setup) -> Vec<Report> {
    let table = &setup.corpus.tables[0];
    let opts = LinearizerOptions::default();
    let cfg = setup.model_config();

    let mut report = Report::new(
        "E1 — off-the-shelf inputs and outputs (Fig 2a)",
        &[
            "model",
            "input format",
            "tokens",
            "params",
            "output shape",
            "encode ms",
        ],
    );
    report.note(format!(
        "table `{}`: {} rows x {} cols, caption {:?}",
        table.id,
        table.n_rows(),
        table.n_cols(),
        table.caption
    ));

    for kind in ModelKind::ALL {
        let lin: Box<dyn Linearizer> = match kind {
            ModelKind::Turl => Box::new(TurlLinearizer),
            _ => Box::new(RowMajorLinearizer),
        };
        let encoded = lin.linearize(table, &table.caption, &setup.tok, &opts);
        let input = EncoderInput::from_encoded(&encoded);
        let mut model = build_encoder(EncoderSpec::f32(kind), &cfg)
            .expect("f32 specs are valid for every registry kind");
        let start = Instant::now();
        let states = model.encode(&input, false);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        report.row(&[
            kind.name().to_string(),
            encoded.linearizer().to_string(),
            encoded.len().to_string(),
            model.num_params().to_string(),
            format!("{:?}", states.shape()),
            f1(ms),
        ]);
    }

    // TaBERT has a table-native interface.
    let mut tabert = TaBert::new(&cfg);
    let start = Instant::now();
    let out = tabert.encode_table(table, &table.caption, &setup.tok, false);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    report.row(&[
        "tabert".to_string(),
        "per-row + vertical".to_string(),
        "(per row)".to_string(),
        tabert.num_params().to_string(),
        format!("cells {:?}", out.cells.shape()),
        f1(ms),
    ]);

    // TAPEX input format (encoder side).
    let enc = TapexLinearizer.linearize(table, "SELECT Country FROM t", &setup.tok, &opts);
    report.note(format!(
        "tapex encoder input uses the `{}` format ({} tokens with a SQL context)",
        enc.linearizer(),
        enc.len()
    ));
    vec![report]
}
