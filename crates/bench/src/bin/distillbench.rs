//! `distillbench` — teacher vs distilled-student inference comparison.
//!
//! Distills a [`ntr::models::RowStudent`] from a frozen teacher on a
//! synthetic-KB corpus (the same [`ntr::tasks::DistillRun`] path `ntr
//! distill` drives), then measures — on that corpus — how faithfully and
//! how fast the student reproduces the teacher's pooled row/table
//! embeddings at f32 and at int8 (DESIGN.md §13). Fidelity is the mean
//! cosine over exactly the spans the distillation loss matches on
//! ([`ntr::tasks::distill::distill_spans`]: `[CLS]` plus each surviving
//! data row); speed is µs per pooled row, best of `--reps` passes.
//!
//! Output is one `BENCH_distill.json` row per variant, in the criterion
//! shim's flat-JSON baseline format (merge key `op/shape/threads/simd`):
//!
//! ```text
//! {"op": "distill/encode", "shape": "student-int8", ..., "ns_per_iter": <ns/row>,
//!  "cosine": 0.991, "speedup_vs_teacher": 8.2, "rows": 214}
//! ```
//!
//! plus a `distill/train` row recording the distillation itself (steps,
//! wall time, final training cosine).
//!
//! Usage:
//!
//! ```text
//! distillbench [--tables N] [--epochs N] [--reps N] [--teacher KIND]
//!              [--json BENCH_distill.json] [--gate]
//! ```
//!
//! `--gate` turns the run into a CI check: the int8 student must reach
//! cosine fidelity ≥ `NTR_DISTILLBENCH_MIN_COSINE` (default 0.97) at
//! ≥ `NTR_DISTILLBENCH_MIN_SPEEDUP`× (default 5) the teacher's mean
//! per-row latency.

use criterion::{read_baseline_entries, Entry};
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::models::{pool_mean, EncoderInput, ModelConfig, RowStudent, SequenceEncoder};
use ntr::table::LinearizerOptions;
use ntr::tasks::distill::distill_spans;
use ntr::tasks::trainer::TrainConfig;
use ntr::tasks::DistillRun;
use ntr::zoo::{build_encoder, EncoderSpec, ModelKind, QuantSpec};
use ntr::Pipeline;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: distillbench [--tables N] [--epochs N] [--reps N] [--teacher KIND] \
         [--json PATH] [--gate]\n\n\
         --tables N    synthetic-KB tables to distill + evaluate on (default 48)\n\
         --epochs N    distillation epochs (default 6)\n\
         --reps N      timed passes per variant; best is reported (default 3)\n\
         --teacher K   teacher family: bert|tapas|turl|mate (default tapas)\n\
         --json PATH   merge rows into this baseline (default BENCH_distill.json)\n\
         --gate        enforce student-int8 cosine >= NTR_DISTILLBENCH_MIN_COSINE\n\
                       (0.97) and speedup >= NTR_DISTILLBENCH_MIN_SPEEDUP (5) vs\n\
                       the teacher's per-row latency"
    );
    std::process::exit(2)
}

struct Args {
    tables: usize,
    epochs: usize,
    reps: usize,
    teacher: ModelKind,
    json: PathBuf,
    gate: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        tables: 48,
        epochs: 6,
        reps: 3,
        teacher: ModelKind::Tapas,
        json: PathBuf::from("BENCH_distill.json"),
        gate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--tables" => args.tables = val().parse().unwrap_or_else(|_| usage()),
            "--epochs" => args.epochs = val().parse().unwrap_or_else(|_| usage()),
            "--reps" => args.reps = val().parse::<usize>().unwrap_or_else(|_| usage()).max(1),
            "--teacher" => args.teacher = val().parse().unwrap_or_else(|_| usage()),
            "--json" => args.json = PathBuf::from(val()),
            "--gate" => args.gate = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.teacher == ModelKind::RowStudent {
        usage();
    }
    args
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let (mut dot, mut na, mut nb) = (0f64, 0f64, 0f64);
    for (x, y) in a.iter().zip(b) {
        dot += f64::from(*x) * f64::from(*y);
        na += f64::from(*x) * f64::from(*x);
        nb += f64::from(*y) * f64::from(*y);
    }
    if na <= 0.0 || nb <= 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// One pre-serialized evaluation table: the model input and the pooled
/// spans the distillation loss matches on. Serialization/tokenization is
/// shared by every variant (and amortized by serving's cache), so it is
/// hoisted out of the timed loop — `ns/row` measures model inference.
struct EvalExample {
    input: EncoderInput,
    spans: Vec<std::ops::Range<usize>>,
}

/// One variant's evaluation over the whole corpus: mean span cosine to
/// the teacher and best-of-`reps` per-row encode latency. The cosine
/// pass doubles as warmup (it also derives the int8 weight snapshot — a
/// one-time cost quantized serving pays at model build, not per row).
fn measure(
    model: &mut dyn SequenceEncoder,
    examples: &[EvalExample],
    teacher_spans: &[Vec<Vec<f32>>],
    reps: usize,
) -> (f64, f64, usize) {
    let mut n_spans = 0usize;
    let mut cos_sum = 0f64;
    for (ex, targets) in examples.iter().zip(teacher_spans) {
        let states = model.encode(&ex.input, false);
        for (span, target) in ex.spans.iter().zip(targets) {
            cos_sum += cosine(pool_mean(&states, span).data(), target);
            n_spans += 1;
        }
    }
    let mut best_ns = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for ex in examples {
            std::hint::black_box(model.encode(&ex.input, false));
        }
        best_ns = best_ns.min(t0.elapsed().as_nanos() as f64);
    }
    (
        cos_sum / n_spans.max(1) as f64,
        best_ns / n_spans.max(1) as f64,
        n_spans,
    )
}

/// Merges rows into the baseline file, shim-format (same writer as
/// `indexbench` / `cargo bench --json`).
fn write_baseline(path: &PathBuf, rows: Vec<Entry>) {
    let mut entries = read_baseline_entries(path);
    for m in rows {
        entries.retain(|e| {
            (&e.op, &e.shape, e.threads, e.simd) != (&m.op, &m.shape, m.threads, m.simd)
        });
        entries.push(m);
    }
    entries.sort_by(|a, b| {
        (&a.op, &a.shape, a.threads, a.simd).cmp(&(&b.op, &b.shape, b.threads, b.simd))
    });
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let simd = if e.simd { "on" } else { "off" };
        let mut line = format!(
            "  {{\"op\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"simd\": \"{simd}\", \"ns_per_iter\": {:.1}",
            e.op, e.shape, e.threads, e.ns_per_iter
        );
        for (k, v) in &e.extra {
            line.push_str(&format!(", \"{k}\": {v}"));
        }
        line.push_str(&format!("}}{comma}\n"));
        out.push_str(&line);
    }
    out.push_str("]\n");
    match std::fs::write(path, out) {
        Ok(()) => println!("wrote {} ({} entries)", path.display(), entries.len()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn main() {
    let args = parse_args();
    let min_cosine = env_f64("NTR_DISTILLBENCH_MIN_COSINE", 0.97);
    let min_speedup = env_f64("NTR_DISTILLBENCH_MIN_SPEEDUP", 5.0);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let simd = cfg!(feature = "simd");

    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: args.tables,
            headerless_prob: 0.0,
            seed: 7,
            ..CorpusConfig::default()
        },
    );
    let pipeline = Pipeline::builder()
        .vocab_from_tables(&corpus.tables)
        .vocab_size(600)
        .options(LinearizerOptions {
            max_tokens: 64,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty");
    // Serving-scale width (the tiny test config is so narrow that
    // per-call overhead, not arithmetic, dominates every variant).
    let cfg = ModelConfig {
        vocab_size: pipeline.tokenizer().vocab_size(),
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        max_seq: 64,
        ..ModelConfig::tiny(pipeline.tokenizer().vocab_size())
    };
    let mut teacher = build_encoder(EncoderSpec::f32(args.teacher), &cfg)
        .expect("f32 teachers are always constructible");
    let mut student = RowStudent::new(&ModelConfig { seed: 99, ..cfg });

    println!(
        "distillbench: distilling {} -> row-student on {} tables, {} epochs ...",
        args.teacher.name(),
        args.tables,
        args.epochs
    );
    let t_train = Instant::now();
    let report = DistillRun::new(TrainConfig {
        epochs: args.epochs,
        lr: 5e-3,
        batch_size: 4,
        warmup_frac: 0.0,
        seed: 0xD17,
    })
    .max_tokens(64)
    .run(
        &mut student,
        teacher.as_mut(),
        &corpus,
        pipeline.tokenizer(),
    )
    .expect("distillation runs clean without faults");
    let train_ns = t_train.elapsed().as_nanos() as f64;
    println!(
        "distilled: {} optimizer step(s) in {:.1} ms, final training cosine {:.4}",
        report.loss.len(),
        train_ns / 1e6,
        report.final_cosine()
    );

    // Serialize every table once; the timed loops below measure pure
    // model inference over these shared inputs.
    let opts = LinearizerOptions {
        max_tokens: 64,
        ..Default::default()
    };
    let examples: Vec<EvalExample> = corpus
        .tables
        .iter()
        .map(|t| {
            let encoded =
                pipeline
                    .linearizer()
                    .linearize(t, &t.caption, pipeline.tokenizer(), &opts);
            EvalExample {
                spans: distill_spans(&encoded),
                input: EncoderInput::from_encoded(&encoded),
            }
        })
        .collect();

    // The teacher's pooled span embeddings are the fidelity reference for
    // every variant (and make its own cosine an exact 1.0 sanity row).
    let teacher_spans: Vec<Vec<Vec<f32>>> = examples
        .iter()
        .map(|ex| {
            let states = teacher.encode(&ex.input, false);
            ex.spans
                .iter()
                .map(|span| pool_mean(&states, span).data().to_vec())
                .collect()
        })
        .collect();

    let mut rows = vec![Entry {
        op: "distill/train".to_string(),
        shape: format!("{}->row-student", args.teacher.name()),
        threads,
        simd,
        ns_per_iter: train_ns,
        extra: vec![
            ("steps".to_string(), report.loss.len().to_string()),
            ("epochs".to_string(), args.epochs.to_string()),
            (
                "final_cosine".to_string(),
                format!("{:.4}", report.final_cosine()),
            ),
        ],
    }];

    let (teacher_ns, mut int8_cos, mut int8_speedup) = (f64::NAN, 0.0, 0.0);
    let mut teacher_ns = teacher_ns;
    println!(
        "\n{:>14} {:>12} {:>10} {:>10} {:>8}",
        "variant", "ns/row", "cosine", "speedup", "rows"
    );
    for shape in ["teacher", "student-f32", "student-int8"] {
        let model: &mut dyn SequenceEncoder = match shape {
            "teacher" => teacher.as_mut(),
            "student-f32" => {
                student.set_precision(QuantSpec::F32);
                &mut student
            }
            _ => {
                student.set_precision(QuantSpec::Int8);
                &mut student
            }
        };
        let (cos, ns, n_rows) = measure(model, &examples, &teacher_spans, args.reps);
        if shape == "teacher" {
            teacher_ns = ns;
        }
        let speedup = teacher_ns / ns.max(1.0);
        if shape == "student-int8" {
            int8_cos = cos;
            int8_speedup = speedup;
        }
        println!("{shape:>14} {ns:>12.0} {cos:>10.4} {speedup:>9.1}x {n_rows:>8}");
        rows.push(Entry {
            op: "distill/encode".to_string(),
            shape: shape.to_string(),
            threads,
            simd,
            ns_per_iter: ns,
            extra: vec![
                ("cosine".to_string(), format!("{cos:.4}")),
                ("speedup_vs_teacher".to_string(), format!("{speedup:.1}")),
                ("rows".to_string(), n_rows.to_string()),
                ("tables".to_string(), args.tables.to_string()),
            ],
        });
    }

    write_baseline(&args.json, rows);

    let mut gate_failures = Vec::new();
    if args.gate {
        if int8_cos < min_cosine {
            gate_failures.push(format!(
                "student-int8 cosine {int8_cos:.4} below {min_cosine}"
            ));
        }
        if int8_speedup < min_speedup {
            gate_failures.push(format!(
                "student-int8 speedup {int8_speedup:.1}x below {min_speedup}x vs teacher"
            ));
        }
    }
    if !gate_failures.is_empty() {
        eprintln!("distillbench gate FAILED:");
        for f in &gate_failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    if args.gate {
        println!("distillbench gate passed");
    }
}
