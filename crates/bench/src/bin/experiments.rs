//! Experiment runner: regenerates every figure/exercise of the paper.
//!
//! ```text
//! cargo run -p ntr-bench --release --bin experiments -- all
//! cargo run -p ntr-bench --release --bin experiments -- e1 e6 --scale=small
//! ```
//!
//! Results print as markdown (paste-ready for EXPERIMENTS.md).

use ntr_bench::experiments::registry;
use ntr_bench::setup::{Scale, Setup};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut wanted: Vec<String> = Vec::new();
    for a in &args {
        if let Some(s) = a.strip_prefix("--scale=") {
            scale = Scale::parse(s).unwrap_or_else(|| {
                eprintln!("unknown scale {s:?}; use small|full");
                std::process::exit(2);
            });
        } else {
            wanted.push(a.to_lowercase());
        }
    }
    if wanted.is_empty() {
        eprintln!("usage: experiments [--scale=small|full] <all|e1 e2 ...>");
        eprintln!("\navailable experiments:");
        for e in registry() {
            eprintln!("  {:<4} {}", e.id, e.what);
        }
        std::process::exit(2);
    }
    let run_all = wanted.iter().any(|w| w == "all");

    println!("# ntr experiment run (scale: {scale:?})\n");
    let setup_start = Instant::now();
    let setup = Setup::standard(scale);
    println!(
        "setup: {} entities, {} mixed tables, {} entity tables, vocab {} ({:.1}s)\n",
        setup.world.n_entities(),
        setup.corpus.len(),
        setup.entity_corpus.len(),
        setup.tok.vocab_size(),
        setup_start.elapsed().as_secs_f64()
    );

    for e in registry() {
        if !run_all && !wanted.contains(&e.id.to_string()) {
            continue;
        }
        println!("## {} — {}\n", e.id.to_uppercase(), e.what);
        let start = Instant::now();
        let reports = (e.run)(&setup);
        for r in &reports {
            r.print();
        }
        println!(
            "_{} completed in {:.1}s_\n",
            e.id,
            start.elapsed().as_secs_f64()
        );
    }
}
