//! `loadgen` — closed-loop load generator for the event-loop server.
//!
//! Starts an in-process [`ntr_serve::Server`] (tiny deterministic model,
//! cache on, so steady state measures the serving path rather than the
//! forward pass), then drives it over real TCP sockets from a
//! single-threaded non-blocking client loop built on the same
//! [`ntr_serve::poller`] the server uses. Each connection keeps exactly
//! one request in flight; a wave ends when every connection has collected
//! its quota of responses.
//!
//! Output is one `BENCH_serve.json` row per wave, in the criterion shim's
//! flat-JSON baseline format (merge key `op/shape/threads/simd`, same as
//! `cargo bench --json`), with per-wave latency percentiles annotated:
//!
//! ```text
//! {"op": "serve/loadgen", "shape": "256", ..., "ns_per_iter": <mean ns>,
//!  "p50_us": ..., "p99_us": ..., "rps": ..., "requests": ..., "shed": ...}
//! ```
//!
//! Usage:
//!
//! ```text
//! loadgen [--conns 64,256,1024] [--requests 32] [--queue-cap 4096]
//!         [--fault SPEC] [--timeout-ms N] [--json BENCH_serve.json] [--gate]
//! ```
//!
//! `--gate` turns the run into a CI check: below-capacity load must shed
//! nothing, drop no connection, and keep p99 under a generous
//! single-core-friendly ceiling (`NTR_LOADGEN_MAX_P99_MS`, default 2000).
//! Every wave is closed-loop, so "zero hung requests" is checked
//! structurally: a wave only ends when every connection has collected its
//! full response quota (typed errors count — they are responses).
//!
//! `--fault SPEC` injects deterministic serve faults (`serve-panic@N`,
//! `serve-slow@N`, `@N` counting flushes — the `NTR_FAULTS` grammar); the
//! per-wave rows then record `deadline_exceeded` / `internal` counts so
//! the perf baseline captures robustness overhead, and the gate requires
//! the post-recovery `{"cmd":"health"}` state to be `ok`. `--timeout-ms`
//! stamps every request with a wire-level `timeout_ms` budget.
//!
//! Server-side latency accounting is a fixed 32-bucket log2 histogram, so
//! its memory is O(1) in the number of requests — a soak at any wave count
//! cannot grow it (the old per-request `Vec<u64>` leaked under sustained
//! load).

use criterion::{read_baseline_entries, Entry};
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::models::ModelConfig;
use ntr::table::LinearizerOptions;
use ntr::tensor::faults::FaultPlan;
use ntr::Pipeline;
use ntr_serve::poller::{Interest, Poller};
use ntr_serve::{ServeConfig, Server, ServerConfig};
use std::io::BufRead;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--conns LIST] [--requests N] [--queue-cap N] \
         [--fault SPEC] [--timeout-ms N] [--json PATH] [--gate]\n\n\
         --conns LIST   comma-separated wave sizes (default 64,256,1024)\n\
         --requests N   responses each connection collects (default 32)\n\
         --queue-cap N  server admission queue capacity (default 4096)\n\
         --fault SPEC   inject serve faults, e.g. serve-panic@50,serve-slow@120\n\
         --timeout-ms N stamp every request with a timeout_ms budget (0 = none)\n\
         --json PATH    merge rows into this baseline (default BENCH_serve.json)\n\
         --gate         enforce SLOs: zero shed, zero drops, p99 ceiling,\n\
                        and health \"ok\" after a faulted run\n\
         \n\
         env: NTR_LOADGEN_MAX_P99_MS (gate ceiling, default 2000)\n\
              NTR_LOADGEN_TIMEOUT_S  (per-wave wall clock, default 120)\n\
              NTR_FAULTS             (fault spec fallback when --fault is absent)"
    );
    std::process::exit(2)
}

struct Args {
    conns: Vec<usize>,
    requests: usize,
    queue_cap: usize,
    fault: Option<FaultPlan>,
    timeout_ms: u64,
    json: PathBuf,
    gate: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        conns: vec![64, 256, 1024],
        requests: 32,
        queue_cap: 4096,
        fault: None,
        timeout_ms: 0,
        json: PathBuf::from("BENCH_serve.json"),
        gate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--conns" => {
                args.conns = val()
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.conns.is_empty() {
                    usage();
                }
            }
            "--requests" => args.requests = val().parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => args.queue_cap = val().parse().unwrap_or_else(|_| usage()),
            "--fault" => {
                args.fault = Some(FaultPlan::parse(&val()).unwrap_or_else(|e| {
                    eprintln!("bad --fault: {e}");
                    usage()
                }))
            }
            "--timeout-ms" => args.timeout_ms = val().parse().unwrap_or_else(|_| usage()),
            "--json" => args.json = PathBuf::from(val()),
            "--gate" => args.gate = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    // `NTR_FAULTS` works here the same way it does for `ntr serve`:
    // an explicit `--fault` wins, the env is the fallback.
    if args.fault.is_none() {
        args.fault = FaultPlan::from_env().unwrap_or_else(|e| {
            eprintln!("bad NTR_FAULTS: {e}");
            usage()
        });
    }
    args
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Pre-renders a pool of distinct request lines from a small generated
/// corpus. Distinct contexts give distinct cache keys, so the pool sets
/// the cache working set; it fits, and steady state is all hits.
fn request_pool(timeout_ms: u64) -> (Vec<Vec<u8>>, Pipeline, ModelConfig) {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 8,
            min_rows: 3,
            max_rows: 5,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 17,
        },
    );
    let pipeline = Pipeline::builder()
        .vocab_from_tables(&corpus.tables)
        .vocab_size(1500)
        .options(LinearizerOptions {
            max_tokens: 64,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty");
    let cfg = ModelConfig {
        vocab_size: pipeline.tokenizer().vocab_size(),
        d_model: 32,
        n_heads: 2,
        n_layers: 1,
        d_ff: 64,
        max_seq: 64,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let mut pool = Vec::new();
    for (i, t) in corpus.tables.iter().enumerate() {
        let mut line = String::new();
        line.push_str(&format!(
            "{{\"id\": {i}, \"model\": \"bert\", \"context\": \"load {i}\", \"columns\": ["
        ));
        // (timeout_ms rendered below, before closing the object)
        for (c, col) in t.columns().iter().enumerate() {
            if c > 0 {
                line.push_str(", ");
            }
            ntr_serve::json::write_str(&mut line, &col.name);
        }
        line.push_str("], \"rows\": [");
        for r in 0..t.n_rows() {
            if r > 0 {
                line.push_str(", ");
            }
            line.push('[');
            for c in 0..t.n_cols() {
                if c > 0 {
                    line.push_str(", ");
                }
                ntr_serve::json::write_str(&mut line, &t.cell(r, c).raw);
            }
            line.push(']');
        }
        if timeout_ms > 0 {
            line.push_str(&format!("], \"timeout_ms\": {timeout_ms}}}\n"));
        } else {
            line.push_str("]}\n");
        }
        pool.push(line.into_bytes());
    }
    (pool, pipeline, cfg)
}

/// One closed-loop connection: a single request in flight, `remaining`
/// responses still owed.
struct Client {
    stream: TcpStream,
    /// Read accumulator; responses split on `\n`.
    buf: Vec<u8>,
    /// Unwritten request bytes (tail of the current request on short
    /// writes).
    out: Vec<u8>,
    /// Registered interest; READ normally, BOTH while `out` is non-empty.
    interest: Interest,
    sent_at: Instant,
    remaining: usize,
    next_req: usize,
    dropped: bool,
}

struct WaveResult {
    responses: u64,
    shed: u64,
    deadline_exceeded: u64,
    internal: u64,
    degraded: u64,
    dropped: u64,
    elapsed: Duration,
    /// Sorted response latencies, microseconds.
    latencies_us: Vec<u64>,
}

impl WaveResult {
    fn pct(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_us.len() as f64 * p) as usize).min(self.latencies_us.len() - 1);
        self.latencies_us[idx]
    }
}

fn run_wave(
    addr: std::net::SocketAddr,
    pool: &[Vec<u8>],
    n_conns: usize,
    requests: usize,
    deadline: Duration,
) -> WaveResult {
    let mut poller = Poller::new().expect("poller");
    let mut clients: Vec<Client> = Vec::with_capacity(n_conns);
    for i in 0..n_conns {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true).expect("nonblocking");
        {
            use std::os::fd::AsRawFd;
            poller
                .register(stream.as_raw_fd(), i, Interest::READ)
                .expect("register");
        }
        clients.push(Client {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            interest: Interest::READ,
            sent_at: Instant::now(),
            remaining: requests,
            next_req: i, // stagger the pool so waves mix cache keys
            dropped: false,
        });
    }

    let start = Instant::now();
    let mut result = WaveResult {
        responses: 0,
        shed: 0,
        deadline_exceeded: 0,
        internal: 0,
        degraded: 0,
        dropped: 0,
        elapsed: Duration::ZERO,
        latencies_us: Vec::with_capacity(n_conns * requests),
    };

    // Kick: queue the first request on every connection.
    for (i, client) in clients.iter_mut().enumerate() {
        send_next(client, pool, &mut poller, i);
    }

    let mut events = Vec::new();
    let mut open = clients.iter().filter(|c| c.remaining > 0).count();
    while open > 0 {
        if start.elapsed() > deadline {
            eprintln!(
                "loadgen: wave of {n_conns} exceeded {}s wall clock; aborting",
                deadline.as_secs()
            );
            std::process::exit(2);
        }
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .expect("poller wait");
        for ev in events.drain(..) {
            let i = ev.token;
            let c = &mut clients[i];
            if c.remaining == 0 || c.dropped {
                continue;
            }
            if ev.writable && !c.out.is_empty() {
                flush_out(c, &mut poller, i);
            }
            if ev.readable || ev.hangup {
                match read_responses(c, pool, &mut poller, i, &mut result) {
                    Ok(()) => {}
                    Err(()) => {
                        c.dropped = true;
                        result.dropped += 1;
                        use std::os::fd::AsRawFd;
                        poller.deregister(c.stream.as_raw_fd()).ok();
                    }
                }
            }
            if c.remaining == 0 || c.dropped {
                open -= 1;
                if !c.dropped {
                    use std::os::fd::AsRawFd;
                    poller.deregister(c.stream.as_raw_fd()).ok();
                }
            }
        }
    }

    result.elapsed = start.elapsed();
    result.latencies_us.sort_unstable();
    result
}

/// Queues the next pooled request on the connection and flushes what the
/// kernel will take.
fn send_next(c: &mut Client, pool: &[Vec<u8>], poller: &mut Poller, token: usize) {
    c.out.extend_from_slice(&pool[c.next_req % pool.len()]);
    c.next_req += 1;
    c.sent_at = Instant::now();
    flush_out(c, poller, token);
}

fn flush_out(c: &mut Client, poller: &mut Poller, token: usize) {
    let mut off = 0usize;
    loop {
        match (&c.stream).write(&c.out[off..]) {
            Ok(0) => break,
            Ok(n) => {
                off += n;
                if off == c.out.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break, // surfaces as EOF on the read side
        }
    }
    c.out.drain(..off);
    let want = if c.out.is_empty() {
        Interest::READ
    } else {
        Interest::BOTH
    };
    if (want.readable, want.writable) != (c.interest.readable, c.interest.writable) {
        use std::os::fd::AsRawFd;
        poller.modify(c.stream.as_raw_fd(), token, want).ok();
        c.interest = want;
    }
}

/// Drains readable bytes and accounts every complete response line.
/// `Err(())` means the server closed the connection.
fn read_responses(
    c: &mut Client,
    pool: &[Vec<u8>],
    poller: &mut Poller,
    token: usize,
    result: &mut WaveResult,
) -> Result<(), ()> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match (&c.stream).read(&mut chunk) {
            Ok(0) => return Err(()),
            Ok(n) => c.buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    while let Some(nl) = c.buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = c.buf.drain(..=nl).collect();
        let us = c.sent_at.elapsed().as_micros().min(u64::MAX as u128) as u64;
        result.latencies_us.push(us);
        result.responses += 1;
        // Cheap classification by error kind: these strings only appear
        // inside the typed "error": {"kind": ...} object.
        if line.windows(12).any(|w| w == b"\"Overloaded\"") {
            result.shed += 1;
        } else if line.windows(18).any(|w| w == b"\"DeadlineExceeded\"") {
            result.deadline_exceeded += 1;
        } else if line.windows(10).any(|w| w == b"\"Internal\"") {
            result.internal += 1;
        } else if line.windows(10).any(|w| w == b"\"Degraded\"") {
            result.degraded += 1;
        }
        c.remaining -= 1;
        if c.remaining == 0 {
            break;
        }
        send_next(c, pool, poller, token);
    }
    Ok(())
}

/// Merges wave rows into the baseline file, shim-format (see
/// `criterion::Criterion::finalize`).
fn write_baseline(path: &PathBuf, rows: Vec<Entry>) {
    let mut entries = read_baseline_entries(path);
    for m in rows {
        entries.retain(|e| {
            (&e.op, &e.shape, e.threads, e.simd) != (&m.op, &m.shape, m.threads, m.simd)
        });
        entries.push(m);
    }
    entries.sort_by(|a, b| {
        (&a.op, &a.shape, a.threads, a.simd).cmp(&(&b.op, &b.shape, b.threads, b.simd))
    });
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let simd = if e.simd { "on" } else { "off" };
        let mut line = format!(
            "  {{\"op\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"simd\": \"{simd}\", \"ns_per_iter\": {:.1}",
            e.op, e.shape, e.threads, e.ns_per_iter
        );
        for (k, v) in &e.extra {
            line.push_str(&format!(", \"{k}\": {v}"));
        }
        line.push_str(&format!("}}{comma}\n"));
        out.push_str(&line);
    }
    out.push_str("]\n");
    match std::fs::write(path, out) {
        Ok(()) => println!("wrote {} ({} entries)", path.display(), entries.len()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// One blocking health round-trip; returns the reported state (or a
/// describable failure string, which the gate will reject).
fn query_health(addr: std::net::SocketAddr) -> String {
    let probe = || -> std::io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.write_all(b"{\"cmd\": \"health\"}\n")?;
        let mut line = String::new();
        std::io::BufReader::new(stream).read_line(&mut line)?;
        // The state field is a flat string; slice it out without a JSON
        // dependency: "state": "<value>".
        let state = line
            .split("\"state\": \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or("unparseable")
            .to_string();
        Ok(state)
    };
    probe().unwrap_or_else(|e| format!("unreachable ({e})"))
}

fn main() {
    let args = parse_args();
    let max_wave = args.conns.iter().copied().max().unwrap_or(64);
    let deadline = Duration::from_secs(env_u64("NTR_LOADGEN_TIMEOUT_S", 120));
    let p99_ceiling_ms = env_u64("NTR_LOADGEN_MAX_P99_MS", 2000);

    let (pool, pipeline, model_cfg) = request_pool(args.timeout_ms);
    let faulted = args.fault.is_some();
    let server = Server::start_with(
        pipeline,
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            n_workers: 2,
            cache_bytes: 64 << 20,
            queue_cap: args.queue_cap,
            model_config: Some(model_cfg),
            faults: args.fault.clone(),
            ..ServeConfig::default()
        },
        ServerConfig {
            max_conns: max_wave + 64,
            ..ServerConfig::default()
        },
        0,
        ntr_obs::Obs::disabled(),
    )
    .expect("start server");
    let addr = server.addr();
    println!(
        "loadgen: server on {addr}, queue_cap {}, waves {:?} x {} req/conn",
        args.queue_cap, args.conns, args.requests
    );

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    let mut gate_failures = Vec::new();
    for &n_conns in &args.conns {
        let wave = run_wave(addr, &pool, n_conns, args.requests, deadline);
        let p50 = wave.pct(0.50);
        let p99 = wave.pct(0.99);
        let mean_ns = if wave.latencies_us.is_empty() {
            0.0
        } else {
            wave.latencies_us.iter().sum::<u64>() as f64 * 1e3 / wave.latencies_us.len() as f64
        };
        let rps = wave.responses as f64 / wave.elapsed.as_secs_f64().max(1e-9);
        println!(
            "serve/loadgen/{n_conns:<5} {:>8} resp  p50 {:>8}us  p99 {:>8}us  \
             {:>9.0} rps  shed {}  deadline {}  internal {}  degraded {}  dropped {}",
            wave.responses,
            p50,
            p99,
            rps,
            wave.shed,
            wave.deadline_exceeded,
            wave.internal,
            wave.degraded,
            wave.dropped
        );
        if args.gate {
            let expected = (n_conns * args.requests) as u64;
            if wave.shed > 0 {
                gate_failures.push(format!(
                    "wave {n_conns}: shed {} requests below capacity",
                    wave.shed
                ));
            }
            if wave.dropped > 0 {
                gate_failures.push(format!(
                    "wave {n_conns}: {} connections dropped",
                    wave.dropped
                ));
            }
            if wave.responses != expected {
                gate_failures.push(format!(
                    "wave {n_conns}: {}/{} responses",
                    wave.responses, expected
                ));
            }
            if p99 > p99_ceiling_ms * 1000 {
                gate_failures.push(format!(
                    "wave {n_conns}: p99 {}us over the {}ms ceiling",
                    p99, p99_ceiling_ms
                ));
            }
        }
        rows.push(Entry {
            op: "serve/loadgen".to_string(),
            shape: n_conns.to_string(),
            threads,
            simd: false,
            ns_per_iter: mean_ns,
            extra: vec![
                ("p50_us".to_string(), p50.to_string()),
                ("p99_us".to_string(), p99.to_string()),
                ("rps".to_string(), format!("{rps:.0}")),
                ("requests".to_string(), wave.responses.to_string()),
                ("shed".to_string(), wave.shed.to_string()),
                (
                    "deadline_exceeded".to_string(),
                    wave.deadline_exceeded.to_string(),
                ),
                ("internal".to_string(), wave.internal.to_string()),
            ],
        });
    }

    // After the waves (and any injected faults), the service must be
    // healthy again: probe the health verb over a fresh connection before
    // shutting down.
    let health_state = query_health(addr);
    println!("health after run: {health_state}");
    if args.gate && faulted && health_state != "ok" {
        gate_failures.push(format!(
            "health state {health_state:?} after faulted run (expected \"ok\")"
        ));
    }

    server.stop();
    let stats = server.wait();
    println!(
        "server: {} requests, {} shed, {} deadline, {} internal, {} restarts, \
         {} quarantined, {} accepted, {} rejected, {} accept errors",
        stats.service.requests,
        stats.service.shed,
        stats.service.deadline_exceeded,
        stats.service.internal,
        stats.service.restarts,
        stats.service.quarantined,
        stats.event_loop.conns_accepted,
        stats.event_loop.conns_rejected,
        stats.event_loop.accept_errors
    );
    if args.gate && stats.event_loop.accept_errors > 0 {
        gate_failures.push(format!(
            "{} accept errors during the run",
            stats.event_loop.accept_errors
        ));
    }

    write_baseline(&args.json, rows);

    if !gate_failures.is_empty() {
        eprintln!("loadgen gate FAILED:");
        for f in &gate_failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    if args.gate {
        println!("loadgen gate passed");
    }
}
