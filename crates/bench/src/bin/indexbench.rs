//! `indexbench` — recall-vs-latency sweep for the IVF-flat ANN index.
//!
//! Encodes a synthetic-KB corpus with the tiny deterministic model into an
//! [`ntr_index::EmbeddingStore`], builds an [`ntr_index::IvfIndex`] over
//! it, and measures — against exact brute-force ground truth computed on a
//! held-out query set — how recall@k trades against per-query latency as
//! `nprobe` widens the cluster scan.
//!
//! Output is one `BENCH_index.json` row per sweep point, in the criterion
//! shim's flat-JSON baseline format (merge key `op/shape/threads/simd`):
//!
//! ```text
//! {"op": "index/query", "shape": "nprobe=12", ..., "ns_per_iter": <mean ns>,
//!  "recall_at_k": 0.98, "speedup_vs_brute": 7.4, "scanned": 1342}
//! ```
//!
//! plus an `index/brute` baseline row and an `index/build` row recording
//! encode + build cost.
//!
//! Usage:
//!
//! ```text
//! indexbench [--tables N] [--queries N] [--k N] [--nprobes LIST]
//!            [--json BENCH_index.json] [--gate]
//! ```
//!
//! `--gate` turns the run into a CI check: at the index's *default* nprobe
//! the sweep must reach recall@k ≥ `NTR_INDEXBENCH_MIN_RECALL` (default
//! 0.95) at ≥ `NTR_INDEXBENCH_MIN_SPEEDUP`× (default 5) the brute-force
//! scan's mean per-query latency.

use criterion::{read_baseline_entries, Entry};
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::models::ModelConfig;
use ntr::pipeline::EncodeRequest;
use ntr::table::LinearizerOptions;
use ntr::zoo::{build_encoder, EncoderSpec, ModelKind};
use ntr::Pipeline;
use ntr_index::{EmbeddingStore, IvfConfig, IvfIndex, SearchIndex};
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: indexbench [--tables N] [--queries N] [--k N] [--nprobes LIST] \
         [--json PATH] [--gate]\n\n\
         --tables N     stored embeddings (default 10000)\n\
         --queries N    held-out query tables (default 200)\n\
         --k N          neighbours per query (default 10)\n\
         --nprobes LIST comma-separated sweep, 0 = the index default\n\
         --json PATH    merge rows into this baseline (default BENCH_index.json)\n\
         --gate         enforce recall@k >= NTR_INDEXBENCH_MIN_RECALL (0.95)\n\
                        and speedup >= NTR_INDEXBENCH_MIN_SPEEDUP (5) at the\n\
                        default nprobe"
    );
    std::process::exit(2)
}

struct Args {
    tables: usize,
    queries: usize,
    k: usize,
    nprobes: Vec<usize>,
    json: PathBuf,
    gate: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        tables: 10_000,
        queries: 200,
        k: 10,
        // 0 is replaced by the index's default nprobe once nlist is known.
        nprobes: vec![1, 2, 4, 8, 0, 16, 32, 64],
        json: PathBuf::from("BENCH_index.json"),
        gate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--tables" => args.tables = val().parse().unwrap_or_else(|_| usage()),
            "--queries" => args.queries = val().parse().unwrap_or_else(|_| usage()),
            "--k" => args.k = val().parse().unwrap_or_else(|_| usage()),
            "--nprobes" => {
                args.nprobes = val()
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.nprobes.is_empty() {
                    usage();
                }
            }
            "--json" => args.json = PathBuf::from(val()),
            "--gate" => args.gate = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Encodes `n_tables + n_queries` synthetic-KB tables; the first
/// `n_tables` become the store, the rest the held-out query set.
fn encoded_corpus(n_tables: usize, n_queries: usize) -> (EmbeddingStore, Vec<Vec<f32>>) {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: n_tables + n_queries,
            headerless_prob: 0.0,
            seed: 7,
            ..CorpusConfig::default()
        },
    );
    let pipeline = Pipeline::builder()
        .vocab_from_tables(&corpus.tables)
        .vocab_size(600)
        .options(LinearizerOptions {
            max_tokens: 64,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty");
    let cfg = ModelConfig::tiny(pipeline.tokenizer().vocab_size());
    let mut model = build_encoder(EncoderSpec::f32(ModelKind::Bert), &cfg)
        .expect("f32 bert is always constructible");

    let mut store = EmbeddingStore::new(cfg.d_model);
    let mut queries = Vec::with_capacity(n_queries);
    let reqs: Vec<EncodeRequest> = corpus
        .tables
        .iter()
        .map(|t| EncodeRequest::captioned(t.clone()))
        .collect();
    for (start, chunk) in reqs.chunks(64).enumerate().map(|(i, c)| (i * 64, c)) {
        let encs = pipeline
            .encode_batch(model.as_mut(), chunk)
            .expect("encode batch");
        for (j, (req, enc)) in chunk.iter().zip(&encs).enumerate() {
            let emb = enc.table_embedding();
            let v = emb.data();
            if start + j < n_tables {
                store.push(req.table.id.clone(), v).expect("push embedding");
            } else {
                queries.push(v.to_vec());
            }
        }
    }
    (store, queries)
}

/// Merges rows into the baseline file, shim-format (same writer as
/// `loadgen` / `cargo bench --json`).
fn write_baseline(path: &PathBuf, rows: Vec<Entry>) {
    let mut entries = read_baseline_entries(path);
    for m in rows {
        entries.retain(|e| {
            (&e.op, &e.shape, e.threads, e.simd) != (&m.op, &m.shape, m.threads, m.simd)
        });
        entries.push(m);
    }
    entries.sort_by(|a, b| {
        (&a.op, &a.shape, a.threads, a.simd).cmp(&(&b.op, &b.shape, b.threads, b.simd))
    });
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let simd = if e.simd { "on" } else { "off" };
        let mut line = format!(
            "  {{\"op\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"simd\": \"{simd}\", \"ns_per_iter\": {:.1}",
            e.op, e.shape, e.threads, e.ns_per_iter
        );
        for (k, v) in &e.extra {
            line.push_str(&format!(", \"{k}\": {v}"));
        }
        line.push_str(&format!("}}{comma}\n"));
        out.push_str(&line);
    }
    out.push_str("]\n");
    match std::fs::write(path, out) {
        Ok(()) => println!("wrote {} ({} entries)", path.display(), entries.len()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn main() {
    let args = parse_args();
    let min_recall = env_f64("NTR_INDEXBENCH_MIN_RECALL", 0.95);
    let min_speedup = env_f64("NTR_INDEXBENCH_MIN_SPEEDUP", 5.0);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "indexbench: encoding {} stored + {} query tables ...",
        args.tables, args.queries
    );
    let t_encode = Instant::now();
    let (store, queries) = encoded_corpus(args.tables, args.queries);
    let encode_ms = t_encode.elapsed().as_millis() as u64;

    let t_build = Instant::now();
    let ivf = IvfIndex::build(&store, &IvfConfig::default()).expect("build index");
    // The packed probe-order copy is what `SearchIndex` serves from; its
    // construction counts as build time.
    let idx = SearchIndex::new(store, ivf).expect("assemble search index");
    let build_ns = t_build.elapsed().as_nanos() as f64;
    let default_nprobe = idx.ivf.default_nprobe();
    println!(
        "index: {} vectors x {} dim, {} clusters, default nprobe {} (encode {encode_ms} ms, build {:.1} ms)",
        idx.store.len(),
        idx.store.dim(),
        idx.ivf.nlist(),
        default_nprobe,
        build_ns / 1e6
    );

    // Exact ground truth (and the latency baseline the speedups are
    // measured against): a full brute-force scan per query.
    let t_brute = Instant::now();
    let truth: Vec<Vec<u32>> = queries
        .iter()
        .map(|q| {
            idx.store
                .brute_force_topk(q, args.k)
                .expect("brute force")
                .into_iter()
                .map(|(id, _)| id)
                .collect()
        })
        .collect();
    let brute_ns = t_brute.elapsed().as_nanos() as f64 / queries.len().max(1) as f64;

    let mut rows = vec![
        Entry {
            op: "index/build".to_string(),
            shape: idx.store.len().to_string(),
            threads,
            simd: false,
            ns_per_iter: build_ns,
            extra: vec![
                ("dim".to_string(), idx.store.dim().to_string()),
                ("nlist".to_string(), idx.ivf.nlist().to_string()),
                ("encode_ms".to_string(), encode_ms.to_string()),
            ],
        },
        Entry {
            op: "index/brute".to_string(),
            shape: idx.store.len().to_string(),
            threads,
            simd: false,
            ns_per_iter: brute_ns,
            extra: vec![("k".to_string(), args.k.to_string())],
        },
    ];

    let mut gate_failures = Vec::new();
    let mut nprobes: Vec<usize> = args
        .nprobes
        .iter()
        .map(|&p| if p == 0 { default_nprobe } else { p })
        .filter(|&p| p <= idx.ivf.nlist())
        .collect();
    nprobes.sort_unstable();
    nprobes.dedup();

    println!(
        "\n{:>8} {:>12} {:>10} {:>10} {:>10}",
        "nprobe", "ns/query", "recall", "speedup", "scanned"
    );
    for &nprobe in &nprobes {
        let t0 = Instant::now();
        let mut hits = 0usize;
        let mut scanned = 0usize;
        for (q, t) in queries.iter().zip(&truth) {
            let res = idx.search(q, args.k, Some(nprobe)).expect("ivf search");
            scanned += res.scanned;
            hits += res.hits.iter().filter(|(id, _)| t.contains(id)).count();
        }
        let ns = t0.elapsed().as_nanos() as f64 / queries.len().max(1) as f64;
        let recall = hits as f64 / (queries.len() * args.k.min(idx.store.len())) as f64;
        let speedup = brute_ns / ns.max(1.0);
        let mean_scanned = scanned / queries.len().max(1);
        let mark = if nprobe == default_nprobe {
            " (default)"
        } else {
            ""
        };
        println!("{nprobe:>8} {ns:>12.0} {recall:>10.4} {speedup:>9.1}x {mean_scanned:>10}{mark}");
        if args.gate && nprobe == default_nprobe {
            if recall < min_recall {
                gate_failures.push(format!(
                    "recall@{} {recall:.4} below {min_recall} at default nprobe {nprobe}",
                    args.k
                ));
            }
            if speedup < min_speedup {
                gate_failures.push(format!(
                    "speedup {speedup:.1}x below {min_speedup}x at default nprobe {nprobe}"
                ));
            }
        }
        rows.push(Entry {
            op: "index/query".to_string(),
            shape: format!("nprobe={nprobe}"),
            threads,
            simd: false,
            ns_per_iter: ns,
            extra: vec![
                ("recall_at_k".to_string(), format!("{recall:.4}")),
                ("speedup_vs_brute".to_string(), format!("{speedup:.1}")),
                ("scanned".to_string(), mean_scanned.to_string()),
                (
                    "default".to_string(),
                    (nprobe == default_nprobe).to_string(),
                ),
            ],
        });
    }

    write_baseline(&args.json, rows);

    if !gate_failures.is_empty() {
        eprintln!("indexbench gate FAILED:");
        for f in &gate_failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    if args.gate {
        println!("indexbench gate passed");
    }
}
