//! Training-throughput benchmark: seeds `BENCH_train.json` at the repo
//! root with steps/sec, tokens/sec, and the measured supervisor +
//! observability overhead on an identical short MLM pretraining run.
//!
//! ```text
//! cargo run -p ntr-bench --release --bin trainbench -- [--out BENCH_train.json]
//! ```
//!
//! Four arms, same run each time:
//!
//! - `disabled`      — supervisor features and sinks all off (the baseline).
//! - `armed`         — clip + rollback + spike detection, snapshot every step.
//! - `armed_cadence8`— as `armed` but model snapshots every 8th good step.
//! - `armed_traced`  — `armed` plus JSONL trace + metrics registry.
//!
//! The JSON is the same hand-rolled array-of-objects shape as
//! `BENCH_tensor.json`; `overhead_pct` is relative to `disabled`.

use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::vocab::train_tokenizer;
use ntr::corpus::{World, WorldConfig};
use ntr::models::{ModelConfig, VanillaBert};
use ntr::obs::ObsOptions;
use ntr::table::RowMajorLinearizer;
use ntr::tasks::supervisor::SupervisorConfig;
use ntr::tasks::trainer::TrainerOptions;
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;
use std::hint::black_box;
use std::time::Instant;

struct Arm {
    name: &'static str,
    topts: TrainerOptions,
    scfg: SupervisorConfig,
}

struct Measurement {
    name: &'static str,
    steps_per_sec: f64,
    tokens_per_sec: f64,
    ns_per_step: f64,
}

/// Pulls a counter's value out of a metrics snapshot JSON without a parser:
/// the snapshot format is line-oriented with one `{"metric": ...}` per line.
fn counter_value(snapshot: &str, metric: &str) -> u64 {
    let needle = format!("\"metric\": \"{metric}\"");
    snapshot
        .lines()
        .find(|l| l.contains(&needle))
        .and_then(|l| {
            let v = l.split("\"value\": ").nth(1)?;
            v.trim_end_matches(['}', ',', ' ']).parse().ok()
        })
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_train.json".to_string());

    let world = World::generate(WorldConfig {
        n_countries: 8,
        n_people: 10,
        n_films: 8,
        n_clubs: 6,
        seed: 5,
    });
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 6,
            min_rows: 3,
            max_rows: 5,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 6,
        },
    );
    let tok = train_tokenizer(&corpus, &[], 1200);
    let mcfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        ..ModelConfig::tiny(tok.vocab_size())
    };
    let cfg = TrainConfig {
        epochs: 8,
        lr: 3e-3,
        batch_size: 2,
        warmup_frac: 0.1,
        seed: 11,
    };
    let armed = SupervisorConfig {
        clip_norm: Some(1.0),
        rollback: true,
        max_retries: 3,
        spike_factor: 4.0,
        ema_alpha: 0.1,
        lr_backoff: 0.5,
        snapshot_every: 1,
        faults: None,
    };
    let obs_dir = std::env::temp_dir().join("ntr_trainbench");
    std::fs::create_dir_all(&obs_dir).unwrap();
    let arms = [
        Arm {
            name: "disabled",
            topts: TrainerOptions::default(),
            scfg: SupervisorConfig::default(),
        },
        Arm {
            name: "armed",
            topts: TrainerOptions::default(),
            scfg: armed.clone(),
        },
        Arm {
            name: "armed_cadence8",
            topts: TrainerOptions::default(),
            scfg: SupervisorConfig {
                snapshot_every: 8,
                ..armed.clone()
            },
        },
        Arm {
            name: "trace_only",
            topts: TrainerOptions {
                obs: ObsOptions {
                    trace: Some(obs_dir.join("trace.jsonl")),
                    metrics: None,
                },
                ..Default::default()
            },
            scfg: armed.clone(),
        },
        Arm {
            name: "metrics_only",
            topts: TrainerOptions {
                obs: ObsOptions {
                    trace: None,
                    metrics: Some(obs_dir.join("metrics.json")),
                },
                ..Default::default()
            },
            scfg: armed.clone(),
        },
        Arm {
            name: "armed_traced",
            topts: TrainerOptions {
                obs: ObsOptions {
                    trace: Some(obs_dir.join("trace.jsonl")),
                    metrics: Some(obs_dir.join("metrics.json")),
                },
                ..Default::default()
            },
            scfg: armed.clone(),
        },
    ];

    // Every arm performs the identical deterministic run, so one traced
    // calibration pass gives the token count for all of them (the report
    // itself does not carry token totals; the metrics registry does).
    let tokens = {
        let mut model = VanillaBert::new(&mcfg);
        TrainRun::new(cfg)
            .max_tokens(64)
            .linearizer(&RowMajorLinearizer)
            .trainer(&TrainerOptions {
                obs: ObsOptions {
                    trace: None,
                    metrics: Some(obs_dir.join("metrics.json")),
                },
                ..Default::default()
            })
            .supervisor(&SupervisorConfig::default())
            .mlm(&mut model, &corpus, &tok)
            .expect("calibration run");
        let snap = std::fs::read_to_string(obs_dir.join("metrics.json")).unwrap_or_default();
        counter_value(&snap, "train/tokens")
    };

    // Warm-up + measurement: the run is deterministic, so each arm does the
    // same work; best-of-N keeps scheduler noise out of the seeded file
    // (the minimum is the least-contended run, the right estimator for a
    // fixed deterministic workload).
    const REPS: usize = 15;
    let mut ns: Vec<Vec<u128>> = vec![Vec::new(); arms.len()];
    let mut steps = vec![0u64; arms.len()];
    // Arms are interleaved round-robin so slow drift in machine load (CI
    // neighbors, thermal state) hits every arm equally instead of biasing
    // whichever arm happened to run last.
    for rep in 0..=REPS {
        for (i, arm) in arms.iter().enumerate() {
            let mut model = VanillaBert::new(&mcfg);
            let t0 = Instant::now();
            let report = TrainRun::new(cfg)
                .max_tokens(64)
                .linearizer(&RowMajorLinearizer)
                .trainer(&arm.topts)
                .supervisor(&arm.scfg)
                .mlm(&mut model, &corpus, &tok)
                .expect("healthy run");
            let dt = t0.elapsed().as_nanos();
            black_box(&report);
            if rep == 0 {
                continue; // warm-up lap
            }
            ns[i].push(dt);
            steps[i] = report.mlm_loss.len() as u64;
        }
    }
    let mut results: Vec<Measurement> = Vec::new();
    for (i, arm) in arms.iter().enumerate() {
        ns[i].sort_unstable();
        let best = ns[i][0] as f64;
        let secs = best / 1e9;
        results.push(Measurement {
            name: arm.name,
            steps_per_sec: steps[i] as f64 / secs,
            tokens_per_sec: tokens as f64 / secs,
            ns_per_step: best / steps[i].max(1) as f64,
        });
        eprintln!(
            "{:<14} {:>6} steps  {:>10.1} steps/s  {:>12.1} tokens/s",
            arm.name,
            steps[i],
            steps[i] as f64 / secs,
            tokens as f64 / secs
        );
    }

    let base = results[0].ns_per_step;
    let mut json = String::from("[\n");
    for (i, m) in results.iter().enumerate() {
        let overhead = (m.ns_per_step / base - 1.0) * 100.0;
        json.push_str(&format!(
            "  {{\"arm\": \"{}\", \"steps_per_sec\": {:.1}, \"tokens_per_sec\": {:.1}, \
             \"ns_per_step\": {:.1}, \"overhead_pct\": {:.2}}}{}\n",
            m.name,
            m.steps_per_sec,
            m.tokens_per_sec,
            m.ns_per_step,
            overhead,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");

    // CI gate: full observability must stay within 5% of the armed arm.
    let by_name = |n: &str| {
        results
            .iter()
            .find(|m| m.name == n)
            .expect("arm present")
            .ns_per_step
    };
    let armed_ns = by_name("armed");
    let traced_ns = by_name("armed_traced");
    let traced_over_armed = (traced_ns / armed_ns - 1.0) * 100.0;
    println!("armed_traced over armed: {traced_over_armed:.2}%");
    if std::env::var_os("NTR_BENCH_ENFORCE").is_some() && traced_over_armed > 5.0 {
        eprintln!("FAIL: tracing overhead {traced_over_armed:.2}% exceeds the 5% budget");
        std::process::exit(1);
    }
}
