//! Thread-scaling and SIMD regression gate over `BENCH_tensor.json`.
//!
//! Fails (exit 1) when the baseline shows multithreading *losing*: for
//! each gated op, the 4-thread measurement must not exceed the 1-thread
//! measurement by more than a tolerance factor, checked independently for
//! the scalar and (when present) SIMD arms. On multi-core hosts this gate
//! demands a genuine win ratio; on single-core CI runners wall-clock
//! parity is the physical ceiling, so the default tolerance only forbids
//! paying dispatch overhead for negative return (the PR-1 failure mode:
//! matmul/nn@64 was 4× *slower* at 4 threads).
//!
//! When the baseline contains SIMD-on entries, the gate additionally
//! requires SIMD to beat scalar single-threaded on the two headline
//! kernels (matmul@256, add_assign@1M).
//!
//! ```text
//! cargo bench -p ntr-bench --features simd --bench tensor_ops -- --json
//! cargo run -p ntr-bench --bin benchgate            # reads ./BENCH_tensor.json
//! cargo run -p ntr-bench --bin benchgate -- path/to/BENCH_tensor.json
//! ```
//!
//! `NTR_BENCH_TOLERANCE` overrides the scaling tolerance factor
//! (default 1.20: up to 20% dispatch/contention overhead at 4 threads is
//! tolerated on a timesliced single-core runner, anything beyond fails —
//! the PR-1 regressions this gate exists for were 1.1×–4.1×).

use criterion::{read_baseline_entries, Entry};
use std::path::PathBuf;
use std::process::ExitCode;

/// `(op, shape)` pairs gated on 4-thread vs 1-thread scaling.
const SCALING_GATES: &[(&str, &str)] = &[
    ("matmul/nn", "256"),
    ("matmul/nt", "256"),
    ("matmul/tn", "256"),
    ("matmul/nn", "64"),
    ("elementwise/axpy", "1048576"),
    ("elementwise/add_assign", "1048576"),
    ("elementwise/par_map", "1048576"),
    ("softmax_rows", "256"),
    ("layernorm", "256x64"),
];

/// `(op, shape)` pairs where SIMD-on must beat scalar at 1 thread.
const SIMD_GATES: &[(&str, &str)] = &[("matmul/nn", "256"), ("elementwise/add_assign", "1048576")];

fn find(entries: &[Entry], op: &str, shape: &str, threads: usize, simd: bool) -> Option<f64> {
    entries
        .iter()
        .find(|e| e.op == op && e.shape == shape && e.threads == threads && e.simd == simd)
        .map(|e| e.ns_per_iter)
}

fn tolerance() -> f64 {
    std::env::var("NTR_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|&t| t >= 1.0)
        .unwrap_or(1.2)
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_tensor.json"));
    let entries = read_baseline_entries(&path);
    if entries.is_empty() {
        eprintln!("benchgate: no entries in {}", path.display());
        return ExitCode::FAILURE;
    }
    let tol = tolerance();
    let mut failures = 0usize;
    let mut checks = 0usize;

    for &(op, shape) in SCALING_GATES {
        for simd in [false, true] {
            let arm = if simd { "simd" } else { "scalar" };
            let (Some(t1), Some(t4)) = (
                find(&entries, op, shape, 1, simd),
                find(&entries, op, shape, 4, simd),
            ) else {
                // SIMD arms are absent on scalar-only baselines; a missing
                // *scalar* arm for a gated op means the sweep didn't run.
                if !simd {
                    eprintln!("benchgate: MISSING {op}/{shape} [{arm}] at threads 1 and 4");
                    failures += 1;
                }
                continue;
            };
            checks += 1;
            let ratio = t4 / t1;
            if ratio > tol {
                eprintln!(
                    "benchgate: FAIL {op}/{shape} [{arm}]: 4-thread {t4:.0} ns vs 1-thread \
                     {t1:.0} ns (x{ratio:.2} > x{tol:.2}) — threads make this op slower"
                );
                failures += 1;
            } else {
                println!(
                    "benchgate: ok   {op}/{shape} [{arm}]: 4t/1t = x{ratio:.2} (limit x{tol:.2})"
                );
            }
        }
    }

    let have_simd = entries.iter().any(|e| e.simd);
    if have_simd {
        for &(op, shape) in SIMD_GATES {
            let (Some(scalar), Some(simd)) = (
                find(&entries, op, shape, 1, false),
                find(&entries, op, shape, 1, true),
            ) else {
                eprintln!("benchgate: MISSING simd-vs-scalar pair for {op}/{shape} at 1 thread");
                failures += 1;
                continue;
            };
            checks += 1;
            // 5% headroom: memory-bound kernels (add_assign streams 12 B
            // per lane-op) win by single-digit percents, within run noise.
            if simd > scalar * 1.05 {
                eprintln!(
                    "benchgate: FAIL {op}/{shape}: simd {simd:.0} ns > scalar {scalar:.0} ns \
                     at 1 thread — SIMD must win single-threaded"
                );
                failures += 1;
            } else {
                println!(
                    "benchgate: ok   {op}/{shape}: simd/scalar = x{:.2} at 1 thread",
                    simd / scalar
                );
            }
        }
    } else {
        println!("benchgate: baseline has no SIMD arms; skipping SIMD-vs-scalar checks");
    }

    if failures > 0 {
        eprintln!("benchgate: {failures} failure(s) across {checks} check(s)");
        ExitCode::FAILURE
    } else {
        println!("benchgate: all {checks} checks passed");
        ExitCode::SUCCESS
    }
}
