//! Markdown report rendering for experiment results.

use std::fmt::Write as _;

/// A markdown table under a heading, built row by row.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    notes: Vec<String>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// New report with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            notes: Vec::new(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a free-text note shown under the title.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Adds one row (stringified cells).
    ///
    /// # Panics
    /// Panics when the cell count differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "report row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the report as markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        for n in &self.notes {
            let _ = writeln!(out, "{n}");
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        // Column widths for aligned output.
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", line(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut r = Report::new("T", &["model", "acc"]);
        r.note("a note");
        r.row(&["bert".into(), f3(0.5)]);
        r.row(&["tapas-long".into(), f3(1.0)]);
        let s = r.render();
        assert!(s.contains("### T"));
        assert!(s.contains("a note"));
        assert!(s.contains("| bert       | 0.500 |"));
        assert!(s.contains("| tapas-long | 1.000 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut r = Report::new("T", &["a", "b"]);
        r.row(&["only-one".into()]);
    }
}
