//! Shared experiment setup: standard worlds, corpora, tokenizers and model
//! configurations, all derived from fixed seeds so every experiment is
//! reproducible bit-for-bit.

use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::models::ModelConfig;
use ntr::tokenizer::WordPieceTokenizer;

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small: seconds per experiment (CI-friendly).
    Small,
    /// Full: the scale EXPERIMENTS.md records (minutes per experiment).
    Full,
}

impl Scale {
    /// Parses `--scale=small|full` style values.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    fn tables(self) -> usize {
        match self {
            Scale::Small => 24,
            Scale::Full => 90,
        }
    }
}

/// Everything an experiment needs: world, corpora, tokenizer, model config.
pub struct Setup {
    /// The knowledge base.
    pub world: World,
    /// Mixed corpus (all table kinds).
    pub corpus: TableCorpus,
    /// Entity-only corpus (for MER/linking).
    pub entity_corpus: TableCorpus,
    /// Tokenizer trained over the mixed corpus.
    pub tok: WordPieceTokenizer,
    /// Scale preset used.
    pub scale: Scale,
}

impl Setup {
    /// Builds the standard experiment setup.
    pub fn standard(scale: Scale) -> Setup {
        let world = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate(
            &world,
            &CorpusConfig {
                n_tables: scale.tables(),
                min_rows: 4,
                max_rows: 7,
                null_prob: 0.02,
                headerless_prob: 0.1,
                seed: 0xE0,
            },
        );
        let entity_corpus = TableCorpus::generate_entity_only(
            &world,
            &CorpusConfig {
                n_tables: scale.tables(),
                min_rows: 4,
                max_rows: 7,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 0xE1,
            },
        );
        let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &[], 2200);
        Setup {
            world,
            corpus,
            entity_corpus,
            tok,
            scale,
        }
    }

    /// The standard model configuration for this setup's vocabulary.
    pub fn model_config(&self) -> ModelConfig {
        ModelConfig {
            vocab_size: self.tok.vocab_size(),
            n_entities: self.world.n_entities(),
            d_model: 64,
            n_heads: 4,
            n_layers: 2,
            d_ff: 128,
            max_seq: 256,
            max_rows: 32,
            max_cols: 16,
            dropout: 0.1,
            seed: 42,
        }
    }

    /// Training epochs scaled to the preset.
    pub fn epochs(&self, small: usize, full: usize) -> usize {
        match self.scale {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_setup_is_consistent() {
        let s = Setup::standard(Scale::Small);
        assert_eq!(s.corpus.len(), 24);
        assert!(s.tok.vocab_size() > 100);
        s.model_config().validate();
        assert_eq!(s.epochs(1, 5), 1);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("x"), None);
    }
}
