//! E2's timing companion: serialization + tokenization throughput per
//! linearization strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::table::{
    ColumnMajorLinearizer, Linearizer, LinearizerOptions, RowMajorLinearizer, TapexLinearizer,
    TemplateLinearizer, TurlLinearizer,
};
use std::hint::black_box;

fn bench_linearizers(c: &mut Criterion) {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 12,
            min_rows: 6,
            max_rows: 8,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 1,
        },
    );
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &[], 1500);
    let opts = LinearizerOptions::default();
    let table = corpus.tables[0].clone();

    let linearizers: Vec<Box<dyn Linearizer>> = vec![
        Box::new(RowMajorLinearizer),
        Box::new(TemplateLinearizer),
        Box::new(ColumnMajorLinearizer),
        Box::new(TapexLinearizer),
        Box::new(TurlLinearizer),
    ];
    let mut group = c.benchmark_group("linearize");
    for lin in &linearizers {
        group.bench_with_input(BenchmarkId::from_parameter(lin.name()), &table, |b, t| {
            b.iter(|| black_box(lin.linearize(t, &t.caption, &tok, &opts)))
        });
    }
    group.finish();
}

fn bench_masking(c: &mut Criterion) {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate_entity_only(&world, &CorpusConfig::default());
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &[], 1500);
    let t = &corpus.tables[0];
    let encoded = TurlLinearizer.linearize(t, &t.caption, &tok, &LinearizerOptions::default());
    let cfg = ntr::table::masking::MlmConfig::bert(tok.vocab_size());
    c.bench_function("mask_mlm", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(ntr::table::masking::mask_mlm(&encoded, &cfg, seed))
        })
    });
    c.bench_function("mask_entities", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(ntr::table::masking::mask_entities(&encoded, 0.3, seed))
        })
    });
}

criterion_group!(benches, bench_linearizers, bench_masking);
criterion_main!(benches);
