//! Checkpoint-path benchmarks: serializing/parsing an `NTRW` v2 file
//! (parameters + full training state) in memory, and the crash-safe
//! atomic save to disk.

use criterion::{criterion_group, criterion_main, Criterion};
use ntr_models::{ModelConfig, Tapas};
use ntr_nn::optim::{Adam, WarmupLinearSchedule};
use ntr_nn::serialize::{parse_checkpoint, write_checkpoint_to, TrainCheckpoint, TrainCursor};
use ntr_nn::Layer;
use std::hint::black_box;

fn train_checkpoint() -> TrainCheckpoint {
    let mut model = Tapas::new(&ModelConfig::tiny(800));
    let mut adam = Adam::new(1e-3).with_weight_decay(0.01);
    // One real optimizer step so the moment tensors are materialized.
    model.visit_params(&mut |_, p| {
        let g = ntr_tensor::Tensor::ones(p.value.shape());
        p.grad = g;
    });
    {
        let mut step = adam.begin_step();
        model.visit_params(&mut |_, p| step.update(p));
    }
    model.zero_grad();
    let schedule = WarmupLinearSchedule {
        peak_lr: 1e-3,
        warmup: 10,
        total: 100,
    };
    let cursor = TrainCursor {
        epoch: 1,
        example: 7,
        seed: 0xF17E,
    };
    TrainCheckpoint::capture_train(&mut model, &adam, &schedule, cursor)
}

fn bench_checkpoint(c: &mut Criterion) {
    let ckpt = train_checkpoint();
    let mut bytes = Vec::new();
    write_checkpoint_to(&ckpt, &mut bytes).unwrap();

    c.bench_function("checkpoint_write", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(bytes.len());
            write_checkpoint_to(black_box(&ckpt), &mut buf).unwrap();
            black_box(buf)
        })
    });

    c.bench_function("checkpoint_parse", |b| {
        b.iter(|| black_box(parse_checkpoint(black_box(&bytes)).unwrap()))
    });

    let dir = std::env::temp_dir().join("ntr_bench_checkpoint");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.ntrw");
    c.bench_function("checkpoint_atomic_save", |b| {
        b.iter(|| ntr_nn::serialize::save_checkpoint(black_box(&ckpt), &path).unwrap())
    });
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
