//! E6's criterion companion: dense vs sparse attention kernels over
//! growing synthetic tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntr::models::{sparse_attention, EncoderInput, SparseAxis, SparsePattern};
use ntr::nn::init::SeededInit;
use std::hint::black_box;

fn grid_input(rows: usize, cols: usize) -> EncoderInput {
    let mut input = EncoderInput {
        ids: vec![2; 5],
        rows: vec![0; 5],
        cols: vec![0; 5],
        segments: vec![0; 5],
        kinds: vec![1; 5],
        ranks: vec![0; 5],
    };
    for r in 0..rows {
        for c in 0..cols {
            input.ids.push(10);
            input.rows.push(r + 1);
            input.cols.push(c + 1);
            input.segments.push(1);
            input.kinds.push(3);
            input.ranks.push(0);
        }
    }
    input
}

fn bench_attention(c: &mut Criterion) {
    let d = 16usize;
    let mut init = SeededInit::new(7);
    let mut group = c.benchmark_group("attention");
    for rows in [8usize, 32, 64] {
        let input = grid_input(rows, 8);
        let n = input.len();
        let q = init.uniform(&[n, d], -1.0, 1.0);
        let k = init.uniform(&[n, d], -1.0, 1.0);
        let v = init.uniform(&[n, d], -1.0, 1.0);
        let pattern = SparsePattern::from_input(&input, SparseAxis::Row);
        group.bench_with_input(BenchmarkId::new("dense", rows), &rows, |b, _| {
            b.iter(|| {
                let scale = 1.0 / (d as f32).sqrt();
                black_box(q.matmul_nt(&k).scale(scale).softmax_rows().matmul(&v))
            })
        });
        group.bench_with_input(BenchmarkId::new("sparse", rows), &rows, |b, _| {
            b.iter(|| black_box(sparse_attention(&q, &k, &v, &pattern)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
