//! E3's timing companion: cost of one MLM training step (forward, loss,
//! backward) per model family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::models::{EncoderInput, Mate, ModelConfig, Tapas, Turl, VanillaBert};
use ntr::nn::loss::softmax_cross_entropy;
use ntr::table::masking::{mask_mlm, MlmConfig};
use ntr::table::{Linearizer, LinearizerOptions, RowMajorLinearizer};
use ntr::tasks::pretrain::MlmModel;
use std::hint::black_box;

fn step<M: MlmModel>(model: &mut M, input: &EncoderInput, targets: &[usize]) -> f32 {
    let states = model.encode(input, true);
    let logits = model.mlm_head().forward(&states);
    let (loss, dlogits) = softmax_cross_entropy(&logits, targets, None);
    let dstates = model.mlm_head().backward(&dlogits);
    model.backward(&dstates);
    model.zero_grad();
    loss
}

fn bench_step(c: &mut Criterion) {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 2,
            min_rows: 6,
            max_rows: 6,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 3,
        },
    );
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &[], 1500);
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        n_entities: world.n_entities(),
        ..ModelConfig::default()
    };
    let t = &corpus.tables[0];
    let e = RowMajorLinearizer.linearize(t, &t.caption, &tok, &LinearizerOptions::default());
    let masked = mask_mlm(&e, &MlmConfig::bert(tok.vocab_size()), 1);
    let input = EncoderInput::from_masked(&e, &masked);

    let mut group = c.benchmark_group("mlm_train_step");
    group.sample_size(20);
    let mut bert = VanillaBert::new(&cfg);
    group.bench_with_input(BenchmarkId::from_parameter("bert"), &(), |b, _| {
        b.iter(|| black_box(step(&mut bert, &input, &masked.targets)))
    });
    let mut tapas = Tapas::new(&cfg);
    group.bench_with_input(BenchmarkId::from_parameter("tapas"), &(), |b, _| {
        b.iter(|| black_box(step(&mut tapas, &input, &masked.targets)))
    });
    let mut turl = Turl::new(&cfg);
    group.bench_with_input(BenchmarkId::from_parameter("turl"), &(), |b, _| {
        b.iter(|| black_box(step(&mut turl, &input, &masked.targets)))
    });
    let mut mate = Mate::new(&cfg);
    group.bench_with_input(BenchmarkId::from_parameter("mate"), &(), |b, _| {
        b.iter(|| black_box(step(&mut mate, &input, &masked.targets)))
    });
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
