//! Overhead of the self-healing training supervisor on a healthy run.
//!
//! Three arms over an identical short MLM pretraining run:
//!
//! - `baseline`  — `pretrain_mlm_resumable`, the PR-2 loop.
//! - `disabled`  — `pretrain_mlm_supervised` with `SupervisorConfig::default()`
//!   (every feature off; must be the literal baseline loop).
//! - `armed`     — clipping + rollback + spike detection on, but no faults,
//!   so the supervisor does its per-step anomaly checks and snapshot
//!   captures without ever triggering.
//! - `armed_cadence8` — same, but rollback snapshots are captured every 8th
//!   good step (`snapshot_every: 8`) instead of after every step; measures
//!   the win from the cadence-snapshot fix.
//! - `armed_traced` — `armed` plus live JSONL tracing and a metrics
//!   registry; measures full observability overhead.
//!
//! Targets: `disabled` within noise of `baseline`, `armed` < 2% over it,
//! `armed_traced` ≤ 5% over `armed`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::vocab::train_tokenizer;
use ntr::corpus::{World, WorldConfig};
use ntr::models::{ModelConfig, VanillaBert};
use ntr::table::RowMajorLinearizer;
use ntr::tasks::supervisor::SupervisorConfig;
use ntr::tasks::supervisor::TrainError;
use ntr::tasks::trainer::TrainerOptions;
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;
use std::hint::black_box;

fn bench_supervisor(c: &mut Criterion) {
    let world = World::generate(WorldConfig {
        n_countries: 8,
        n_people: 10,
        n_films: 8,
        n_clubs: 6,
        seed: 5,
    });
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 6,
            min_rows: 3,
            max_rows: 5,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 6,
        },
    );
    let tok = train_tokenizer(&corpus, &[], 1200);
    let mcfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        ..ModelConfig::tiny(tok.vocab_size())
    };
    let cfg = TrainConfig {
        epochs: 2,
        lr: 3e-3,
        batch_size: 4,
        warmup_frac: 0.1,
        seed: 11,
    };
    let topts = TrainerOptions::default();
    let armed = SupervisorConfig {
        clip_norm: Some(1.0),
        rollback: true,
        max_retries: 3,
        spike_factor: 4.0,
        ema_alpha: 0.1,
        lr_backoff: 0.5,
        snapshot_every: 1,
        faults: None,
    };
    let armed_cadence8 = SupervisorConfig {
        snapshot_every: 8,
        ..armed.clone()
    };
    let obs_dir = std::env::temp_dir().join("ntr_bench_supervisor");
    std::fs::create_dir_all(&obs_dir).unwrap();
    let traced_topts = TrainerOptions {
        obs: ntr::obs::ObsOptions {
            trace: Some(obs_dir.join("bench_trace.jsonl")),
            metrics: Some(obs_dir.join("bench_metrics.json")),
        },
        ..Default::default()
    };

    let mut group = c.benchmark_group("supervised_mlm_run");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("baseline"), &(), |b, _| {
        b.iter(|| {
            let mut model = VanillaBert::new(&mcfg);
            black_box(
                TrainRun::new(cfg)
                    .max_tokens(64)
                    .linearizer(&RowMajorLinearizer)
                    .trainer(&topts)
                    .mlm(&mut model, &corpus, &tok)
                    .map_err(TrainError::into_checkpoint_error)
                    .unwrap(),
            )
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("disabled"), &(), |b, _| {
        b.iter(|| {
            let mut model = VanillaBert::new(&mcfg);
            black_box(
                TrainRun::new(cfg)
                    .max_tokens(64)
                    .linearizer(&RowMajorLinearizer)
                    .trainer(&topts)
                    .supervisor(&SupervisorConfig::default())
                    .mlm(&mut model, &corpus, &tok)
                    .unwrap(),
            )
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("armed"), &(), |b, _| {
        b.iter(|| {
            let mut model = VanillaBert::new(&mcfg);
            black_box(
                TrainRun::new(cfg)
                    .max_tokens(64)
                    .linearizer(&RowMajorLinearizer)
                    .trainer(&topts)
                    .supervisor(&armed)
                    .mlm(&mut model, &corpus, &tok)
                    .unwrap(),
            )
        })
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("armed_cadence8"),
        &(),
        |b, _| {
            b.iter(|| {
                let mut model = VanillaBert::new(&mcfg);
                black_box(
                    TrainRun::new(cfg)
                        .max_tokens(64)
                        .linearizer(&RowMajorLinearizer)
                        .trainer(&topts)
                        .supervisor(&armed_cadence8)
                        .mlm(&mut model, &corpus, &tok)
                        .unwrap(),
                )
            })
        },
    );
    group.bench_with_input(BenchmarkId::from_parameter("armed_traced"), &(), |b, _| {
        b.iter(|| {
            let mut model = VanillaBert::new(&mcfg);
            black_box(
                TrainRun::new(cfg)
                    .max_tokens(64)
                    .linearizer(&RowMajorLinearizer)
                    .trainer(&traced_topts)
                    .supervisor(&armed)
                    .mlm(&mut model, &corpus, &tok)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_supervisor);
criterion_main!(benches);
