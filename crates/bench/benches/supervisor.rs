//! Overhead of the self-healing training supervisor on a healthy run.
//!
//! Three arms over an identical short MLM pretraining run:
//!
//! - `baseline`  — `pretrain_mlm_resumable`, the PR-2 loop.
//! - `disabled`  — `pretrain_mlm_supervised` with `SupervisorConfig::default()`
//!   (every feature off; must be the literal baseline loop).
//! - `armed`     — clipping + rollback + spike detection on, but no faults,
//!   so the supervisor does its per-step anomaly checks and snapshot
//!   captures without ever triggering.
//!
//! Target: `disabled` within noise of `baseline`, `armed` < 2% over it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::vocab::train_tokenizer;
use ntr::corpus::{World, WorldConfig};
use ntr::models::{ModelConfig, VanillaBert};
use ntr::table::RowMajorLinearizer;
use ntr::tasks::pretrain::{pretrain_mlm_resumable, pretrain_mlm_supervised};
use ntr::tasks::supervisor::SupervisorConfig;
use ntr::tasks::trainer::TrainerOptions;
use ntr::tasks::TrainConfig;
use std::hint::black_box;

fn bench_supervisor(c: &mut Criterion) {
    let world = World::generate(WorldConfig {
        n_countries: 8,
        n_people: 10,
        n_films: 8,
        n_clubs: 6,
        seed: 5,
    });
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 6,
            min_rows: 3,
            max_rows: 5,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 6,
        },
    );
    let tok = train_tokenizer(&corpus, &[], 1200);
    let mcfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        ..ModelConfig::tiny(tok.vocab_size())
    };
    let cfg = TrainConfig {
        epochs: 2,
        lr: 3e-3,
        batch_size: 4,
        warmup_frac: 0.1,
        seed: 11,
    };
    let topts = TrainerOptions::default();
    let armed = SupervisorConfig {
        clip_norm: Some(1.0),
        rollback: true,
        max_retries: 3,
        spike_factor: 4.0,
        ema_alpha: 0.1,
        lr_backoff: 0.5,
        faults: None,
    };

    let mut group = c.benchmark_group("supervised_mlm_run");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("baseline"), &(), |b, _| {
        b.iter(|| {
            let mut model = VanillaBert::new(&mcfg);
            black_box(
                pretrain_mlm_resumable(
                    &mut model,
                    &corpus,
                    &tok,
                    &cfg,
                    64,
                    &RowMajorLinearizer,
                    &topts,
                )
                .unwrap(),
            )
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("disabled"), &(), |b, _| {
        b.iter(|| {
            let mut model = VanillaBert::new(&mcfg);
            black_box(
                pretrain_mlm_supervised(
                    &mut model,
                    &corpus,
                    &tok,
                    &cfg,
                    64,
                    &RowMajorLinearizer,
                    &topts,
                    &SupervisorConfig::default(),
                )
                .unwrap(),
            )
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("armed"), &(), |b, _| {
        b.iter(|| {
            let mut model = VanillaBert::new(&mcfg);
            black_box(
                pretrain_mlm_supervised(
                    &mut model,
                    &corpus,
                    &tok,
                    &cfg,
                    64,
                    &RowMajorLinearizer,
                    &topts,
                    &armed,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_supervisor);
criterion_main!(benches);
