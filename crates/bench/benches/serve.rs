//! Throughput of the batched embedding service under single-request vs.
//! concurrent load — the standard dynamic-batching tradeoff curve.
//!
//! Three arms (cache disabled, so every request pays a real forward):
//!
//! - `serve/single` — the production config (`max_batch = 8`,
//!   `max_wait = 2ms`, 4 workers) with **one request in flight**: a lone
//!   request cannot fill the batch, so it pays the full coalescing
//!   deadline before its flush. One iter = one request; `1/ns` is the
//!   closed-loop single-client throughput.
//! - `serve/batch8` — the same service with **8 requests in flight**: the
//!   batch fills instantly and flushes without waiting, spreading work
//!   over the replicas. One iter = 8 requests, so per-request cost is
//!   `ns / 8` and the acceptance ratio is
//!   `ns(single) / (ns(batch8) / 8) >= 3`.
//! - `serve/nobatch` — `max_batch = 1`, one worker: batching disabled
//!   entirely. The single-request *latency* floor, for reference; the
//!   `single` arm shows what that latency costs once a coalescing server
//!   is in front of it, and `batch8` shows the deadline being amortized
//!   away under load.
//!
//! Run `cargo bench -p ntr-bench --bench serve -- --json BENCH_serve.json`
//! to regenerate the perf baseline CI uploads.

use criterion::{criterion_group, criterion_main, Criterion};
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::models::ModelConfig;
use ntr::table::{LinearizerOptions, Table};
use ntr::zoo::ModelKind;
use ntr::Pipeline;
use ntr_serve::{EmbeddingService, ServeConfig, ServeRequest};
use std::hint::black_box;
use std::time::Duration;

fn fixture() -> (Vec<Table>, Pipeline, ModelConfig) {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 8,
            min_rows: 4,
            max_rows: 6,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 11,
        },
    );
    let pipeline = Pipeline::builder()
        .vocab_from_tables(&corpus.tables)
        .vocab_size(1500)
        .options(LinearizerOptions {
            max_tokens: 64,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty");
    let cfg = ModelConfig {
        vocab_size: pipeline.tokenizer().vocab_size(),
        d_model: 32,
        n_heads: 2,
        n_layers: 1,
        d_ff: 64,
        max_seq: 64,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    (corpus.tables, pipeline, cfg)
}

fn requests(tables: &[Table]) -> Vec<ServeRequest> {
    tables
        .iter()
        .enumerate()
        .map(|(i, t)| ServeRequest {
            kind: ModelKind::Bert,
            table: t.clone(),
            context: format!("request {i}"),
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let (tables, _, _) = fixture();
    let reqs = requests(&tables);
    let mut group = c.benchmark_group("serve");

    // Production config, two load patterns.
    {
        let (_, pipeline, cfg) = fixture();
        let service = EmbeddingService::start(
            pipeline,
            ServeConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(2),
                n_workers: 4,
                cache_bytes: 0,
                model_config: Some(cfg),
            },
            ntr_obs::Obs::disabled(),
        );
        let handle = service.handle();

        // One request in flight: pays the coalescing deadline alone.
        let mut i = 0usize;
        group.bench_function("single", |b| {
            b.iter(|| {
                let req = reqs[i % reqs.len()].clone();
                i += 1;
                black_box(handle.submit(req).recv().unwrap().unwrap())
            })
        });

        // Eight requests in flight: the batch fills and flushes at once.
        group.bench_function("batch8", |b| {
            b.iter(|| {
                let rxs: Vec<_> = reqs.iter().map(|r| handle.submit(r.clone())).collect();
                for rx in rxs {
                    black_box(rx.recv().unwrap().unwrap());
                }
            })
        });

        drop(handle);
        service.shutdown();
    }

    // Batching disabled: the raw single-request latency floor.
    {
        let (_, pipeline, cfg) = fixture();
        let service = EmbeddingService::start(
            pipeline,
            ServeConfig {
                max_batch: 1,
                max_wait: Duration::from_millis(2),
                n_workers: 1,
                cache_bytes: 0,
                model_config: Some(cfg),
            },
            ntr_obs::Obs::disabled(),
        );
        let handle = service.handle();
        let mut i = 0usize;
        group.bench_function("nobatch", |b| {
            b.iter(|| {
                let req = reqs[i % reqs.len()].clone();
                i += 1;
                black_box(handle.submit(req).recv().unwrap().unwrap())
            })
        });
        drop(handle);
        service.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
