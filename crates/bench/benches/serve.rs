//! Throughput of the batched embedding service across the full
//! dynamic-batching matrix, plus a cache arm.
//!
//! The matrix arms are `in-flight {1, 8} × max_batch {1, 8}`, all with
//! 4 workers and the cache disabled so every request pays a real forward
//! pass (the two knobs under test are load and coalescing, not caching):
//!
//! - `serve/inflight1_mb1` — no batching, no concurrency: the raw
//!   single-request latency floor.
//! - `serve/inflight1_mb8` — the production coalescing config with one
//!   request in flight: a lone request cannot fill the batch, so it pays
//!   the full `max_wait` deadline before its flush.
//! - `serve/inflight8_mb1` — concurrent load with batching disabled:
//!   requests spread over the workers but each is encoded alone.
//! - `serve/inflight8_mb8` — concurrent load with coalescing: the batch
//!   fills instantly and flushes without waiting. One iter = 8 requests,
//!   so per-request cost is `ns / 8` and the amortization ratio is
//!   `ns(inflight1_mb8) / (ns(inflight8_mb8) / 8)`.
//!
//! `serve/cached` re-runs the `inflight1_mb8` shape with the content-hash
//! LRU enabled: after the first pass over the table set every request is a
//! hit, so this arm tracks the cache short-circuit path.
//!
//! Every arm is annotated with `requests_per_iter` and the service's
//! cumulative `cache_hits` / `cache_misses` counters at the end of the
//! arm, so `BENCH_serve.json` records the cache behaviour alongside the
//! timing and stays comparable across PRs.
//!
//! Run `cargo bench -p ntr-bench --bench serve -- --json BENCH_serve.json`
//! to regenerate the perf baseline CI uploads.

use criterion::{criterion_group, criterion_main, Criterion};
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::models::ModelConfig;
use ntr::table::{LinearizerOptions, Table};
use ntr::zoo::ModelKind;
use ntr::Pipeline;
use ntr_serve::{EmbeddingService, ServeConfig, ServeRequest};
use std::hint::black_box;
use std::time::Duration;

fn fixture() -> (Vec<Table>, Pipeline, ModelConfig) {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 8,
            min_rows: 4,
            max_rows: 6,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 11,
        },
    );
    let pipeline = Pipeline::builder()
        .vocab_from_tables(&corpus.tables)
        .vocab_size(1500)
        .options(LinearizerOptions {
            max_tokens: 64,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty");
    let cfg = ModelConfig {
        vocab_size: pipeline.tokenizer().vocab_size(),
        d_model: 32,
        n_heads: 2,
        n_layers: 1,
        d_ff: 64,
        max_seq: 64,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    (corpus.tables, pipeline, cfg)
}

fn requests(tables: &[Table]) -> Vec<ServeRequest> {
    tables
        .iter()
        .enumerate()
        .map(|(i, t)| ServeRequest::new(ModelKind::Bert, t.clone(), format!("request {i}")))
        .collect()
}

fn start_service(max_batch: usize, cache_bytes: usize) -> EmbeddingService {
    let (_, pipeline, cfg) = fixture();
    EmbeddingService::start(
        pipeline,
        ServeConfig {
            max_batch,
            max_wait: Duration::from_millis(2),
            n_workers: 4,
            cache_bytes,
            queue_cap: 0, // unbounded: the bench drives load, never sheds
            model_config: Some(cfg),
            ..ServeConfig::default()
        },
        ntr_obs::Obs::disabled(),
    )
    .expect("spawn service")
}

/// Runs one matrix arm against a fresh service and annotates the recorded
/// measurement with the arm's request fan-out and cache counters.
fn run_arm(
    group: &mut criterion::BenchmarkGroup<'_>,
    reqs: &[ServeRequest],
    name: &str,
    in_flight: usize,
    max_batch: usize,
    cache_bytes: usize,
) {
    let service = start_service(max_batch, cache_bytes);
    let handle = service.handle();
    let mut i = 0usize;
    group.bench_function(name, |b| {
        b.iter(|| {
            if in_flight <= 1 {
                let req = reqs[i % reqs.len()].clone();
                i += 1;
                black_box(handle.submit(req).recv().unwrap().unwrap());
            } else {
                let rxs: Vec<_> = reqs
                    .iter()
                    .cycle()
                    .skip(i % reqs.len())
                    .take(in_flight)
                    .map(|r| handle.submit(r.clone()))
                    .collect();
                i += in_flight;
                for rx in rxs {
                    black_box(rx.recv().unwrap().unwrap());
                }
            }
        })
    });
    let stats = service.stats();
    group
        .annotate("requests_per_iter", in_flight)
        .annotate("cache_hits", stats.cache.hits)
        .annotate("cache_misses", stats.cache.misses);
    drop(handle);
    service.shutdown();
}

fn bench_serve(c: &mut Criterion) {
    let (tables, _, _) = fixture();
    let reqs = requests(&tables);
    let mut group = c.benchmark_group("serve");

    // The load × coalescing matrix, cache off: every request pays a real
    // forward pass.
    run_arm(&mut group, &reqs, "inflight1_mb1", 1, 1, 0);
    run_arm(&mut group, &reqs, "inflight1_mb8", 1, 8, 0);
    run_arm(&mut group, &reqs, "inflight8_mb1", 8, 1, 0);
    run_arm(&mut group, &reqs, "inflight8_mb8", 8, 8, 0);

    // Cache arm: same shape as inflight1_mb8 but with the LRU enabled; the
    // 8-table working set fits, so steady state is all hits.
    run_arm(&mut group, &reqs, "cached", 1, 8, 32 << 20);

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
