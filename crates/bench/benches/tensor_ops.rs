//! Micro-benchmarks for the tensor kernels every model is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntr::nn::init::SeededInit;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut init = SeededInit::new(1);
    for n in [32usize, 64, 128, 256] {
        let a = init.uniform(&[n, n], -1.0, 1.0);
        let b = init.uniform(&[n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_nt(&b)))
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_tn(&b)))
        });
    }
    group.finish();
}

/// The retained pre-tiling kernels, benchmarked under `matmul_naive/...` so
/// `BENCH_tensor.json` captures the baseline the blocked kernels are judged
/// against (see ISSUE acceptance: ≥4× pooled, ≥1.5× single-thread at 256).
fn bench_matmul_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_naive");
    let mut init = SeededInit::new(1);
    for n in [64usize, 256] {
        let a = init.uniform(&[n, n], -1.0, 1.0);
        let b = init.uniform(&[n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| black_box(ntr::tensor::naive::matmul(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| black_box(ntr::tensor::naive::matmul_nt(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| black_box(ntr::tensor::naive::matmul_tn(&a, &b)))
        });
    }
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("elementwise");
    let mut init = SeededInit::new(4);
    let n = 1usize << 20;
    let x = init.uniform(&[n], -1.0, 1.0);
    let y = init.uniform(&[n], -1.0, 1.0);
    group.bench_with_input(BenchmarkId::new("axpy", n), &n, |bench, _| {
        let mut acc = x.clone();
        bench.iter(|| {
            acc.axpy(0.5, &y);
            black_box(acc.data()[0])
        })
    });
    group.bench_with_input(BenchmarkId::new("add_assign", n), &n, |bench, _| {
        let mut acc = x.clone();
        bench.iter(|| {
            acc.add_assign(&y);
            black_box(acc.data()[0])
        })
    });
    group.bench_with_input(BenchmarkId::new("par_map", n), &n, |bench, _| {
        bench.iter(|| black_box(x.par_map(|v| v * 1.5 + 0.25)))
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax_rows");
    let mut init = SeededInit::new(2);
    for n in [64usize, 256] {
        let x = init.uniform(&[n, n], -4.0, 4.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(x.softmax_rows()))
        });
    }
    group.finish();
}

fn bench_layernorm(c: &mut Criterion) {
    let mut init = SeededInit::new(3);
    let x = init.uniform(&[256, 64], -2.0, 2.0);
    let mut ln = ntr::nn::LayerNorm::new(64);
    c.bench_function("layernorm_256x64", |b| b.iter(|| black_box(ln.forward(&x))));
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_naive,
    bench_elementwise,
    bench_softmax,
    bench_layernorm
);
criterion_main!(benches);
