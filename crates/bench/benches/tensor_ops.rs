//! Micro-benchmarks for the tensor kernels every model is built on.
//!
//! Every kernel is swept over thread counts {1, 2, 4, 8} (via
//! `par::with_threads`, so one process covers the whole curve) and, when
//! the binary is built with `--features simd` on a capable CPU, over the
//! SIMD flag as well — the off arm pins the scalar path with
//! `simd::force_scalar`, which the dispatcher propagates into pool
//! workers. Each arm lands in `BENCH_tensor.json` under its own
//! `(op, shape, threads, simd)` key, so the baseline records the full
//! thread-scaling surface instead of one ambient configuration.
//!
//! The `matmul_naive` group is the retained pre-tiling reference; it is
//! single-threaded scalar by construction and measured only there.

use criterion::{criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion};
use ntr::nn::init::SeededInit;
use ntr::tensor::{par, simd};
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// SIMD arms worth measuring in this build: scalar always; the SIMD arm
/// only when the feature is compiled in and the CPU supports it (otherwise
/// it would silently duplicate the scalar numbers under an `on` label).
fn simd_arms() -> Vec<bool> {
    if simd::active() {
        vec![false, true]
    } else {
        vec![false]
    }
}

/// Measures `f` with the thread override and SIMD arm applied for the whole
/// calibration + sampling window, stamped onto the recorded entry.
fn run_arm<O>(
    group: &mut BenchmarkGroup<'_>,
    id: BenchmarkId,
    threads: usize,
    simd_on: bool,
    mut f: impl FnMut() -> O,
) {
    group.set_threads(threads).set_simd(simd_on);
    group.bench_with_input(id, &threads, |bench, _| {
        par::with_threads(threads, || {
            if simd_on {
                bench.iter(&mut f);
            } else {
                simd::force_scalar(|| bench.iter(&mut f));
            }
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut init = SeededInit::new(1);
    for n in [32usize, 64, 128, 256] {
        let a = init.uniform(&[n, n], -1.0, 1.0);
        let b = init.uniform(&[n, n], -1.0, 1.0);
        for &t in &THREADS {
            for simd_on in simd_arms() {
                run_arm(&mut group, BenchmarkId::new("nn", n), t, simd_on, || {
                    black_box(a.matmul(&b))
                });
                run_arm(&mut group, BenchmarkId::new("nt", n), t, simd_on, || {
                    black_box(a.matmul_nt(&b))
                });
                run_arm(&mut group, BenchmarkId::new("tn", n), t, simd_on, || {
                    black_box(a.matmul_tn(&b))
                });
            }
        }
    }
    group.finish();
}

/// The retained pre-tiling kernels, benchmarked under `matmul_naive/...` so
/// `BENCH_tensor.json` captures the baseline the blocked kernels are judged
/// against. Naive is scalar and single-threaded by construction.
fn bench_matmul_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_naive");
    group.set_threads(1).set_simd(false);
    let mut init = SeededInit::new(1);
    for n in [64usize, 256] {
        let a = init.uniform(&[n, n], -1.0, 1.0);
        let b = init.uniform(&[n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| black_box(ntr::tensor::naive::matmul(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| black_box(ntr::tensor::naive::matmul_nt(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| black_box(ntr::tensor::naive::matmul_tn(&a, &b)))
        });
    }
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("elementwise");
    let mut init = SeededInit::new(4);
    let n = 1usize << 20;
    let x = init.uniform(&[n], -1.0, 1.0);
    let y = init.uniform(&[n], -1.0, 1.0);
    for &t in &THREADS {
        for simd_on in simd_arms() {
            let mut acc = x.clone();
            run_arm(&mut group, BenchmarkId::new("axpy", n), t, simd_on, || {
                acc.axpy(0.5, &y);
                black_box(acc.data()[0])
            });
            let mut acc = x.clone();
            run_arm(
                &mut group,
                BenchmarkId::new("add_assign", n),
                t,
                simd_on,
                || {
                    acc.add_assign(&y);
                    black_box(acc.data()[0])
                },
            );
            run_arm(
                &mut group,
                BenchmarkId::new("par_map", n),
                t,
                simd_on,
                || black_box(x.par_map(|v| v * 1.5 + 0.25)),
            );
        }
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax_rows");
    let mut init = SeededInit::new(2);
    for n in [64usize, 256] {
        let x = init.uniform(&[n, n], -4.0, 4.0);
        for &t in &THREADS {
            for simd_on in simd_arms() {
                run_arm(
                    &mut group,
                    BenchmarkId::from_parameter(n),
                    t,
                    simd_on,
                    || black_box(x.softmax_rows()),
                );
            }
        }
    }
    group.finish();
}

fn bench_layernorm(c: &mut Criterion) {
    let mut group = c.benchmark_group("layernorm");
    let mut init = SeededInit::new(3);
    let x = init.uniform(&[256, 64], -2.0, 2.0);
    let mut ln = ntr::nn::LayerNorm::new(64);
    for &t in &THREADS {
        for simd_on in simd_arms() {
            run_arm(
                &mut group,
                BenchmarkId::from_parameter("256x64"),
                t,
                simd_on,
                || black_box(ln.forward(&x)),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_naive,
    bench_elementwise,
    bench_softmax,
    bench_layernorm
);
criterion_main!(benches);
