//! E1's timing companion: single-table encode latency per model family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::models::{EncoderInput, ModelConfig, TaBert};
use ntr::table::{Linearizer, LinearizerOptions, RowMajorLinearizer};
use ntr::zoo::{build_encoder, EncoderSpec, ModelKind};
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 4,
            min_rows: 6,
            max_rows: 6,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 2,
        },
    );
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &[], 1500);
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        n_entities: world.n_entities(),
        ..ModelConfig::default()
    };
    let table = &corpus.tables[0];
    let encoded =
        RowMajorLinearizer.linearize(table, &table.caption, &tok, &LinearizerOptions::default());
    let input = EncoderInput::from_encoded(&encoded);

    let mut group = c.benchmark_group("encode");
    for kind in ModelKind::ALL {
        let mut model = build_encoder(EncoderSpec::f32(kind), &cfg).expect("f32 spec");
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &input,
            |b, inp| b.iter(|| black_box(model.encode(inp, false))),
        );
    }
    let mut tabert = TaBert::new(&cfg);
    group.bench_function("tabert", |b| {
        b.iter(|| black_box(tabert.encode_table(table, &table.caption, &tok, false)))
    });
    group.finish();
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
