//! End-to-end `{"cmd": "search"}` wire-verb suite: a server started with an
//! IVF index over real synthetic-KB embeddings answers ranked ANN queries,
//! and the typed failure paths (`IndexNotLoaded`, `BadK`) stay typed.

use ntr::corpus::{CorpusConfig, TableCorpus, World, WorldConfig};
use ntr::table::{LinearizerOptions, Table};
use ntr::{build_encoder, EncoderSpec, ModelKind, Pipeline};
use ntr_serve::json::{self, Json};
use ntr_serve::{IvfConfig, IvfIndex, SearchIndex, ServeConfig, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const MAX_TOKENS: usize = 48;

struct Fixture {
    server: Server,
    tables: Vec<Table>,
    dir: PathBuf,
}

/// Encodes a synthetic-KB corpus, persists store + index, and starts a
/// server over them with the exact same pipeline/model configuration (the
/// repo's bit-identical-encode guarantee makes the spaces line up).
fn start_with_index(n_tables: usize) -> Fixture {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables,
            headerless_prob: 0.0,
            ..CorpusConfig::default()
        },
    );
    let pipeline = Pipeline::builder()
        .vocab_from_tables(&corpus.tables)
        .vocab_size(400)
        .options(LinearizerOptions {
            max_tokens: MAX_TOKENS,
            ..LinearizerOptions::default()
        })
        .build()
        .expect("vocab");
    let model_cfg = ntr_models::ModelConfig::tiny(pipeline.tokenizer().vocab_size());

    let mut model = build_encoder(EncoderSpec::f32(ModelKind::Bert), &model_cfg).expect("f32 spec");
    let mut store = ntr_serve::EmbeddingStore::new(model_cfg.d_model);
    for t in &corpus.tables {
        let enc = pipeline.encode(model.as_mut(), t, "");
        store
            .push(t.id.clone(), enc.table_embedding().data())
            .unwrap();
    }
    store.set_meta("model", ModelKind::Bert.name());
    let ivf = IvfIndex::build(&store, &IvfConfig::default()).unwrap();

    let dir =
        std::env::temp_dir().join(format!("ntr_search_verb_{}_{n_tables}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    store.save(&dir.join(SearchIndex::STORE_FILE)).unwrap();
    ivf.save(&dir.join(SearchIndex::IVF_FILE)).unwrap();
    let index = SearchIndex::open(&dir).unwrap();

    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        n_workers: 2,
        model_config: Some(model_cfg),
        ..ServeConfig::default()
    };
    let server = Server::start_with_index(
        pipeline,
        cfg,
        ServerConfig::default(),
        0,
        ntr_obs::Obs::disabled(),
        Some(Arc::new(index)),
    )
    .expect("bind ephemeral port");
    Fixture {
        server,
        tables: corpus.tables,
        dir,
    }
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    (
        BufReader::new(stream.try_clone().expect("clone stream")),
        stream,
    )
}

fn roundtrip(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    json::parse(resp.trim()).expect("response is JSON")
}

/// Renders a search request line for `table`, escaping every string.
fn search_line(id: u64, table: &Table, extra: &str) -> String {
    let mut out = format!("{{\"cmd\": \"search\", \"id\": {id}{extra}, \"columns\": [");
    for (i, col) in table.columns().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json::write_str(&mut out, &col.name);
    }
    out.push_str("], \"rows\": [");
    for r in 0..table.n_rows() {
        if r > 0 {
            out.push_str(", ");
        }
        out.push('[');
        for c in 0..table.n_cols() {
            if c > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, &table.cell(r, c).raw);
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

#[test]
fn search_returns_the_query_table_at_rank_zero() {
    let fx = start_with_index(80);
    let (mut reader, mut stream) = connect(fx.server.addr());

    for (id, t_idx) in [(1u64, 5usize), (2, 33), (3, 77)] {
        let table = &fx.tables[t_idx];
        let doc = roundtrip(
            &mut reader,
            &mut stream,
            &search_line(id, table, ", \"k\": 3"),
        );
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{doc:?}");
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(id));
        assert_eq!(doc.get("k").and_then(Json::as_u64), Some(3));
        let results = doc.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 3);
        // The stored table itself: its own centroid is always the top
        // probe, so rank 0 at distance 0 is guaranteed, not probabilistic.
        assert_eq!(
            results[0].get("table_id").and_then(Json::as_str),
            Some(fx.tables[t_idx].id.as_str())
        );
        let scanned = doc.get("scanned").and_then(Json::as_u64).unwrap();
        assert!(scanned > 0 && scanned <= fx.tables.len() as u64);
    }

    // The model field is optional (falls back to the index's build model)
    // but an explicit matching choice works too.
    let doc = roundtrip(
        &mut reader,
        &mut stream,
        &search_line(9, &fx.tables[5], ", \"k\": 1, \"model\": \"bert\""),
    );
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{doc:?}");

    fx.server.stop();
    fx.server.wait();
    let _ = std::fs::remove_dir_all(&fx.dir);
}

#[test]
fn bad_k_is_typed() {
    let fx = start_with_index(40);
    let (mut reader, mut stream) = connect(fx.server.addr());

    for (id, k) in [(1u64, "0"), (2, "100000")] {
        let doc = roundtrip(
            &mut reader,
            &mut stream,
            &search_line(id, &fx.tables[0], &format!(", \"k\": {k}")),
        );
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)), "{doc:?}");
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(id));
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("BadK"));
    }

    // The connection stays usable after typed rejections.
    let doc = roundtrip(
        &mut reader,
        &mut stream,
        &search_line(3, &fx.tables[0], ", \"k\": 2"),
    );
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{doc:?}");

    fx.server.stop();
    fx.server.wait();
    let _ = std::fs::remove_dir_all(&fx.dir);
}

#[test]
fn search_without_an_index_is_index_not_loaded() {
    let table = Table::from_strings("q", &["a", "b"], &[&["1", "2"]]);
    let pipeline = Pipeline::builder()
        .vocab_from_tables(std::slice::from_ref(&table))
        .vocab_size(300)
        .build()
        .expect("vocab");
    let cfg = ServeConfig {
        n_workers: 1,
        model_config: Some(ntr_models::ModelConfig::tiny(
            pipeline.tokenizer().vocab_size(),
        )),
        ..ServeConfig::default()
    };
    let server = Server::start_with(
        pipeline,
        cfg,
        ServerConfig::default(),
        0,
        ntr_obs::Obs::disabled(),
    )
    .expect("bind");
    let (mut reader, mut stream) = connect(server.addr());
    let doc = roundtrip(&mut reader, &mut stream, &search_line(7, &table, ""));
    assert_eq!(doc.get("ok"), Some(&Json::Bool(false)), "{doc:?}");
    let err = doc.get("error").unwrap();
    assert_eq!(
        err.get("kind").and_then(Json::as_str),
        Some("IndexNotLoaded")
    );
    // Plain encode still works on the same connection.
    let doc = roundtrip(
        &mut reader,
        &mut stream,
        r#"{"id": 8, "model": "bert", "columns": ["a", "b"], "rows": [["1", "2"]]}"#,
    );
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{doc:?}");
    server.stop();
    server.wait();
}
