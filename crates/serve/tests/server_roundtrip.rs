//! In-process TCP roundtrip: a real [`Server`] on an ephemeral port,
//! exercised over the NDJSON wire protocol — success responses, typed
//! error responses, cache hits across connections, and the shutdown
//! handshake.

use ntr::Pipeline;
use ntr_serve::json::{self, Json};
use ntr_serve::{ServeConfig, Server};
use ntr_table::{LinearizerOptions, Table};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn sample() -> Table {
    Table::from_strings(
        "countries",
        &["Country", "Capital"],
        &[&["France", "Paris"], &["Japan", "Tokyo"]],
    )
}

fn start_server() -> Server {
    let pipeline = Pipeline::builder()
        .vocab_from_tables(&[sample()])
        .vocab_size(300)
        .options(LinearizerOptions {
            max_tokens: 48,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty");
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        n_workers: 2,
        cache_bytes: 32 << 20,
        queue_cap: 256,
        model_config: Some(ntr_models::ModelConfig::tiny(
            pipeline.tokenizer().vocab_size(),
        )),
        ..ServeConfig::default()
    };
    Server::start(pipeline, cfg, 0, ntr_obs::Obs::disabled()).expect("bind ephemeral port")
}

fn roundtrip(stream: &mut (BufReader<TcpStream>, TcpStream), line: &str) -> Json {
    stream
        .1
        .write_all(format!("{line}\n").as_bytes())
        .expect("write request");
    let mut resp = String::new();
    stream.0.read_line(&mut resp).expect("read response");
    json::parse(resp.trim()).expect("response is valid JSON")
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    (
        BufReader::new(stream.try_clone().expect("clone stream")),
        stream,
    )
}

const REQ: &str = r#"{"id": 1, "model": "bert", "context": "capitals", "columns": ["Country", "Capital"], "rows": [["France", "Paris"], ["Japan", "Tokyo"]]}"#;

#[test]
fn wire_protocol_end_to_end() {
    let server = start_server();
    let addr = server.addr();

    // Success response with the full embedding.
    let mut conn = connect(addr);
    let doc = roundtrip(&mut conn, REQ);
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("cached"), Some(&Json::Bool(false)));
    let d_model = doc.get("d_model").and_then(Json::as_u64).expect("d_model");
    let emb = doc
        .get("embedding")
        .and_then(Json::as_arr)
        .expect("embedding");
    assert_eq!(emb.len() as u64, d_model);
    let first: Vec<f64> = emb.iter().filter_map(Json::as_f64).collect();
    assert!(first.iter().all(|v| v.is_finite()));

    // The identical request from a *different* connection hits the cache
    // and carries bit-identical floats (same shortest-roundtrip decimals).
    let mut conn2 = connect(addr);
    let doc2 = roundtrip(&mut conn2, &REQ.replace("\"id\": 1", "\"id\": 2"));
    assert_eq!(doc2.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(doc2.get("cached"), Some(&Json::Bool(true)));
    let second: Vec<f64> = doc2
        .get("embedding")
        .and_then(Json::as_arr)
        .expect("embedding")
        .iter()
        .filter_map(Json::as_f64)
        .collect();
    assert_eq!(first, second);

    // Unknown model -> structured BadModelChoice, connection stays usable.
    let doc3 = roundtrip(
        &mut conn,
        r#"{"id": 3, "model": "gpt", "columns": [], "rows": []}"#,
    );
    assert_eq!(doc3.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        doc3.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("BadModelChoice")
    );

    // Malformed JSON -> parse error response, not a dropped connection.
    let doc4 = roundtrip(&mut conn, "{not json");
    assert_eq!(doc4.get("ok"), Some(&Json::Bool(false)));

    // Shutdown handshake: ack, then the server drains.
    let ack = roundtrip(&mut conn, r#"{"cmd": "shutdown"}"#);
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
    drop(conn);
    drop(conn2);
    let stats = server.wait();
    let svc = stats.service;
    assert_eq!(svc.requests, 2); // the bad-model and parse errors never reach the service
    assert_eq!(svc.cache.hits, 1);
    assert_eq!(svc.errors, 0);
    assert_eq!(stats.event_loop.conns_accepted, 2);
    assert_eq!(stats.event_loop.accept_errors, 0);
}

#[test]
fn stop_unblocks_wait_without_clients() {
    let server = start_server();
    server.stop();
    let stats = server.wait();
    assert_eq!(stats.service.requests, 0);
}
