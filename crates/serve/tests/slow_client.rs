//! Slow-client isolation: a client that dribbles its request one byte at
//! a time, or never reads its responses, must not stall anyone else. The
//! event loop reads partial frames without blocking, so a fast client on
//! the same server keeps getting prompt, bit-identical responses; a
//! stalled connection is eventually closed by the idle/slow-consumer
//! timeout and shows up in the counters.

use ntr::Pipeline;
use ntr_serve::json::{self, Json};
use ntr_serve::{ServeConfig, Server, ServerConfig};
use ntr_table::{LinearizerOptions, Table};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn sample() -> Table {
    Table::from_strings(
        "countries",
        &["Country", "Capital"],
        &[&["France", "Paris"], &["Japan", "Tokyo"]],
    )
}

fn start_server(server_cfg: ServerConfig) -> Server {
    let pipeline = Pipeline::builder()
        .vocab_from_tables(&[sample()])
        .vocab_size(300)
        .options(LinearizerOptions {
            max_tokens: 48,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty");
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        n_workers: 2,
        cache_bytes: 32 << 20,
        queue_cap: 256,
        model_config: Some(ntr_models::ModelConfig::tiny(
            pipeline.tokenizer().vocab_size(),
        )),
        ..ServeConfig::default()
    };
    Server::start_with(pipeline, cfg, server_cfg, 0, ntr_obs::Obs::disabled())
        .expect("bind ephemeral port")
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    (
        BufReader::new(stream.try_clone().expect("clone stream")),
        stream,
    )
}

fn roundtrip(conn: &mut (BufReader<TcpStream>, TcpStream), line: &str) -> Json {
    conn.1
        .write_all(format!("{line}\n").as_bytes())
        .expect("write request");
    let mut resp = String::new();
    conn.0.read_line(&mut resp).expect("read response");
    assert!(!resp.is_empty(), "connection closed instead of responding");
    json::parse(resp.trim()).expect("response is valid JSON")
}

fn embedding(doc: &Json) -> Vec<f64> {
    doc.get("embedding")
        .and_then(Json::as_arr)
        .expect("embedding array")
        .iter()
        .filter_map(Json::as_f64)
        .collect()
}

const REQ: &str = r#"{"id": 1, "model": "bert", "context": "capitals", "columns": ["Country", "Capital"], "rows": [["France", "Paris"], ["Japan", "Tokyo"]]}"#;

/// A byte-per-tick writer shares the server with a fast client. The fast
/// client's requests are answered promptly (the loop never blocks on the
/// dribbling read) and bit-identically; the slow writer still gets its
/// response in the end — trickling is progress, not a timeout.
#[test]
fn byte_per_tick_writer_does_not_stall_fast_client() {
    let server = start_server(ServerConfig::default());
    let addr = server.addr();

    // Slow client: one byte every 2ms, from a background thread.
    let slow = std::thread::spawn(move || {
        let mut conn = connect(addr);
        let line = format!(
            "{}\n",
            REQ.replace("\"id\": 1", "\"id\": 77")
                .replace("capitals", "slowly now")
        );
        for b in line.as_bytes() {
            conn.1
                .write_all(std::slice::from_ref(b))
                .expect("write byte");
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut resp = String::new();
        conn.0.read_line(&mut resp).expect("read slow response");
        json::parse(resp.trim()).expect("valid response for slow writer")
    });

    // Fast client, meanwhile: repeated roundtrips, all prompt.
    let mut fast = connect(addr);
    let first = roundtrip(&mut fast, REQ);
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
    let reference = embedding(&first);
    let mut slowest = Duration::ZERO;
    for i in 2..20u64 {
        let t0 = Instant::now();
        let doc = roundtrip(
            &mut fast,
            &REQ.replace("\"id\": 1", &format!("\"id\": {i}")),
        );
        slowest = slowest.max(t0.elapsed());
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "request {i}");
        assert_eq!(doc.get("cached"), Some(&Json::Bool(true)), "request {i}");
        assert_eq!(
            embedding(&doc),
            reference,
            "fast client must see bit-identical responses while the slow \
             writer dribbles"
        );
    }
    // Generous bound for single-core CI: the dribbled request takes ~300ms
    // of wall clock; a blocking server would stall each fast roundtrip for
    // that long.
    assert!(
        slowest < Duration::from_secs(5),
        "fast roundtrip took {slowest:?} while a slow writer was active"
    );

    let slow_doc = slow.join().expect("slow client thread");
    assert_eq!(slow_doc.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(slow_doc.get("id").and_then(Json::as_u64), Some(77));

    server.stop();
    let stats = server.wait();
    assert_eq!(
        stats.event_loop.idle_closes + stats.event_loop.slow_closes,
        0,
        "a trickling writer makes progress and must not be timed out"
    );
}

/// A client that sends requests and then never reads (nor writes) again is
/// closed by the timeout sweep; the fast client sharing the server never
/// notices.
#[test]
fn stalled_client_is_timed_out_without_hurting_others() {
    let server = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    });
    let addr = server.addr();

    // The stalled client: two requests in, then silence, never reading.
    let mut stalled = connect(addr);
    stalled
        .1
        .write_all(format!("{REQ}\n{}\n", REQ.replace("\"id\": 1", "\"id\": 2")).as_bytes())
        .expect("write stalled requests");

    // Fast client keeps working through the stall window. Each roundtrip
    // also keeps its own connection inside the idle timeout.
    let mut fast = connect(addr);
    let first = roundtrip(&mut fast, &REQ.replace("\"id\": 1", "\"id\": 10"));
    let reference = embedding(&first);
    let deadline = Instant::now() + Duration::from_secs(3);
    let mut i = 11u64;
    while Instant::now() < deadline {
        let doc = roundtrip(
            &mut fast,
            &REQ.replace("\"id\": 1", &format!("\"id\": {i}")),
        );
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(embedding(&doc), reference);
        i += 1;
        std::thread::sleep(Duration::from_millis(100));
    }

    // The stalled connection is gone: reads see EOF (typed close), not a
    // hang.
    stalled
        .1
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut sink = String::new();
    loop {
        sink.clear();
        match stalled.0.read_line(&mut sink) {
            Ok(0) => break,    // EOF: server closed the stalled connection
            Ok(_) => continue, // buffered responses from before the stall
            Err(e) => panic!("expected EOF from timed-out connection, got {e}"),
        }
    }

    server.stop();
    let stats = server.wait();
    assert!(
        stats.event_loop.idle_closes + stats.event_loop.slow_closes >= 1,
        "the stalled connection must be closed by the timeout sweep: {:?}",
        stats.event_loop
    );
    assert_eq!(stats.event_loop.accept_errors, 0);
}
