//! Adversarial protocol suite: the server's parsers and framing layer
//! against hostile input — random bytes, mutated requests, pathological
//! nesting, oversized lines, truncated frames, and raw garbage over TCP.
//! The invariants: no panic ever, typed error responses only, and a
//! connection that misbehaves at the protocol level keeps working.

use ntr::Pipeline;
use ntr_serve::json::{self, Json};
use ntr_serve::wire;
use ntr_serve::{ServeConfig, Server, ServerConfig};
use ntr_table::{LinearizerOptions, Table};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn sample() -> Table {
    Table::from_strings(
        "countries",
        &["Country", "Capital"],
        &[&["France", "Paris"], &["Japan", "Tokyo"]],
    )
}

fn start_server(server_cfg: ServerConfig) -> Server {
    let pipeline = Pipeline::builder()
        .vocab_from_tables(&[sample()])
        .vocab_size(300)
        .options(LinearizerOptions {
            max_tokens: 48,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty");
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        n_workers: 2,
        cache_bytes: 32 << 20,
        queue_cap: 256,
        model_config: Some(ntr_models::ModelConfig::tiny(
            pipeline.tokenizer().vocab_size(),
        )),
        ..ServeConfig::default()
    };
    Server::start_with(pipeline, cfg, server_cfg, 0, ntr_obs::Obs::disabled())
        .expect("bind ephemeral port")
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    (
        BufReader::new(stream.try_clone().expect("clone stream")),
        stream,
    )
}

fn roundtrip(conn: &mut (BufReader<TcpStream>, TcpStream), line: &[u8]) -> Json {
    conn.1.write_all(line).expect("write request");
    conn.1.write_all(b"\n").expect("write newline");
    let mut resp = String::new();
    conn.0.read_line(&mut resp).expect("read response");
    assert!(!resp.is_empty(), "connection closed instead of responding");
    json::parse(resp.trim()).expect("response is valid JSON")
}

fn error_kind(doc: &Json) -> String {
    assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
    doc.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .expect("typed error kind")
        .to_string()
}

const VALID: &str = r#"{"id": 9, "model": "bert", "context": "caps", "columns": ["Country", "Capital"], "rows": [["France", "Paris"]]}"#;

// ---------------------------------------------------------------------------
// Pure parser fuzz (no sockets): json::parse and wire::parse_request must
// never panic and must return typed errors, whatever bytes arrive.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (lossily decoded, as the server does for any frame
    /// it accepts) never panic the JSON parser.
    #[test]
    fn json_parser_survives_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255u8, 0..300),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = json::parse(&text); // Ok or Err — never a panic
    }

    /// Printable-ASCII soup — heavy on JSON structural characters — never
    /// panics either parser, and wire errors always carry a non-empty kind.
    #[test]
    fn parsers_survive_printable_soup(line in "[ -~]{0,200}") {
        let _ = json::parse(&line);
        if let Err(e) = wire::parse_request(line.trim()) {
            prop_assert!(!e.kind.is_empty());
            prop_assert!(!e.message.is_empty());
        }
    }

    /// Mutations of a valid request (truncation plus byte splices) parse to
    /// Ok or a typed error — no panics, no uncategorized failures.
    #[test]
    fn mutated_valid_requests_stay_typed(
        cut in 0usize..=120,
        splices in proptest::collection::vec((0usize..120, 0u8..=255u8), 0..8),
    ) {
        let mut bytes = VALID.as_bytes().to_vec();
        for &(pos, b) in &splices {
            let i = pos % bytes.len();
            bytes[i] = b;
        }
        let keep = bytes.len() - cut.min(bytes.len());
        bytes.truncate(keep);
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = wire::parse_request(text.trim()) {
            prop_assert!(!e.kind.is_empty());
        }
    }
}

/// Deep nesting is rejected with a bounded-depth error instead of a stack
/// overflow — the classic `[[[[…` byte-to-stack-frame amplifier.
#[test]
fn deep_nesting_is_rejected_cheaply() {
    for bomb in [
        "[".repeat(200_000),
        "{\"k\":".repeat(200_000),
        format!("{}1{}", "[".repeat(500), "]".repeat(500)),
    ] {
        let err = json::parse(&bomb).expect_err("hostile nesting must fail");
        assert!(!err.is_empty());
    }
    let e = wire::parse_request(&"[".repeat(200_000)).expect_err("typed error");
    assert_eq!(e.kind, "BadRequest");
}

// ---------------------------------------------------------------------------
// Over TCP: protocol violations get error responses; the connection (and
// the server) keep working afterwards.
// ---------------------------------------------------------------------------

/// An oversized request line is answered with a typed `LineTooLong`, the
/// line is discarded with bounded memory, and the same connection then
/// serves a normal request.
#[test]
fn oversized_line_gets_typed_error_and_connection_survives() {
    let server = start_server(ServerConfig {
        max_line_bytes: 4 << 10,
        ..ServerConfig::default()
    });
    let mut conn = connect(server.addr());

    // 64 KiB of junk on one line: 16x the limit.
    let mut big = vec![b'x'; 64 << 10];
    big.push(b'\n');
    conn.1.write_all(&big).expect("write oversized line");
    let mut resp = String::new();
    conn.0.read_line(&mut resp).expect("read rejection");
    let doc = json::parse(resp.trim()).expect("valid JSON rejection");
    assert_eq!(error_kind(&doc), "LineTooLong");
    assert_eq!(doc.get("id"), Some(&Json::Null));

    // Same connection, normal request: still served.
    let doc = roundtrip(&mut conn, VALID.as_bytes());
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("id").and_then(Json::as_u64), Some(9));

    server.stop();
    let stats = server.wait();
    assert_eq!(stats.event_loop.oversized_lines, 1);
    assert_eq!(stats.service.requests, 1, "junk never reached the service");
}

/// Garbage frames — malformed JSON, non-UTF-8 bytes, wrong shapes — each
/// get an error response in order, without killing the connection.
#[test]
fn garbage_frames_get_error_responses_in_order() {
    let server = start_server(ServerConfig::default());
    let mut conn = connect(server.addr());

    let cases: &[(&[u8], &str)] = &[
        (b"{not json", "BadRequest"),
        (b"\xff\xfe\x00\x80garbage", "BadRequest"),
        (b"[1, 2, 3]", "BadRequest"),
        (b"{\"cmd\": \"reboot\"}", "BadRequest"),
        (
            b"{\"id\": 1, \"model\": \"gpt\", \"columns\": [], \"rows\": []}",
            "BadModelChoice",
        ),
        (b"null", "BadRequest"),
        (b"\"just a string\"", "BadRequest"),
    ];
    for &(line, kind) in cases {
        let doc = roundtrip(&mut conn, line);
        assert_eq!(error_kind(&doc), kind, "line {:?}", line);
    }

    // After all that abuse, the connection still encodes tables.
    let doc = roundtrip(&mut conn, VALID.as_bytes());
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));

    server.stop();
    server.wait();
}

/// A truncated frame (no newline) followed by a disconnect is dropped
/// silently; a pipelined batch of garbage + valid lines in one write gets
/// one response per line. Error responses are written synchronously while
/// encode responses come back from the batcher, so pipelined responses are
/// correlated by the echoed `id`, not by arrival order.
#[test]
fn truncated_and_pipelined_frames() {
    let server = start_server(ServerConfig::default());

    // Truncated: half a request, then the client vanishes.
    {
        let conn = connect(server.addr());
        conn.1
            .try_clone()
            .unwrap()
            .write_all(&VALID.as_bytes()[..40])
            .expect("write partial frame");
        // no newline, drop the connection
    }

    // The server is still alive and answers every line of a pipelined
    // burst — blank lines excepted, which get no response at all.
    let mut conn = connect(server.addr());
    let mut burst = Vec::new();
    burst.extend_from_slice(b"{broken\n");
    burst.extend_from_slice(VALID.as_bytes());
    burst.extend_from_slice(b"\n\n"); // blank line: ignored, no response
    burst.extend_from_slice(b"{\"also\": \"broken\"\n");
    conn.1.write_all(&burst).expect("write pipelined burst");

    let mut docs = Vec::new();
    let mut resp = String::new();
    for i in 0..3 {
        resp.clear();
        conn.0.read_line(&mut resp).unwrap_or_else(|e| {
            panic!("response {i}: {e}");
        });
        docs.push(json::parse(resp.trim()).expect("valid JSON response"));
    }
    let oks: Vec<_> = docs
        .iter()
        .filter(|d| d.get("ok") == Some(&Json::Bool(true)))
        .collect();
    assert_eq!(oks.len(), 1, "exactly one line was a valid request");
    assert_eq!(
        oks[0].get("id").and_then(Json::as_u64),
        Some(9),
        "the success echoes the request id"
    );
    let kinds: Vec<_> = docs
        .iter()
        .filter(|d| d.get("ok") == Some(&Json::Bool(false)))
        .map(error_kind)
        .collect();
    assert_eq!(
        kinds,
        ["BadRequest", "BadRequest"],
        "both garbage lines get typed errors"
    );

    server.stop();
    server.wait();
}

/// CRLF line endings and leading/trailing whitespace are tolerated.
#[test]
fn crlf_and_whitespace_are_tolerated() {
    let server = start_server(ServerConfig::default());
    let mut conn = connect(server.addr());

    conn.1
        .write_all(format!("  {VALID}  \r\n").as_bytes())
        .expect("write CRLF request");
    let mut resp = String::new();
    conn.0.read_line(&mut resp).expect("read response");
    let doc = json::parse(resp.trim()).expect("valid JSON");
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));

    server.stop();
    server.wait();
}
