//! Serve-side chaos drills: injected flush panics, slow flushes, request
//! deadlines, and degraded mode, exercised at both the service layer
//! (`EmbeddingService` in-process) and over a real TCP connection.
//!
//! The properties under test are the self-healing contract:
//!
//! * **no hangs** — every submission is answered, so every `recv` here
//!   uses a bounded timeout and a timeout is a test failure;
//! * **exactly-once typed responses** — a caught panic answers the
//!   affected requests with `EncodeError::Internal`, never drops them and
//!   never answers twice;
//! * **recovery** — the server keeps accepting, quarantined replicas
//!   rebuild from the shared seeded config, and post-recovery outputs are
//!   bit-identical to a fault-free run;
//! * **honest telemetry** — fault counters move and the emitted
//!   `serve_fault` / `serve_recover` events validate against the pinned
//!   trace schema.

use ntr::{EncodeError, ModelKind, Pipeline};
use ntr_serve::json::{self, Json};
use ntr_serve::{EmbeddingService, ServeConfig, ServeRequest, Server, INJECTED_FLUSH_PANIC_MSG};
use ntr_table::{LinearizerOptions, Table};
use ntr_tensor::faults::FaultPlan;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Generous bound for "this must answer": a hang fails fast instead of
/// wedging the suite.
const ANSWER_WITHIN: Duration = Duration::from_secs(30);

fn sample() -> Table {
    Table::from_strings(
        "countries",
        &["Country", "Capital"],
        &[&["France", "Paris"], &["Japan", "Tokyo"]],
    )
}

fn pipeline() -> Pipeline {
    Pipeline::builder()
        .vocab_from_tables(&[sample()])
        .vocab_size(300)
        .options(LinearizerOptions {
            max_tokens: 48,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty")
}

/// A cache-off config so every request pays a real forward pass — the
/// drills are about the encode path, and bit-identity checks must not be
/// satisfied by a cache hit.
fn chaos_cfg(pipeline: &Pipeline, faults: Option<FaultPlan>) -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        n_workers: 2,
        cache_bytes: 0,
        queue_cap: 256,
        model_config: Some(ntr_models::ModelConfig::tiny(
            pipeline.tokenizer().vocab_size(),
        )),
        faults,
        ..ServeConfig::default()
    }
}

fn start_service(faults: Option<FaultPlan>, obs: ntr_obs::Obs) -> EmbeddingService {
    let pipeline = pipeline();
    let cfg = chaos_cfg(&pipeline, faults);
    EmbeddingService::start(pipeline, cfg, obs).expect("spawn service")
}

fn plan(spec: &str) -> Option<FaultPlan> {
    Some(FaultPlan::parse(spec).expect("valid fault spec"))
}

fn request(ctx: &str) -> ServeRequest {
    ServeRequest::new(ModelKind::Bert, sample(), ctx)
}

/// Polls `pred` until it holds or the bound elapses.
fn wait_for(what: &str, mut pred: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !pred() {
        assert!(t0.elapsed() < ANSWER_WITHIN, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn injected_panic_answers_every_request_exactly_once() {
    let service = start_service(plan("serve-panic@1"), ntr_obs::Obs::disabled());
    let handle = service.handle();

    // Four concurrent requests; the first flush panics on replica 0.
    let rxs: Vec<_> = (0..4)
        .map(|i| handle.submit(request(&format!("drill {i}"))))
        .collect();
    let mut oks = 0;
    let mut internals = 0;
    for rx in &rxs {
        match rx.recv_timeout(ANSWER_WITHIN).expect("no request may hang") {
            Ok(reply) => {
                assert!(!reply.cached, "cache is off in the drill");
                oks += 1;
            }
            Err(EncodeError::Internal { detail }) => {
                assert!(
                    detail.contains(INJECTED_FLUSH_PANIC_MSG),
                    "internal error carries the panic payload, got {detail:?}"
                );
                internals += 1;
            }
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
        // Exactly once: the completion is consumed, nothing else arrives.
        assert!(rx.try_recv().is_err(), "a request was answered twice");
    }
    assert_eq!(oks + internals, 4, "every request answered");
    assert!(internals >= 1, "the injected panic failed someone");

    // Recovery: the same requests now succeed on the rebuilt replica.
    for i in 0..4 {
        let rx = handle.submit(request(&format!("drill {i}")));
        rx.recv_timeout(ANSWER_WITHIN)
            .expect("post-recovery request answered")
            .expect("post-recovery request succeeds");
    }

    drop(handle); // the batcher drains and exits once every handle is gone
    let stats = service.shutdown();
    assert_eq!(stats.quarantined, 1, "exactly one replica quarantined");
    assert_eq!(stats.internal, internals as u64);
    assert_eq!(stats.requests, 8);
    assert_eq!(
        stats.restarts, 0,
        "a flush panic never restarts the batcher"
    );
}

#[test]
fn rebuilt_replica_is_bit_identical_to_a_fault_free_run() {
    // Faulted service: first flush panics, quarantine drops the models,
    // the next request rebuilds them from the shared seeded config.
    let faulted = start_service(plan("serve-panic@1"), ntr_obs::Obs::disabled());
    let handle = faulted.handle();
    let r = handle
        .submit(request("identity probe"))
        .recv_timeout(ANSWER_WITHIN)
        .expect("answered");
    assert!(
        r.is_err(),
        "a single-request flush panics deterministically"
    );
    let rebuilt = handle
        .submit(request("identity probe"))
        .recv_timeout(ANSWER_WITHIN)
        .expect("answered")
        .expect("rebuilt replica encodes");

    // Reference service: identical pipeline + config, no faults.
    let clean = start_service(None, ntr_obs::Obs::disabled());
    let baseline = clean
        .handle()
        .submit(request("identity probe"))
        .recv_timeout(ANSWER_WITHIN)
        .expect("answered")
        .expect("clean run encodes");

    assert_eq!(
        rebuilt.encoding.table_embedding().data(),
        baseline.encoding.table_embedding().data(),
        "post-quarantine rebuild must be bit-identical to a fault-free replica"
    );
    drop(handle);
    assert_eq!(faulted.shutdown().quarantined, 1);
    clean.shutdown();
}

#[test]
fn slow_flush_delays_but_never_hangs() {
    let service = start_service(plan("serve-slow@1"), ntr_obs::Obs::disabled());
    let t0 = Instant::now();
    let reply = service
        .handle()
        .submit(request("slow drill"))
        .recv_timeout(ANSWER_WITHIN)
        .expect("slow flush still answers")
        .expect("slow flush still succeeds");
    assert!(!reply.cached);
    assert!(
        t0.elapsed() >= Duration::from_millis(60),
        "the injected delay actually fired"
    );
    let stats = service.shutdown();
    assert_eq!(stats.errors, 0, "slowness is not an error");
    assert_eq!(stats.quarantined, 0);
}

#[test]
fn deadlines_are_enforced_at_admission_and_in_queue() {
    let pipeline = pipeline();
    let cfg = ServeConfig {
        // A batch that can never fill: the lone request sits in the
        // queue for the full max_wait, blowing its 1ms budget.
        max_wait: Duration::from_millis(120),
        ..chaos_cfg(&pipeline, None)
    };
    let service =
        EmbeddingService::start(pipeline, cfg, ntr_obs::Obs::disabled()).expect("spawn service");
    let handle = service.handle();

    // Tier 1 (admission): a zero budget is already expired, answered
    // synchronously without ever queueing.
    let rx = handle.submit(ServeRequest {
        timeout: Some(Duration::ZERO),
        ..request("expired on arrival")
    });
    match rx.recv_timeout(ANSWER_WITHIN).expect("answered") {
        Err(EncodeError::DeadlineExceeded { timeout_ms }) => assert_eq!(timeout_ms, 0),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // Tier 2 (in-queue): expires while waiting for the batch to fill.
    let rx = handle.submit(ServeRequest {
        timeout: Some(Duration::from_millis(1)),
        ..request("expired in queue")
    });
    match rx.recv_timeout(ANSWER_WITHIN).expect("answered") {
        Err(EncodeError::DeadlineExceeded { timeout_ms }) => assert_eq!(timeout_ms, 1),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // No budget: the same shape succeeds, just late.
    handle
        .submit(request("patient"))
        .recv_timeout(ANSWER_WITHIN)
        .expect("answered")
        .expect("no deadline, no error");

    drop(handle);
    let stats = service.shutdown();
    assert_eq!(stats.deadline_exceeded, 2);
    assert_eq!(stats.errors, 2);
}

#[test]
fn breaker_opens_into_degraded_mode_and_probe_recovers() {
    let pipeline = pipeline();
    let cfg = ServeConfig {
        n_workers: 1, // a single replica, so the panicking flush is fully faulted
        max_batch: 1,
        breaker_window: 4,
        breaker_threshold: 1,
        probe_every: 2,
        ..chaos_cfg(&pipeline, plan("serve-panic@1"))
    };
    let service =
        EmbeddingService::start(pipeline, cfg, ntr_obs::Obs::disabled()).expect("spawn service");
    let handle = service.handle();

    // The faulted flush answers Internal, then trips the breaker.
    let r = handle
        .submit(request("trip"))
        .recv_timeout(ANSWER_WITHIN)
        .expect("answered");
    assert!(matches!(r, Err(EncodeError::Internal { .. })));
    wait_for("breaker to open", || handle.health().state == "degraded");

    // Degraded: the first miss is rejected in O(1) with a typed error…
    let r = handle
        .submit(request("rejected while degraded"))
        .recv_timeout(ANSWER_WITHIN)
        .expect("answered");
    assert!(matches!(r, Err(EncodeError::Degraded)), "got {r:?}");

    // …and the second is admitted as the half-open probe; its clean
    // flush closes the breaker.
    handle
        .submit(request("probe"))
        .recv_timeout(ANSWER_WITHIN)
        .expect("answered")
        .expect("the probe succeeds on the rebuilt replica");
    wait_for("breaker to close", || handle.health().state == "ok");

    handle
        .submit(request("back to normal"))
        .recv_timeout(ANSWER_WITHIN)
        .expect("answered")
        .expect("service recovered");

    drop(handle);
    let stats = service.shutdown();
    assert!(stats.degraded_rejects >= 1, "stats: {stats:?}");
    assert!(stats.degraded_probes >= 1, "stats: {stats:?}");
    assert_eq!(stats.quarantined, 1);
}

#[test]
fn fault_events_validate_against_the_trace_schema() {
    let trace_path =
        std::env::temp_dir().join(format!("ntr-chaos-trace-{}.jsonl", std::process::id()));
    let obs = ntr_obs::Obs::open(&ntr_obs::ObsOptions {
        trace: Some(trace_path.clone()),
        metrics: None,
    })
    .expect("open trace");

    let service = start_service(plan("serve-panic@1,serve-slow@2"), obs);
    let handle = service.handle();
    for i in 0..3 {
        let _ = handle
            .submit(request(&format!("traced {i}")))
            .recv_timeout(ANSWER_WITHIN)
            .expect("answered");
    }
    drop(handle);
    service.shutdown();

    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    let _ = std::fs::remove_file(&trace_path);
    let n = ntr_obs::trace::schema::validate_trace(&text)
        .unwrap_or_else(|e| panic!("trace fails schema validation: {e}\n{text}"));
    assert!(n > 0, "trace is non-empty");
    assert!(
        text.contains(r#""ev": "serve_fault""#),
        "drill emitted serve_fault events:\n{text}"
    );
    assert!(
        text.contains(r#""ev": "serve_recover""#),
        "quarantine emitted a serve_recover event:\n{text}"
    );
}

// ---------------------------------------------------------------------
// Wire-level drill: the same faults through a real TCP server.
// ---------------------------------------------------------------------

fn start_server(faults: Option<FaultPlan>) -> Server {
    let pipeline = pipeline();
    let cfg = chaos_cfg(&pipeline, faults);
    Server::start(pipeline, cfg, 0, ntr_obs::Obs::disabled()).expect("bind ephemeral port")
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(ANSWER_WITHIN))
        .expect("read timeout");
    (
        BufReader::new(stream.try_clone().expect("clone stream")),
        stream,
    )
}

fn roundtrip(conn: &mut (BufReader<TcpStream>, TcpStream), line: &str) -> Json {
    conn.1
        .write_all(format!("{line}\n").as_bytes())
        .expect("write request");
    let mut resp = String::new();
    conn.0.read_line(&mut resp).expect("read response");
    json::parse(resp.trim()).expect("response is valid JSON")
}

const REQ: &str = r#"{"id": 1, "model": "bert", "context": "capitals", "columns": ["Country", "Capital"], "rows": [["France", "Paris"], ["Japan", "Tokyo"]]}"#;

fn embedding_of(doc: &Json) -> Vec<f64> {
    doc.get("embedding")
        .and_then(Json::as_arr)
        .expect("embedding array")
        .iter()
        .filter_map(Json::as_f64)
        .collect()
}

#[test]
fn server_survives_panic_drill_and_stays_bit_identical() {
    let server = start_server(plan("serve-panic@1"));
    let addr = server.addr();

    // The drilled request comes back as a typed Internal error line —
    // the connection survives, nothing hangs, nothing is dropped.
    let mut conn = connect(addr);
    let doc = roundtrip(&mut conn, REQ);
    assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(doc.get("id").and_then(Json::as_u64), Some(1));
    let err = doc.get("error").expect("error object");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("Internal"));
    assert!(err
        .get("message")
        .and_then(Json::as_str)
        .expect("message")
        .contains(INJECTED_FLUSH_PANIC_MSG));

    // A *new* connection mid-drill: the server is still accepting, and
    // the health verb reports the quarantine honestly while staying "ok"
    // (one fault is below the breaker threshold).
    let mut conn2 = connect(addr);
    let health = roundtrip(&mut conn2, r#"{"cmd": "health"}"#);
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(health.get("state").and_then(Json::as_str), Some("ok"));
    assert!(health.get("quarantined").and_then(Json::as_u64).unwrap() >= 1);
    let replicas = health.get("replicas").and_then(Json::as_arr).unwrap();
    assert_eq!(replicas.len(), 2);
    assert!(replicas
        .iter()
        .all(|r| r.get("retired") == Some(&Json::Bool(false))));

    // A zero budget over the wire is a typed DeadlineExceeded.
    let doc = roundtrip(
        &mut conn2,
        &REQ.replace("\"id\": 1", "\"id\": 2, \"timeout_ms\": 0"),
    );
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("DeadlineExceeded")
    );

    // Post-recovery encode on the rebuilt replica…
    let doc = roundtrip(&mut conn2, &REQ.replace("\"id\": 1", "\"id\": 3"));
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    let rebuilt = embedding_of(&doc);

    // …is bit-identical to a fault-free server (shortest-roundtrip float
    // formatting makes string-level equality the same as bit equality).
    let clean = start_server(None);
    let mut conn3 = connect(clean.addr());
    let baseline = embedding_of(&roundtrip(&mut conn3, REQ));
    assert_eq!(rebuilt, baseline, "recovery must not perturb outputs");

    roundtrip(&mut conn, r#"{"cmd": "shutdown"}"#);
    drop(conn);
    drop(conn2);
    let stats = server.wait();
    assert_eq!(stats.service.internal, 1);
    assert_eq!(stats.service.quarantined, 1);
    assert_eq!(stats.service.deadline_exceeded, 1);
    assert!(stats.event_loop.conns_accepted >= 2);
    drop(conn3);
    clean.stop();
    clean.wait();
}
