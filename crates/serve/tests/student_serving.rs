//! Serving the distilled row student at int8 end to end (DESIGN.md §13):
//!
//! * a cache miss through `ModelKind::RowStudent` at `QuantSpec::Int8`
//!   answers with exactly the bits a sequential `Pipeline::encode` of the
//!   same spec produces;
//! * those bits are identical with SIMD forced off — the int8 matmul
//!   accumulates in integer arithmetic, so lane width (and, with the CI
//!   `NTR_THREADS={1,4}` legs running this test, thread count) cannot
//!   change them;
//! * an int8 request for a family with no int8 path is a typed
//!   `BadModelChoice` on the response channel, never a worker panic.

use ntr::{EncodeError, EncoderSpec, ModelKind, Pipeline, QuantSpec, TableEncoding};
use ntr_models::ModelConfig;
use ntr_serve::{EmbeddingService, ServeConfig, ServeRequest};
use ntr_table::{LinearizerOptions, Table};
use std::time::Duration;

fn table(seed: u64) -> Table {
    let cells: Vec<Vec<String>> = (0..3)
        .map(|r| {
            (0..3)
                .map(|c| format!("v{}", (seed + 5 * r + c) % 17))
                .collect()
        })
        .collect();
    let row_refs: Vec<Vec<&str>> = cells
        .iter()
        .map(|row| row.iter().map(String::as_str).collect())
        .collect();
    let slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
    Table::from_strings(&format!("t{seed}"), &["a", "b", "c"], &slices)
}

fn pipeline(spec: EncoderSpec) -> Pipeline {
    let vocab: Vec<Table> = (0..17).map(table).collect();
    Pipeline::builder()
        .vocab_from_tables(&vocab)
        .vocab_size(400)
        .encoder(spec)
        .options(LinearizerOptions {
            max_tokens: 48,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty")
}

fn bits(enc: &TableEncoding) -> Vec<u32> {
    enc.states.data().iter().map(|v| v.to_bits()).collect()
}

fn serve_one(spec: EncoderSpec, cfg: ModelConfig, n_workers: usize) -> Vec<u32> {
    let service = EmbeddingService::start(
        pipeline(spec),
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            n_workers,
            cache_bytes: 0, // every request is a cache miss
            queue_cap: 0,
            model_config: Some(cfg),
            ..ServeConfig::default()
        },
        ntr_obs::Obs::disabled(),
    )
    .expect("spawn service");
    let handle = service.handle();
    let reply = handle
        .submit(ServeRequest::with_spec(spec, table(3), "quantized"))
        .recv()
        .unwrap()
        .unwrap();
    assert!(!reply.cached, "cache is disabled; this must be a miss");
    let out = bits(&reply.encoding);
    drop(handle);
    let stats = service.shutdown();
    assert_eq!(stats.errors, 0);
    out
}

#[test]
fn int8_student_cache_miss_is_bit_identical_to_sequential_encode() {
    let spec = EncoderSpec::new(ModelKind::RowStudent, QuantSpec::Int8);
    let p = pipeline(spec);
    let cfg = ModelConfig::tiny(p.tokenizer().vocab_size());
    // Sequential ground truth, from the same config the replicas use.
    let mut model = ntr::build_encoder(p.encoder_spec(), &cfg).unwrap();
    let expected = bits(&p.encode(model.as_mut(), &table(3), "quantized"));

    // The same bits must come out of the full serving stack, at one
    // worker and at several, and with SIMD lanes forced off — the int8
    // kernel is integer-exact, so neither may perturb a bit.
    assert_eq!(serve_one(spec, cfg, 1), expected);
    assert_eq!(serve_one(spec, cfg, 4), expected);
    let scalar = ntr_tensor::simd::force_scalar(|| serve_one(spec, cfg, 2));
    assert_eq!(scalar, expected);
}

#[test]
fn int8_and_f32_student_do_not_share_cache_entries() {
    let int8 = EncoderSpec::new(ModelKind::RowStudent, QuantSpec::Int8);
    let p = pipeline(int8);
    let cfg = ModelConfig::tiny(p.tokenizer().vocab_size());
    let service = EmbeddingService::start(
        pipeline(int8),
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            n_workers: 2,
            cache_bytes: 32 << 20,
            queue_cap: 0,
            model_config: Some(cfg),
            ..ServeConfig::default()
        },
        ntr_obs::Obs::disabled(),
    )
    .expect("spawn service");
    let handle = service.handle();
    let first = handle
        .submit(ServeRequest::with_spec(int8, table(7), "q"))
        .recv()
        .unwrap()
        .unwrap();
    assert!(!first.cached);
    // Same table at f32: the precision is part of the cache key, so this
    // must miss and re-encode rather than answer with int8 bits.
    let f32_reply = handle
        .submit(ServeRequest::new(ModelKind::RowStudent, table(7), "q"))
        .recv()
        .unwrap()
        .unwrap();
    assert!(!f32_reply.cached, "precision change must miss the cache");
    // And the int8 entry is still live for its own spec.
    let again = handle
        .submit(ServeRequest::with_spec(int8, table(7), "q"))
        .recv()
        .unwrap()
        .unwrap();
    assert!(again.cached);
    assert_eq!(bits(&first.encoding), bits(&again.encoding));

    drop(handle);
    service.shutdown();
}

#[test]
fn int8_on_a_teacher_family_is_a_typed_rejection() {
    let spec = EncoderSpec::f32(ModelKind::Tapas);
    let p = pipeline(spec);
    let cfg = ModelConfig::tiny(p.tokenizer().vocab_size());
    let service = EmbeddingService::start(
        pipeline(spec),
        ServeConfig {
            model_config: Some(cfg),
            ..ServeConfig::default()
        },
        ntr_obs::Obs::disabled(),
    )
    .expect("spawn service");
    let handle = service.handle();
    let bad = EncoderSpec::new(ModelKind::Tapas, QuantSpec::Int8);
    match handle
        .submit(ServeRequest::with_spec(bad, table(1), ""))
        .recv()
        .unwrap()
    {
        Err(EncodeError::BadModelChoice { detail }) => {
            assert!(detail.contains("int8"), "{detail}")
        }
        Err(e) => panic!("expected BadModelChoice, got {e}"),
        Ok(_) => panic!("int8 tapas must be rejected at admission"),
    }
    drop(handle);
    let stats = service.shutdown();
    assert_eq!(stats.errors, 1);
}
