//! Property tests for the wire JSON string escaping: any Rust string the
//! service can emit — error details carrying panic payloads, hostile cell
//! text echoed back in `BadRequest` messages — must survive
//! `json::write_str` → `json::parse` bit-for-bit. A single mis-escaped
//! control character would corrupt the NDJSON framing (a raw `\n` splits
//! one response into two lines), so this property is load-bearing for the
//! protocol, not just cosmetic.

use ntr::EncodeError;
use ntr_serve::json::{self, Json};
use ntr_serve::wire;
use proptest::prelude::*;

/// Arbitrary Unicode strings, surrogate gap mapped to U+FFFD (the same
/// substitution the parser applies to unpaired `\u` escapes). Draws are
/// weighted toward the troublesome regions: ASCII controls, the escape
/// metacharacters, and astral-plane code points.
fn arb_string() -> impl Strategy<Value = String> {
    let cp = prop_oneof![
        0u32..0x20,             // C0 controls: must be \u-escaped
        0x20u32..0x80,          // printable ASCII incl. `"` and `\`
        0x80u32..0x800,         // 2-byte UTF-8
        0x800u32..0x1_0000,     // 3-byte UTF-8 (crosses the surrogate gap)
        0x1_0000u32..0x11_0000  // astral plane: 4-byte UTF-8, non-BMP
    ];
    proptest::collection::vec(cp, 0..48).prop_map(|cps| {
        cps.into_iter()
            .map(|c| char::from_u32(c).unwrap_or('\u{FFFD}'))
            .collect()
    })
}

/// Embeds `s` as an object value the way every response renderer does,
/// parses the document back, and returns the recovered string.
fn through_wire(s: &str) -> String {
    let mut line = String::from("{\"detail\": ");
    json::write_str(&mut line, s);
    line.push('}');
    let doc = json::parse(&line).unwrap_or_else(|e| panic!("emitted invalid JSON {line:?}: {e}"));
    doc.get("detail")
        .and_then(Json::as_str)
        .expect("detail field survives")
        .to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn write_str_round_trips_arbitrary_strings(s in arb_string()) {
        prop_assert_eq!(through_wire(&s), s);
    }

    // The full error-response path: an `Internal` whose detail is a panic
    // payload of arbitrary text must come back as one well-formed line
    // with the detail intact inside `error.message`.
    #[test]
    fn internal_error_responses_round_trip(detail in arb_string(), id in 0u64..1_000_000) {
        let line = wire::encode_err_response(id, &EncodeError::Internal { detail: detail.clone() });
        prop_assert!(!line.contains('\n'), "response must stay a single NDJSON line");
        let doc = json::parse(&line).expect("error response is valid JSON");
        prop_assert_eq!(doc.get("id").and_then(Json::as_u64), Some(id));
        prop_assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        let err = doc.get("error").expect("error object");
        prop_assert_eq!(err.get("kind").and_then(Json::as_str), Some("Internal"));
        let msg = err.get("message").and_then(Json::as_str).expect("message");
        prop_assert!(msg.contains(&detail), "payload {detail:?} lost from {msg:?}");
    }
}

#[test]
fn targeted_hostile_strings_round_trip() {
    let cases: &[&str] = &[
        "",
        "\"",
        "\\",
        "\\\"\\\"",
        "a\"b\\c",
        "\n\r\t",
        "\u{0}\u{1}\u{8}\u{c}\u{1f}", // every escape branch incl. \u00xx
        "line1\nline2\r\nline3",      // framing hazards
        "tab\there\tand\tthere",
        "ünïcödé çhärs",                          // 2-byte sequences
        "日本語のテーブル",                       // 3-byte sequences
        "emoji 😀🎉 and music 𝄞",                 // non-BMP (4-byte, surrogate pairs in UTF-16)
        "\u{FFFD}\u{FFFF}\u{10FFFF}",             // boundary code points
        "{\"nested\": \"json\"}",                 // JSON-in-string must not re-parse
        "ntr-faults: injected serve flush panic", // the actual panic payload
    ];
    for s in cases {
        assert_eq!(&through_wire(s), s, "round-trip failed for {s:?}");
    }
}
