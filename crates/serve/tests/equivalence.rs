//! The bit-identity contract of the serving stack, checked three ways:
//!
//! 1. `Pipeline::encode_batch` output must equal per-request
//!    `Pipeline::encode` output bit-for-bit (property-tested over random
//!    table shapes and batch compositions);
//! 2. the full [`EmbeddingService`] — micro-batcher, length bucketing,
//!    worker replicas — must also reproduce sequential `encode` exactly,
//!    at every batch size and worker count;
//! 3. the cache must answer duplicate content with the *same* encoding
//!    (same `Arc`, same bits) and count hits/misses/evictions correctly.
//!
//! Plus the typed error paths end to end: `TableTooLarge` and
//! `BadModelChoice` must come back through the response channel, never as
//! a panic.

use ntr::{
    build_encoder, EncodeError, EncodeRequest, EncoderSpec, ModelKind, Pipeline, TableEncoding,
};
use ntr_models::ModelConfig;
use ntr_serve::{EmbeddingService, ServeConfig, ServeRequest};
use ntr_table::{LinearizerOptions, Table};
use proptest::prelude::*;
use std::time::Duration;

/// A deterministic table whose shape and cell text vary with `seed`.
fn table(seed: u64, n_rows: usize, n_cols: usize) -> Table {
    let headers: Vec<String> = (0..n_cols).map(|c| format!("h{c}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let cells: Vec<Vec<String>> = (0..n_rows)
        .map(|r| {
            (0..n_cols)
                .map(|c| format!("v{}", (seed + 7 * r as u64 + 3 * c as u64) % 23))
                .collect()
        })
        .collect();
    let row_refs: Vec<Vec<&str>> = cells
        .iter()
        .map(|row| row.iter().map(String::as_str).collect())
        .collect();
    let slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
    Table::from_strings(&format!("t{seed}"), &header_refs, &slices)
        .with_caption(format!("caption {seed}"))
}

/// A pipeline whose vocabulary covers every table `table()` can produce.
/// `max_tokens` stays within `ModelConfig::tiny`'s `max_seq` of 64.
fn pipeline() -> Pipeline {
    let vocab_tables: Vec<Table> = (0..23).map(|s| table(s, 4, 4)).collect();
    Pipeline::builder()
        .vocab_from_tables(&vocab_tables)
        .vocab_size(400)
        .options(LinearizerOptions {
            max_tokens: 48,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty")
}

fn tiny_cfg(p: &Pipeline) -> ModelConfig {
    ModelConfig::tiny(p.tokenizer().vocab_size())
}

fn bits(enc: &TableEncoding) -> Vec<u32> {
    enc.states.data().iter().map(|v| v.to_bits()).collect()
}

/// Sequential ground truth: a fresh model per request, exactly what a
/// client calling `Pipeline::encode` in a loop would see.
fn sequential(
    p: &Pipeline,
    cfg: &ModelConfig,
    reqs: &[(EncoderSpec, Table, String)],
) -> Vec<Vec<u32>> {
    reqs.iter()
        .map(|(spec, t, ctx)| {
            let mut model = build_encoder(*spec, cfg).unwrap();
            bits(&p.encode(model.as_mut(), t, ctx))
        })
        .collect()
}

/// Cycles through every family at f32, plus the student at int8 — the
/// one quantized spec the registry serves.
fn spec_for(i: u64) -> EncoderSpec {
    let n = ModelKind::ALL.len();
    match (i as usize) % (n + 1) {
        j if j < n => EncoderSpec::f32(ModelKind::ALL[j]),
        _ => EncoderSpec::int8(ModelKind::RowStudent),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `encode_batch` == sequential `encode`, bit for bit, over random
    /// table shapes and batch sizes.
    #[test]
    fn encode_batch_matches_sequential(
        seed in 0u64..1000,
        n_rows in 1usize..4,
        n_cols in 1usize..4,
        batch in 1usize..7,
    ) {
        let p = pipeline();
        let cfg = tiny_cfg(&p);
        let reqs: Vec<(EncoderSpec, Table, String)> = (0..batch as u64)
            .map(|i| {
                (
                    EncoderSpec::f32(ModelKind::Bert),
                    table(seed + i, n_rows, n_cols),
                    format!("q {i}"),
                )
            })
            .collect();
        let expected = sequential(&p, &cfg, &reqs);

        let mut model = build_encoder(EncoderSpec::f32(ModelKind::Bert), &cfg).unwrap();
        let batch_reqs: Vec<EncodeRequest> = reqs
            .iter()
            .map(|(_, t, ctx)| EncodeRequest { table: t.clone(), context: ctx.clone() })
            .collect();
        let got = p.encode_batch(model.as_mut(), &batch_reqs).unwrap();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(&bits(g), e);
        }
    }

    /// The full service — batcher, buckets, replicas — reproduces
    /// sequential `encode` bit-exactly at every worker count and batch
    /// size, across model families.
    #[test]
    fn service_matches_sequential(
        seed in 0u64..1000,
        n_rows in 1usize..4,
        n_cols in 1usize..4,
        batch in 1usize..9,
        workers_pick in 0usize..2,
        max_batch_pick in 0usize..3,
    ) {
        let n_workers = [1usize, 4][workers_pick];
        let max_batch = [1usize, 3, 8][max_batch_pick];
        let p = pipeline();
        let cfg = tiny_cfg(&p);
        let reqs: Vec<(EncoderSpec, Table, String)> = (0..batch as u64)
            .map(|i| (spec_for(i), table(seed + i, n_rows, n_cols), format!("q {i}")))
            .collect();
        let expected = sequential(&p, &cfg, &reqs);

        let service = EmbeddingService::start(
            pipeline(),
            ServeConfig {
                max_batch,
                max_wait: Duration::from_millis(1),
                n_workers,
                cache_bytes: 0, // cache off: every request must hit the batch path
                queue_cap: 0,
                model_config: Some(cfg),
                ..ServeConfig::default()
            },
            ntr_obs::Obs::disabled(),
        )
        .expect("spawn service");
        let handle = service.handle();
        // Submit everything before receiving anything, so requests
        // actually coalesce into multi-request batches.
        let rxs: Vec<_> = reqs
            .iter()
            .map(|(spec, t, ctx)| {
                handle.submit(ServeRequest::with_spec(*spec, t.clone(), ctx.clone()))
            })
            .collect();
        for (rx, e) in rxs.into_iter().zip(&expected) {
            let reply = rx.recv().unwrap().unwrap();
            prop_assert!(!reply.cached);
            prop_assert_eq!(&bits(&reply.encoding), e);
        }
        drop(handle);
        let stats = service.shutdown();
        prop_assert_eq!(stats.requests, batch as u64);
        prop_assert_eq!(stats.errors, 0);
        prop_assert!(stats.batches >= 1);
    }
}

/// Duplicate content is answered from the cache: same bits, shared
/// storage, and hit/miss counters that add up.
#[test]
fn cache_returns_identical_encoding() {
    let p = pipeline();
    let cfg = tiny_cfg(&p);
    let service = EmbeddingService::start(
        pipeline(),
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            n_workers: 2,
            cache_bytes: 32 << 20,
            queue_cap: 0,
            model_config: Some(cfg),
            ..ServeConfig::default()
        },
        ntr_obs::Obs::disabled(),
    )
    .expect("spawn service");
    let handle = service.handle();
    let req = || ServeRequest::new(ModelKind::Tapas, table(5, 3, 2), "same question");

    let first = handle.submit(req()).recv().unwrap().unwrap();
    assert!(!first.cached, "first submission must miss");
    let second = handle.submit(req()).recv().unwrap().unwrap();
    assert!(second.cached, "identical content must hit the cache");
    assert!(
        std::sync::Arc::ptr_eq(&first.encoding, &second.encoding),
        "cache hits share the stored encoding"
    );
    assert_eq!(bits(&first.encoding), bits(&second.encoding));

    // Different content must miss.
    let other = handle
        .submit(ServeRequest::new(
            ModelKind::Tapas,
            table(5, 3, 2),
            "different question",
        ))
        .recv()
        .unwrap()
        .unwrap();
    assert!(!other.cached);

    drop(handle);
    let stats = service.shutdown();
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 2);
    assert_eq!(stats.cache.entries, 2);
}

/// Invalid requests come back as typed errors on the response channel —
/// the service never panics and other requests in the batch still answer.
#[test]
fn errors_are_typed_and_isolated() {
    // max_tokens so small that no data row fits -> TableTooLarge.
    let vocab_tables: Vec<Table> = (0..23).map(|s| table(s, 4, 4)).collect();
    let p = Pipeline::builder()
        .vocab_from_tables(&vocab_tables)
        .vocab_size(400)
        .options(LinearizerOptions {
            max_tokens: 3,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty");
    let cfg = ModelConfig::tiny(p.tokenizer().vocab_size());
    let service = EmbeddingService::start(
        p,
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            n_workers: 2,
            cache_bytes: 0,
            queue_cap: 0,
            model_config: Some(cfg),
            ..ServeConfig::default()
        },
        ntr_obs::Obs::disabled(),
    )
    .expect("spawn service");
    let handle = service.handle();
    // A huge table (every row overflows) and an empty table (header
    // skeleton is valid) submitted together: one typed error, one success.
    let bad = handle.submit(ServeRequest::new(ModelKind::Bert, table(1, 3, 3), ""));
    let good = handle.submit(ServeRequest::new(ModelKind::Bert, table(2, 0, 2), ""));
    match bad.recv().unwrap() {
        Err(EncodeError::TableTooLarge { max_tokens, .. }) => assert_eq!(max_tokens, 3),
        Err(e) => panic!("expected TableTooLarge, got {e}"),
        Ok(_) => panic!("expected TableTooLarge, got a successful encoding"),
    }
    assert!(
        good.recv().unwrap().is_ok(),
        "valid request in the same batch must still answer"
    );

    drop(handle);
    let stats = service.shutdown();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 1);
}

/// `Pipeline::encode_batch` rejects a model that cannot embed the
/// tokenizer's ids with `BadModelChoice` instead of panicking.
#[test]
fn encode_batch_rejects_undersized_model() {
    let p = pipeline();
    let mut small =
        build_encoder(EncoderSpec::f32(ModelKind::Bert), &ModelConfig::tiny(8)).unwrap();
    let req = EncodeRequest {
        table: table(0, 2, 2),
        context: String::new(),
    };
    match p.encode_batch(small.as_mut(), std::slice::from_ref(&req)) {
        Err(EncodeError::BadModelChoice { .. }) => {}
        Err(e) => panic!("expected BadModelChoice, got {e}"),
        Ok(_) => panic!("expected BadModelChoice, got successful encodings"),
    }
}
