//! Overload drill: drive more concurrent requests than the admission
//! queue allows and check the shed policy end to end — excess requests get
//! an immediate typed `Overloaded` rejection, no connection is ever
//! dropped, the shed counter is exact and monotonic across waves, and the
//! server serves normally once the burst passes.
//!
//! Determinism comes from the service's accounting: `queue_depth` rises at
//! admission and falls only when a batch flushes. With `queue_cap = 2`,
//! `max_batch` large, and a `max_wait` much longer than it takes to land
//! the whole wave, exactly 2 requests of each wave are admitted and the
//! rest shed — no raciness in the counts.

use ntr::Pipeline;
use ntr_serve::json::{self, Json};
use ntr_serve::{ServeConfig, Server, ServerConfig};
use ntr_table::{LinearizerOptions, Table};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const WAVE: usize = 8;
const QUEUE_CAP: usize = 2;

fn sample() -> Table {
    Table::from_strings(
        "countries",
        &["Country", "Capital"],
        &[&["France", "Paris"], &["Japan", "Tokyo"]],
    )
}

fn start_server() -> Server {
    let pipeline = Pipeline::builder()
        .vocab_from_tables(&[sample()])
        .vocab_size(300)
        .options(LinearizerOptions {
            max_tokens: 48,
            ..Default::default()
        })
        .build()
        .expect("vocab is non-empty");
    let cfg = ServeConfig {
        max_batch: 64,                        // never flushes on size
        max_wait: Duration::from_millis(400), // the admission window
        n_workers: 1,
        cache_bytes: 0, // cache off: hits would bypass admission
        queue_cap: QUEUE_CAP,
        model_config: Some(ntr_models::ModelConfig::tiny(
            pipeline.tokenizer().vocab_size(),
        )),
        ..ServeConfig::default()
    };
    Server::start_with(
        pipeline,
        cfg,
        ServerConfig::default(),
        0,
        ntr_obs::Obs::disabled(),
    )
    .expect("bind ephemeral port")
}

fn request(id: u64) -> String {
    format!(
        r#"{{"id": {id}, "model": "bert", "context": "wave {id}", "columns": ["Country", "Capital"], "rows": [["France", "Paris"]]}}"#
    )
}

/// Opens WAVE connections, fires one request on each, reads one response
/// from each. Returns (ok_count, shed_count); panics on a dropped
/// connection or any response that is neither a success nor `Overloaded`.
fn run_wave(addr: std::net::SocketAddr, base_id: u64) -> (usize, usize) {
    let conns: Vec<TcpStream> = (0..WAVE)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(30)))
                .expect("read timeout");
            s
        })
        .collect();
    for (i, conn) in conns.iter().enumerate() {
        (&mut &*conn)
            .write_all(format!("{}\n", request(base_id + i as u64)).as_bytes())
            .expect("write request");
    }

    let (mut ok, mut shed) = (0, 0);
    for (i, conn) in conns.into_iter().enumerate() {
        let mut reader = BufReader::new(conn);
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read response");
        assert!(
            !resp.is_empty(),
            "connection {i} was dropped instead of answered"
        );
        let doc = json::parse(resp.trim()).expect("valid JSON response");
        assert_eq!(
            doc.get("id").and_then(Json::as_u64),
            Some(base_id + i as u64),
            "response echoes the request id"
        );
        match doc.get("ok") {
            Some(&Json::Bool(true)) => ok += 1,
            Some(&Json::Bool(false)) => {
                let err = doc.get("error").expect("typed error");
                assert_eq!(
                    err.get("kind").and_then(Json::as_str),
                    Some("Overloaded"),
                    "the only rejection under overload is Overloaded: {resp}"
                );
                // The rejection tells the client how full the queue was
                // and that retrying is safe.
                let msg = err
                    .get("message")
                    .and_then(Json::as_str)
                    .expect("error message");
                assert!(
                    msg.contains(&format!("/{QUEUE_CAP}")) && msg.contains("retry"),
                    "shed message names the queue and advises retry: {msg}"
                );
                shed += 1;
            }
            other => panic!("response {i} has no ok field: {other:?}"),
        }
    }
    (ok, shed)
}

#[test]
fn overload_sheds_exactly_and_recovers() {
    let server = start_server();
    let addr = server.addr();

    // Wave 1: 8 requests against a queue of 2 inside one flush window.
    let (ok1, shed1) = run_wave(addr, 100);
    assert_eq!(ok1, QUEUE_CAP, "wave 1 admits exactly queue_cap requests");
    assert_eq!(shed1, WAVE - QUEUE_CAP, "wave 1 sheds the rest");

    // Wave 2: the queue drained with wave 1's flush; the same policy
    // applies again and the shed counter keeps climbing — it never resets.
    let (ok2, shed2) = run_wave(addr, 200);
    assert_eq!(ok2, QUEUE_CAP, "wave 2 admits exactly queue_cap requests");
    assert_eq!(shed2, WAVE - QUEUE_CAP, "wave 2 sheds the rest");

    // After the bursts: a lone request sails through.
    let calm = TcpStream::connect(addr).expect("connect");
    calm.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    (&mut &calm)
        .write_all(format!("{}\n", request(300)).as_bytes())
        .expect("write request");
    let mut reader = BufReader::new(&calm);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    let doc = json::parse(resp.trim()).expect("valid JSON");
    assert_eq!(
        doc.get("ok"),
        Some(&Json::Bool(true)),
        "server serves normally after the overload passes"
    );
    drop(reader);
    drop(calm);

    server.stop();
    let stats = server.wait();
    // Exact, monotonic accounting: the server-side shed counter equals the
    // client-observed rejections across both waves.
    assert_eq!(stats.service.shed, (shed1 + shed2) as u64);
    // `requests` counts every submission, shed ones included.
    assert_eq!(stats.service.requests, (2 * WAVE + 1) as u64);
    // Shedding is per-request, never per-connection.
    assert_eq!(stats.event_loop.conns_accepted, (2 * WAVE + 1) as u64);
    assert_eq!(stats.event_loop.conns_rejected, 0);
    assert_eq!(stats.event_loop.accept_errors, 0);
}
