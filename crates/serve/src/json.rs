//! A minimal JSON value type with a recursive-descent parser and a
//! writer — just enough for the NDJSON wire protocol, std-only by
//! design (the whole workspace is dependency-free).
//!
//! Numbers are kept as `f64`; object key order is preserved (`Vec` of
//! pairs, not a map) so responses serialize deterministically.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Deepest accepted array/object nesting. The parser is recursive
/// descent, so without a bound a hostile line of `[[[[…` converts input
/// bytes into stack frames and aborts the process; real requests nest 3
/// levels (`rows` → row → cell).
pub const MAX_DEPTH: usize = 128;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogates are replaced, not paired — the wire
                            // protocol only carries table text.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        raw.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {raw:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"id": 3, "ok": true, "rows": [["a", "b"], []], "x": null}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        let rows = v.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].as_arr().unwrap()[1].as_str(), Some("b"));
        assert!(rows[1].as_arr().unwrap().is_empty());
        assert_eq!(v.get("x"), Some(&Json::Null));
    }

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"ab"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Just inside the limit parses; one past it errors instead of
        // overflowing the stack.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
        // Hostile case: a long unclosed prefix must also error cheaply.
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(parse(&obj_bomb).is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("-2.5e2").unwrap().as_f64(), Some(-250.0));
        assert_eq!(parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
