//! Dependency-free readiness polling: `epoll` on linux, `poll(2)` on
//! other unix — the substrate of the event-loop server (and of the
//! `loadgen` bench client).
//!
//! The workspace is crate-dependency-free by design, so instead of `libc`
//! or `mio` this module declares the three syscall wrappers it needs as
//! `extern "C"` items; the symbols resolve from the C library every Rust
//! binary on unix already links through `std`. The surface is the minimal
//! level-triggered readiness API the server needs:
//!
//! * [`Poller::register`] / [`Poller::modify`] / [`Poller::deregister`]
//!   associate a raw fd with a caller-chosen `usize` token and an
//!   [`Interest`] (readable / writable);
//! * [`Poller::wait`] blocks until readiness or a timeout and fills a
//!   caller-owned event buffer (no allocation per tick);
//! * [`Waker`] is a cloneable, thread-safe handle that makes `wait`
//!   return early — a `UnixStream` self-pipe registered like any other
//!   fd, so worker threads can hand completions to the loop.
//!
//! Both backends are level-triggered: a fd with buffered readable bytes
//! keeps reporting readable, which lets the server cap per-tick work per
//! connection (fairness) without losing wakeups.

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// What readiness a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Report when the fd is readable (or closed by the peer).
    pub readable: bool,
    /// Report when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// Readable (includes EOF — a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer hung up or the fd errored; the connection is dead either way.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw `epoll` bindings (no `libc` crate; symbols come from the C
    //! library `std` links).

    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// `struct epoll_event`; packed on x86-64 exactly as the kernel ABI
    /// demands (and unpacked everywhere else).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub struct Backend {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Backend {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms = match timeout {
                // Round up so a 100µs deadline does not busy-spin at 0ms.
                Some(d) => i32::try_from(d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128))
                    .unwrap_or(i32::MAX),
                None => -1,
            };
            let n = loop {
                let ret = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        timeout_ms,
                    )
                };
                match check(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for raw in &self.buf[..n] {
                let (events, data) = (raw.events, raw.data);
                out.push(Event {
                    token: data as usize,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable `poll(2)` fallback for non-linux unix.

    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    pub struct Backend {
        fds: Vec<PollFd>,
        tokens: Vec<usize>,
    }

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.readable {
            m |= POLLIN;
        }
        if interest.writable {
            m |= POLLOUT;
        }
        m
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Ok(Backend {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        fn position(&self, fd: RawFd) -> io::Result<usize> {
            self.fds
                .iter()
                .position(|p| p.fd == fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            if self.position(fd).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.fds.push(PollFd {
                fd,
                events: mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let i = self.position(fd)?;
            self.fds[i].events = mask(interest);
            self.tokens[i] = token;
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self.position(fd)?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms = match timeout {
                // Round up so a sub-millisecond deadline does not busy-spin.
                Some(d) => i32::try_from(d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128))
                    .unwrap_or(i32::MAX),
                None => -1,
            };
            let n = loop {
                let ret = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u64, timeout_ms) };
                if ret >= 0 {
                    break ret as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (p, &token) in self.fds.iter().zip(&self.tokens) {
                let r = p.revents;
                if r != 0 {
                    out.push(Event {
                        token,
                        readable: r & (POLLIN | POLLHUP) != 0,
                        writable: r & POLLOUT != 0,
                        hangup: r & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

/// A level-triggered readiness poller over raw fds.
pub struct Poller {
    backend: sys::Backend,
}

impl Poller {
    /// Creates an empty poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: sys::Backend::new()?,
        })
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.backend.register(fd, token, interest)
    }

    /// Changes the interest (and token) of a watched fd.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.backend.modify(fd, token, interest)
    }

    /// Stops watching `fd`.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.backend.deregister(fd)
    }

    /// Blocks until readiness, wake-up, or `timeout`; appends events to
    /// `out` (which the caller should clear between ticks).
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.backend.wait(out, timeout)
    }
}

/// Wakes a [`Poller`] from another thread: a nonblocking `UnixStream`
/// self-pipe. Register [`WakeReceiver::fd`] with the poller; any clone of
/// the [`Waker`] end makes `wait` return.
pub struct Waker {
    tx: std::os::unix::net::UnixStream,
}

impl Clone for Waker {
    fn clone(&self) -> Self {
        Waker {
            tx: self.tx.try_clone().expect("clone waker stream"),
        }
    }
}

impl Waker {
    /// Makes the paired poller's `wait` return. A full pipe already wakes
    /// the receiver, so `WouldBlock` is success.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The poller-side end of a [`Waker`] pair.
pub struct WakeReceiver {
    rx: std::os::unix::net::UnixStream,
}

impl WakeReceiver {
    /// The fd to register (readable interest) with the poller.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Drains pending wake bytes so level-triggered polling goes quiet.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// Creates a connected waker pair (both ends nonblocking).
pub fn waker() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn waker_unblocks_wait() {
        let mut poller = Poller::new().unwrap();
        let (wake, rx) = waker().unwrap();
        poller.register(rx.fd(), 7, Interest::READ).unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            wake.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        rx.drain();
        t.join().unwrap();
    }

    #[test]
    fn wait_times_out_without_events() {
        let mut poller = Poller::new().unwrap();
        let (_wake, rx) = waker().unwrap();
        poller.register(rx.fd(), 1, Interest::READ).unwrap();
        let mut events = Vec::new();
        let t0 = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(25)))
            .unwrap();
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn tcp_readable_and_writable_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 2, Interest::BOTH)
            .unwrap();

        // A fresh socket with an empty send buffer is writable, not readable.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 2).expect("server event");
        assert!(ev.writable && !ev.readable);

        // After the client writes, readable readiness appears.
        (&client).write_all(b"hello\n").unwrap();
        let mut events = Vec::new();
        poller
            .modify(server.as_raw_fd(), 2, Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        let mut buf = [0u8; 16];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello\n");

        // Peer close reports readable (EOF) and eventually hangup.
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        poller.deregister(server.as_raw_fd()).unwrap();
    }
}
