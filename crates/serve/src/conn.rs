//! Per-connection read/write state machine for the event-loop server:
//! partial-read NDJSON framing, bounded buffers, and the bookkeeping the
//! loop's fairness and timeout policies decide from.
//!
//! A [`Conn`] never blocks: the server calls [`Conn::fill`] when the
//! socket reports readable, pulls complete frames with
//! [`Conn::next_frame`] (at most as many as the per-connection in-flight
//! cap allows), queues response lines with [`Conn::queue_write`], and
//! flushes with [`Conn::flush`] when the socket reports writable.
//!
//! # Bounded memory
//!
//! The read buffer never holds more than `max_line_bytes` + one read
//! chunk: a line that grows past the limit flips the connection into
//! *discard mode* — the buffered prefix is dropped, one
//! [`Frame::Oversized`] is reported (the server answers it with a typed
//! `LineTooLong` error), and every byte up to the next newline is
//! consumed without being stored. The write buffer is bounded by
//! `max_write_buf`; when a client stops reading long enough for it to
//! fill, the server stops reading from that client (backpressure) and
//! eventually closes it (slow-consumer timeout).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Read syscall granularity; also the slack allowed above
/// `max_line_bytes` in the read buffer.
pub(crate) const READ_CHUNK: usize = 8 << 10;

/// Per-connection resource limits (the server's backpressure tiers).
#[derive(Debug, Clone, Copy)]
pub struct ConnLimits {
    /// Longest accepted request line, in bytes; longer lines are answered
    /// with a `LineTooLong` error and discarded without buffering.
    pub max_line_bytes: usize,
    /// Requests a single connection may have in flight (submitted,
    /// response not yet queued); further frames wait in the read buffer.
    pub max_inflight: usize,
    /// Response bytes buffered for a client before the server stops
    /// reading from it.
    pub max_write_buf: usize,
    /// A connection making no read/write progress for this long is
    /// closed (idle *or* stalled-writer *or* unread-response).
    pub idle_timeout: Duration,
}

impl Default for ConnLimits {
    fn default() -> Self {
        ConnLimits {
            max_line_bytes: 1 << 20,
            max_inflight: 32,
            max_write_buf: 1 << 20,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// One unit pulled out of the read buffer.
#[derive(Debug)]
pub enum Frame {
    /// A complete newline-terminated line (newline stripped, may be
    /// empty or non-UTF-8 — the wire layer decides).
    Line(Vec<u8>),
    /// A line exceeded `max_line_bytes`; `buffered` bytes were dropped
    /// and the rest of the line is being discarded unbuffered.
    Oversized {
        /// Bytes dropped when discard mode engaged.
        buffered: usize,
    },
}

/// Why the server closed a connection (counted per-reason in metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// Client closed or reset the connection.
    ClientGone,
    /// No read/write progress within `idle_timeout`.
    IdleTimeout,
    /// Write buffer stayed full past `idle_timeout` (client not reading).
    SlowConsumer,
    /// Read or write returned a hard I/O error.
    IoError,
    /// Server-initiated drain completed for this connection.
    Drained,
}

impl CloseReason {
    /// Stable label for metrics and trace events.
    pub fn label(self) -> &'static str {
        match self {
            CloseReason::ClientGone => "client_gone",
            CloseReason::IdleTimeout => "idle_timeout",
            CloseReason::SlowConsumer => "slow_consumer",
            CloseReason::IoError => "io_error",
            CloseReason::Drained => "drained",
        }
    }
}

/// A non-blocking connection and its framing/flow-control state.
pub struct Conn {
    pub(crate) stream: TcpStream,
    /// Buffered request bytes not yet framed.
    read_buf: Vec<u8>,
    /// How far `read_buf` has been scanned for a newline already.
    scanned: usize,
    /// Discard mode: consuming an oversized line without buffering.
    discarding: bool,
    /// Response bytes not yet accepted by the kernel.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    write_pos: usize,
    /// Requests submitted to the service, response not yet queued.
    pub(crate) inflight: usize,
    /// Last moment this connection made read or write progress.
    pub(crate) last_progress: Instant,
    /// Peer sent EOF: frame out what is buffered, then close.
    pub(crate) peer_closed: bool,
    /// Drain mode: no new frames are parsed; close once quiescent.
    pub(crate) draining: bool,
    /// Close as soon as the write buffer flushes (shutdown ack, or a
    /// connection-level rejection).
    pub(crate) close_after_flush: bool,
}

impl Conn {
    /// Wraps an accepted stream (made non-blocking here).
    pub fn new(stream: TcpStream, now: Instant) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            read_buf: Vec::new(),
            scanned: 0,
            discarding: false,
            write_buf: Vec::new(),
            write_pos: 0,
            inflight: 0,
            last_progress: now,
            peer_closed: false,
            draining: false,
            close_after_flush: false,
        })
    }

    /// Reads whatever the socket has, up to one fairness budget
    /// (`READ_CHUNK * 8` per tick) and the buffer cap. Returns the bytes
    /// read; sets [`Conn::peer_closed`] on EOF. `Err` means a hard I/O
    /// error (the caller closes the connection).
    pub fn fill(&mut self, limits: &ConnLimits, now: Instant) -> io::Result<usize> {
        let mut total = 0usize;
        let budget = READ_CHUNK * 8;
        let mut chunk = [0u8; READ_CHUNK];
        while total < budget {
            // Backpressure: never buffer more than one oversized line's
            // worth. In discard mode bytes are consumed and dropped, so
            // reading stays safe at any rate.
            if !self.discarding && self.read_buf.len() >= limits.max_line_bytes + READ_CHUNK {
                break;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    total += n;
                    if self.discarding {
                        // Keep only what follows the terminating newline.
                        if let Some(nl) = chunk[..n].iter().position(|&b| b == b'\n') {
                            self.discarding = false;
                            self.read_buf.extend_from_slice(&chunk[nl + 1..n]);
                        }
                    } else {
                        self.read_buf.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if total > 0 {
            self.last_progress = now;
        }
        Ok(total)
    }

    /// Pulls the next complete frame out of the read buffer, or detects
    /// an oversized line. Returns `None` when more bytes are needed.
    pub fn next_frame(&mut self, limits: &ConnLimits) -> Option<Frame> {
        if self.draining {
            return None;
        }
        if let Some(nl) = self.read_buf[self.scanned..]
            .iter()
            .position(|&b| b == b'\n')
        {
            let end = self.scanned + nl;
            let mut line: Vec<u8> = self.read_buf.drain(..=end).collect();
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            self.scanned = 0;
            return Some(Frame::Line(line));
        }
        self.scanned = self.read_buf.len();
        if self.read_buf.len() > limits.max_line_bytes {
            let buffered = self.read_buf.len();
            self.read_buf.clear();
            self.read_buf.shrink_to(limits.max_line_bytes.min(1 << 16));
            self.scanned = 0;
            self.discarding = true;
            return Some(Frame::Oversized { buffered });
        }
        None
    }

    /// Whether undecoded request bytes remain buffered (frames may still
    /// be parseable once in-flight slots free up).
    pub fn has_buffered_input(&self) -> bool {
        !self.draining && self.read_buf[self.scanned..].contains(&b'\n')
    }

    /// Queues one response line (caller includes the trailing newline).
    pub fn queue_write(&mut self, bytes: &[u8]) {
        self.write_buf.extend_from_slice(bytes);
    }

    /// Bytes queued but not yet written.
    pub fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Writes as much of the write buffer as the socket accepts. Returns
    /// `true` when the buffer is fully flushed.
    pub fn flush(&mut self, now: Instant) -> io::Result<bool> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.write_pos += n;
                    self.last_progress = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
            Ok(true)
        } else {
            // Reclaim the flushed prefix once it dominates the buffer.
            if self.write_pos > 64 << 10 && self.write_pos * 2 > self.write_buf.len() {
                self.write_buf.drain(..self.write_pos);
                self.write_pos = 0;
            }
            Ok(false)
        }
    }

    /// The readiness this connection currently needs. Reading pauses at
    /// the in-flight cap, when the write buffer is over its bound
    /// (backpressure), and during drain.
    pub fn interest(&self, limits: &ConnLimits) -> crate::poller::Interest {
        let want_read = !self.draining
            && !self.peer_closed
            && !self.close_after_flush
            && self.inflight < limits.max_inflight
            && self.pending_write() < limits.max_write_buf
            && (self.discarding || self.read_buf.len() < limits.max_line_bytes + READ_CHUNK);
        crate::poller::Interest {
            readable: want_read,
            writable: self.pending_write() > 0,
        }
    }

    /// Timeout check: `Some(reason)` when the connection ran out of
    /// `idle_timeout` without progress.
    pub fn timed_out(&self, limits: &ConnLimits, now: Instant) -> Option<CloseReason> {
        if now.duration_since(self.last_progress) < limits.idle_timeout {
            return None;
        }
        if self.pending_write() > 0 {
            Some(CloseReason::SlowConsumer)
        } else {
            Some(CloseReason::IdleTimeout)
        }
    }

    /// True when nothing is pending on this connection (drain can close
    /// it): no in-flight requests and nothing left to write.
    pub fn quiescent(&self) -> bool {
        self.inflight == 0 && self.pending_write() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, Conn::new(server, Instant::now()).unwrap())
    }

    fn limits() -> ConnLimits {
        ConnLimits {
            max_line_bytes: 64,
            max_inflight: 4,
            max_write_buf: 128,
            idle_timeout: Duration::from_millis(50),
        }
    }

    #[test]
    fn frames_partial_reads_and_crlf() {
        let (client, mut conn) = pair();
        let l = limits();
        (&client).write_all(b"hello").unwrap();
        std::thread::sleep(Duration::from_millis(10));
        conn.fill(&l, Instant::now()).unwrap();
        assert!(conn.next_frame(&l).is_none(), "no newline yet");
        (&client).write_all(b" world\r\nnext\n").unwrap();
        std::thread::sleep(Duration::from_millis(10));
        conn.fill(&l, Instant::now()).unwrap();
        let Some(Frame::Line(a)) = conn.next_frame(&l) else {
            panic!("expected first frame");
        };
        assert_eq!(a, b"hello world");
        let Some(Frame::Line(b)) = conn.next_frame(&l) else {
            panic!("expected second frame");
        };
        assert_eq!(b, b"next");
        assert!(conn.next_frame(&l).is_none());
    }

    #[test]
    fn oversized_line_is_discarded_with_bounded_memory() {
        let (client, mut conn) = pair();
        let l = limits();
        // 4× the limit, no newline: must flip to discard mode and never
        // buffer more than max_line_bytes + READ_CHUNK.
        let big = vec![b'x'; 256];
        (&client).write_all(&big).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        conn.fill(&l, Instant::now()).unwrap();
        let Some(Frame::Oversized { buffered }) = conn.next_frame(&l) else {
            panic!("expected oversize report");
        };
        assert!(buffered > l.max_line_bytes);
        assert!(conn.next_frame(&l).is_none());
        // The line's tail and terminator arrive; then a normal line works.
        (&client).write_all(b"yyy\n{\"ok\":1}\n").unwrap();
        std::thread::sleep(Duration::from_millis(10));
        conn.fill(&l, Instant::now()).unwrap();
        let Some(Frame::Line(line)) = conn.next_frame(&l) else {
            panic!("expected post-discard frame");
        };
        assert_eq!(line, b"{\"ok\":1}");
    }

    #[test]
    fn interest_reflects_backpressure() {
        let (_client, mut conn) = pair();
        let l = limits();
        assert!(conn.interest(&l).readable);
        conn.inflight = l.max_inflight;
        assert!(!conn.interest(&l).readable, "in-flight cap pauses reads");
        conn.inflight = 0;
        conn.queue_write(&vec![b'z'; 256]);
        assert!(
            !conn.interest(&l).readable,
            "full write buffer pauses reads"
        );
        assert!(conn.interest(&l).writable);
    }

    #[test]
    fn timeout_classifies_idle_vs_slow_consumer() {
        let (_client, mut conn) = pair();
        let l = limits();
        assert!(conn.timed_out(&l, Instant::now()).is_none());
        let later = Instant::now() + Duration::from_millis(100);
        assert_eq!(conn.timed_out(&l, later), Some(CloseReason::IdleTimeout));
        conn.queue_write(b"unread response\n");
        assert_eq!(conn.timed_out(&l, later), Some(CloseReason::SlowConsumer));
    }
}
