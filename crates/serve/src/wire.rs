//! The NDJSON wire protocol: one JSON document per line, both ways.
//!
//! Request:
//! ```json
//! {"id": 1, "model": "tapas", "context": "population by country",
//!  "columns": ["country", "population"], "rows": [["france", "67.8"]]}
//! ```
//! An optional `"timeout_ms"` field bounds the request: past that budget
//! the service answers with a typed `DeadlineExceeded` error instead of
//! the embedding.
//!
//! Control: `{"cmd": "shutdown"}` asks the server to drain and exit;
//! `{"cmd": "health"}` answers with the service self-assessment:
//! ```json
//! {"ok": true, "state": "ok", "queue_depth": 0, "queue_cap": 256,
//!  "restarts": 0, "quarantined": 0, "deadline_exceeded": 0,
//!  "replicas": [{"rebuilds": 0, "retired": false}]}
//! ```
//!
//! Success response (`embedding` is the table-level `[CLS]` vector):
//! ```json
//! {"id": 1, "ok": true, "cached": false, "seq_len": 24, "d_model": 64,
//!  "embedding": [0.12, -0.5, ...]}
//! ```
//! Error response (`error.kind` is [`EncodeError::kind`] or
//! `"BadRequest"` for malformed input):
//! ```json
//! {"id": 1, "ok": false, "error": {"kind": "TableTooLarge", "message": "..."}}
//! ```

use crate::json::{self, Json};
use crate::service::{HealthReport, ServeRequest};
use ntr::{EncodeError, ModelKind, TableEncoding};
use ntr_table::Table;
use std::time::Duration;

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// An encode request to forward to the service.
    Encode {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// What to encode.
        req: ServeRequest,
    },
    /// Graceful-shutdown control message.
    Shutdown,
    /// Health probe: answered inline with [`health_response`], never
    /// queued behind the batcher (it must work while degraded).
    Health,
}

/// A request that could not be turned into work; becomes an `ok: false`
/// response line.
#[derive(Debug, Clone)]
pub struct WireError {
    /// Correlation id, when it could at least be parsed.
    pub id: Option<u64>,
    /// Stable error kind (`EncodeError::kind` or `"BadRequest"`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

fn bad(id: Option<u64>, message: impl Into<String>) -> WireError {
    WireError {
        id,
        kind: "BadRequest",
        message: message.into(),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<WireRequest, WireError> {
    let doc = json::parse(line).map_err(|e| bad(None, format!("malformed JSON: {e}")))?;
    if let Some(cmd) = doc.get("cmd").and_then(Json::as_str) {
        return match cmd {
            "shutdown" => Ok(WireRequest::Shutdown),
            "health" => Ok(WireRequest::Health),
            other => Err(bad(None, format!("unknown cmd {other:?}"))),
        };
    }
    let id = doc.get("id").and_then(Json::as_u64);
    let Some(id) = id else {
        return Err(bad(None, "missing or non-integer \"id\""));
    };
    let model_name = doc
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(Some(id), "missing \"model\""))?;
    let kind = ModelKind::parse(model_name).ok_or(WireError {
        id: Some(id),
        kind: "BadModelChoice",
        message: format!("unknown model {model_name:?}; expected one of bert, tapas, turl, mate"),
    })?;
    let context = doc
        .get("context")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let timeout = match doc.get("timeout_ms") {
        None => None,
        Some(v) => Some(Duration::from_millis(v.as_u64().ok_or_else(|| {
            bad(Some(id), "\"timeout_ms\" must be a non-negative integer")
        })?)),
    };
    let columns: Vec<String> = doc
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad(Some(id), "missing \"columns\" array"))?
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad(Some(id), "non-string column name"))
        })
        .collect::<Result<_, _>>()?;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for row in doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad(Some(id), "missing \"rows\" array"))?
    {
        let cells = row
            .as_arr()
            .ok_or_else(|| bad(Some(id), "row is not an array"))?;
        if cells.len() != columns.len() {
            return Err(bad(
                Some(id),
                format!(
                    "row has {} cells but there are {} columns",
                    cells.len(),
                    columns.len()
                ),
            ));
        }
        rows.push(
            cells
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad(Some(id), "non-string cell"))
                })
                .collect::<Result<_, _>>()?,
        );
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let row_refs: Vec<Vec<&str>> = rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let row_slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
    // The wire protocol has no table-id field, and the id is part of the
    // cache key — a constant here lets identical content from different
    // requests (and different connections) share one cache entry.
    let table = Table::from_strings("wire", &col_refs, &row_slices);
    Ok(WireRequest::Encode {
        id,
        req: ServeRequest {
            kind,
            table,
            context,
            timeout,
        },
    })
}

/// Renders the health-verb response line. `state` is passed separately so
/// the server layer can report `"draining"` during shutdown without the
/// service knowing about it.
pub fn health_response(state: &str, h: &HealthReport) -> String {
    let mut out = String::with_capacity(160);
    out.push_str("{\"ok\": true, \"state\": ");
    json::write_str(&mut out, state);
    out.push_str(&format!(
        ", \"queue_depth\": {}, \"queue_cap\": {}, \"restarts\": {}, \
         \"quarantined\": {}, \"deadline_exceeded\": {}, \"replicas\": [",
        h.queue_depth, h.queue_cap, h.restarts, h.quarantined, h.deadline_exceeded
    ));
    for (i, r) in h.replicas.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"rebuilds\": {}, \"retired\": {}}}",
            r.rebuilds, r.retired
        ));
    }
    out.push_str("]}");
    out
}

/// Renders a success response line (no trailing newline).
pub fn ok_response(id: u64, enc: &TableEncoding, cached: bool) -> String {
    let emb = enc.table_embedding();
    let mut out = String::with_capacity(32 + emb.data().len() * 12);
    out.push_str(&format!(
        "{{\"id\": {id}, \"ok\": true, \"cached\": {cached}, \"seq_len\": {}, \"d_model\": {}, \"embedding\": [",
        enc.encoded.len(),
        emb.data().len(),
    ));
    for (i, v) in emb.data().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        // Rust's shortest-round-trip float formatting: parses back to the
        // identical f32 bit pattern.
        out.push_str(&format!("{v}"));
    }
    out.push_str("]}");
    out
}

/// Renders the typed rejection for a line that exceeded the server's
/// `max_line_bytes` (the line is discarded unbuffered, so no id could be
/// parsed; the connection stays open).
pub fn line_too_long_response(buffered: usize, max_line_bytes: usize) -> String {
    err_response(&WireError {
        id: None,
        kind: "LineTooLong",
        message: format!(
            "request line exceeded {max_line_bytes} bytes (got at least {buffered}); \
             the line was discarded"
        ),
    })
}

/// Renders the connection-level rejection sent (then followed by close)
/// when the server is at its `max_conns` limit.
pub fn conn_limit_response(max_conns: usize) -> String {
    err_response(&WireError {
        id: None,
        kind: "Overloaded",
        message: format!("connection limit reached ({max_conns}); retry after backoff"),
    })
}

/// Renders an error response line from a service-level [`EncodeError`].
pub fn encode_err_response(id: u64, e: &EncodeError) -> String {
    err_response(&WireError {
        id: Some(id),
        kind: e.kind(),
        message: e.to_string(),
    })
}

/// Renders an error response line.
pub fn err_response(e: &WireError) -> String {
    let mut out = String::new();
    out.push_str("{\"id\": ");
    match e.id {
        Some(id) => out.push_str(&id.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"ok\": false, \"error\": {\"kind\": ");
    json::write_str(&mut out, e.kind);
    out.push_str(", \"message\": ");
    json::write_str(&mut out, &e.message);
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_encode_request() {
        let line = r#"{"id": 7, "model": "tapas", "context": "pop",
                       "columns": ["a", "b"], "rows": [["1", "2"], ["3", "4"]]}"#;
        let WireRequest::Encode { id, req } = parse_request(line).unwrap() else {
            panic!("expected encode");
        };
        assert_eq!(id, 7);
        assert_eq!(req.kind, ModelKind::Tapas);
        assert_eq!(req.context, "pop");
        assert_eq!(req.table.n_rows(), 2);
        assert_eq!(req.table.n_cols(), 2);
        assert_eq!(req.table.cell(1, 0).raw, "3");
    }

    #[test]
    fn parses_shutdown() {
        assert!(matches!(
            parse_request(r#"{"cmd": "shutdown"}"#).unwrap(),
            WireRequest::Shutdown
        ));
    }

    #[test]
    fn parses_health() {
        assert!(matches!(
            parse_request(r#"{"cmd": "health"}"#).unwrap(),
            WireRequest::Health
        ));
    }

    #[test]
    fn parses_timeout_ms() {
        let line = r#"{"id": 1, "model": "bert", "timeout_ms": 250,
                       "columns": ["a"], "rows": [["1"]]}"#;
        let WireRequest::Encode { req, .. } = parse_request(line).unwrap() else {
            panic!("expected encode");
        };
        assert_eq!(req.timeout, Some(Duration::from_millis(250)));
        // Absent field means "no per-request deadline".
        let line = r#"{"id": 1, "model": "bert", "columns": ["a"], "rows": [["1"]]}"#;
        let WireRequest::Encode { req, .. } = parse_request(line).unwrap() else {
            panic!("expected encode");
        };
        assert_eq!(req.timeout, None);
        // A malformed budget is a typed BadRequest, not a silent default.
        let e = parse_request(
            r#"{"id": 9, "model": "bert", "timeout_ms": "soon", "columns": ["a"], "rows": [["1"]]}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, "BadRequest");
        assert_eq!(e.id, Some(9));
    }

    #[test]
    fn health_response_shape() {
        use crate::service::ReplicaStatus;
        let line = health_response(
            "degraded",
            &HealthReport {
                state: "degraded",
                queue_depth: 3,
                queue_cap: 256,
                restarts: 1,
                quarantined: 2,
                deadline_exceeded: 4,
                replicas: vec![
                    ReplicaStatus {
                        rebuilds: 2,
                        retired: false,
                    },
                    ReplicaStatus {
                        rebuilds: 3,
                        retired: true,
                    },
                ],
            },
        );
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("state").and_then(Json::as_str), Some("degraded"));
        assert_eq!(doc.get("queue_cap").and_then(Json::as_u64), Some(256));
        let replicas = doc.get("replicas").and_then(Json::as_arr).unwrap();
        assert_eq!(replicas.len(), 2);
        assert_eq!(replicas[1].get("retired"), Some(&Json::Bool(true)));
        assert_eq!(replicas[1].get("rebuilds").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn rejects_bad_requests() {
        // (line, expected kind, expect id echoed)
        let cases = [
            ("not json", "BadRequest", false),
            (
                r#"{"model": "bert", "columns": [], "rows": []}"#,
                "BadRequest",
                false,
            ),
            (
                r#"{"id": 1, "columns": [], "rows": []}"#,
                "BadRequest",
                true,
            ),
            (
                r#"{"id": 2, "model": "gpt", "columns": [], "rows": []}"#,
                "BadModelChoice",
                true,
            ),
            (
                r#"{"id": 3, "model": "bert", "columns": ["a"], "rows": [["1", "2"]]}"#,
                "BadRequest",
                true,
            ),
        ];
        for (line, kind, has_id) in cases {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.kind, kind, "{line}");
            assert_eq!(e.id.is_some(), has_id, "{line}");
        }
    }

    #[test]
    fn error_response_shape() {
        let line = err_response(&WireError {
            id: Some(4),
            kind: "TableTooLarge",
            message: "no data row fits".into(),
        });
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&crate::json::Json::Bool(false)));
        let err = doc.get("error").unwrap();
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("TableTooLarge")
        );
    }
}
