//! The NDJSON wire protocol: one JSON document per line, both ways.
//!
//! Request:
//! ```json
//! {"id": 1, "model": "tapas", "context": "population by country",
//!  "columns": ["country", "population"], "rows": [["france", "67.8"]]}
//! ```
//! An optional `"timeout_ms"` field bounds the request: past that budget
//! the service answers with a typed `DeadlineExceeded` error instead of
//! the embedding. An optional `"precision"` field (`"f32"` default, or
//! `"int8"` — only valid with `"model": "row-student"`) selects the
//! serving precision; an invalid combination is a typed `BadModelChoice`
//! at parse time.
//!
//! Control: `{"cmd": "shutdown"}` asks the server to drain and exit;
//! `{"cmd": "health"}` answers with the service self-assessment:
//! ```json
//! {"ok": true, "state": "ok", "queue_depth": 0, "queue_cap": 256,
//!  "restarts": 0, "quarantined": 0, "deadline_exceeded": 0,
//!  "replicas": [{"rebuilds": 0, "retired": false}]}
//! ```
//!
//! Search (requires the server to have been started with an index; the
//! table body is encoded through the same pipeline as `encode`, then the
//! embedding is looked up in the ANN index):
//! ```json
//! {"cmd": "search", "id": 2, "k": 10, "nprobe": 4,
//!  "columns": ["country", "population"], "rows": [["france", "67.8"]]}
//! ```
//! `k` defaults to 10; `nprobe` defaults to the index's own default;
//! `model` is optional and falls back to the model the index was built
//! with. Success response:
//! ```json
//! {"id": 2, "ok": true, "cached": false, "k": 10, "scanned": 1287,
//!  "results": [{"rank": 0, "table_id": "film_12", "distance": 0.42}]}
//! ```
//! Typed search failures reuse the error shape below with kinds
//! `IndexNotLoaded` (no index on this server) and `BadK` (`k` outside
//! `1..=len`); encode-stage failures (deadline, degraded, overload …)
//! surface exactly as they do for `encode`.
//!
//! Success response (`embedding` is the table-level `[CLS]` vector):
//! ```json
//! {"id": 1, "ok": true, "cached": false, "seq_len": 24, "d_model": 64,
//!  "embedding": [0.12, -0.5, ...]}
//! ```
//! Error response (`error.kind` is [`EncodeError::kind`] or
//! `"BadRequest"` for malformed input):
//! ```json
//! {"id": 1, "ok": false, "error": {"kind": "TableTooLarge", "message": "..."}}
//! ```

use crate::json::{self, Json};
use crate::service::{HealthReport, ServeRequest};
use ntr::{EncodeError, EncoderSpec, ModelKind, QuantSpec, TableEncoding};
use ntr_table::Table;
use std::time::Duration;

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// An encode request to forward to the service.
    Encode {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// What to encode.
        req: ServeRequest,
    },
    /// A `{"cmd": "search"}` ANN lookup: encode the body table, then
    /// search the loaded index with its embedding.
    Search(SearchRequest),
    /// Graceful-shutdown control message.
    Shutdown,
    /// Health probe: answered inline with [`health_response`], never
    /// queued behind the batcher (it must work while degraded).
    Health,
}

/// A parsed search verb.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Neighbors requested (default 10).
    pub k: usize,
    /// Inverted lists to probe; `None` uses the index default.
    pub nprobe: Option<usize>,
    /// Encoder override; `None` falls back to the index's build model.
    pub model: Option<ModelKind>,
    /// Precision override; `None` falls back to the precision the index
    /// was built at (f32 for indexes that predate the stamp).
    pub precision: Option<QuantSpec>,
    /// The query table.
    pub table: Table,
    /// Optional context string (caption / question).
    pub context: String,
    /// Optional per-request deadline, honored by the encode stage.
    pub timeout: Option<Duration>,
}

/// A request that could not be turned into work; becomes an `ok: false`
/// response line.
#[derive(Debug, Clone)]
pub struct WireError {
    /// Correlation id, when it could at least be parsed.
    pub id: Option<u64>,
    /// Stable error kind (`EncodeError::kind` or `"BadRequest"`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

fn bad(id: Option<u64>, message: impl Into<String>) -> WireError {
    WireError {
        id,
        kind: "BadRequest",
        message: message.into(),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<WireRequest, WireError> {
    let doc = json::parse(line).map_err(|e| bad(None, format!("malformed JSON: {e}")))?;
    if let Some(cmd) = doc.get("cmd").and_then(Json::as_str) {
        return match cmd {
            "shutdown" => Ok(WireRequest::Shutdown),
            "health" => Ok(WireRequest::Health),
            "search" => parse_search(&doc),
            other => Err(bad(None, format!("unknown cmd {other:?}"))),
        };
    }
    let id = doc.get("id").and_then(Json::as_u64);
    let Some(id) = id else {
        return Err(bad(None, "missing or non-integer \"id\""));
    };
    let model_name = doc
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(Some(id), "missing \"model\""))?;
    let kind = parse_model(model_name, id)?;
    let precision = parse_precision(&doc, id)?.unwrap_or(QuantSpec::F32);
    let spec = EncoderSpec::new(kind, precision);
    // Fail the family/precision mismatch at parse time: a typed line now
    // beats a queued request that the service would reject anyway.
    spec.validate().map_err(|e| WireError {
        id: Some(id),
        kind: e.kind(),
        message: e.to_string(),
    })?;
    let (table, context, timeout) = parse_body(&doc, id)?;
    Ok(WireRequest::Encode {
        id,
        req: ServeRequest {
            spec,
            table,
            context,
            timeout,
        },
    })
}

/// Parses the `{"cmd": "search"}` verb: same table body as `encode`, plus
/// `k` / `nprobe` knobs and an optional model override.
fn parse_search(doc: &Json) -> Result<WireRequest, WireError> {
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(None, "missing or non-integer \"id\""))?;
    let k = match doc.get("k") {
        None => 10,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad(Some(id), "\"k\" must be a non-negative integer"))?
            as usize,
    };
    let nprobe = match doc.get("nprobe") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| bad(Some(id), "\"nprobe\" must be a non-negative integer"))?
                as usize,
        ),
    };
    let model = match doc.get("model") {
        None => None,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| bad(Some(id), "\"model\" must be a string"))?;
            Some(parse_model(name, id)?)
        }
    };
    let precision = parse_precision(doc, id)?;
    let (table, context, timeout) = parse_body(doc, id)?;
    Ok(WireRequest::Search(SearchRequest {
        id,
        k,
        nprobe,
        model,
        precision,
        table,
        context,
        timeout,
    }))
}

/// One model parser for the whole system: the registry's `FromStr`, so the
/// wire error menu can never drift from the CLI's or the META stamp's.
fn parse_model(model_name: &str, id: u64) -> Result<ModelKind, WireError> {
    model_name.parse().map_err(|message| WireError {
        id: Some(id),
        kind: "BadModelChoice",
        message,
    })
}

/// Parses the optional `"precision"` field (`None` when absent).
fn parse_precision(doc: &Json, id: u64) -> Result<Option<QuantSpec>, WireError> {
    match doc.get("precision") {
        None => Ok(None),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| bad(Some(id), "\"precision\" must be a string"))?;
            name.parse().map(Some).map_err(|message| WireError {
                id: Some(id),
                kind: "BadModelChoice",
                message,
            })
        }
    }
}

/// Parses the shared request body: `context`, `timeout_ms`, `columns`,
/// `rows` → the query table.
fn parse_body(doc: &Json, id: u64) -> Result<(Table, String, Option<Duration>), WireError> {
    let context = doc
        .get("context")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let timeout = match doc.get("timeout_ms") {
        None => None,
        Some(v) => Some(Duration::from_millis(v.as_u64().ok_or_else(|| {
            bad(Some(id), "\"timeout_ms\" must be a non-negative integer")
        })?)),
    };
    let columns: Vec<String> = doc
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad(Some(id), "missing \"columns\" array"))?
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad(Some(id), "non-string column name"))
        })
        .collect::<Result<_, _>>()?;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for row in doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad(Some(id), "missing \"rows\" array"))?
    {
        let cells = row
            .as_arr()
            .ok_or_else(|| bad(Some(id), "row is not an array"))?;
        if cells.len() != columns.len() {
            return Err(bad(
                Some(id),
                format!(
                    "row has {} cells but there are {} columns",
                    cells.len(),
                    columns.len()
                ),
            ));
        }
        rows.push(
            cells
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad(Some(id), "non-string cell"))
                })
                .collect::<Result<_, _>>()?,
        );
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let row_refs: Vec<Vec<&str>> = rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let row_slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
    // The wire protocol has no table-id field, and the id is part of the
    // cache key — a constant here lets identical content from different
    // requests (and different connections) share one cache entry.
    let table = Table::from_strings("wire", &col_refs, &row_slices);
    Ok((table, context, timeout))
}

/// Renders the health-verb response line. `state` is passed separately so
/// the server layer can report `"draining"` during shutdown without the
/// service knowing about it.
pub fn health_response(state: &str, h: &HealthReport) -> String {
    let mut out = String::with_capacity(160);
    out.push_str("{\"ok\": true, \"state\": ");
    json::write_str(&mut out, state);
    out.push_str(&format!(
        ", \"queue_depth\": {}, \"queue_cap\": {}, \"restarts\": {}, \
         \"quarantined\": {}, \"deadline_exceeded\": {}, \"replicas\": [",
        h.queue_depth, h.queue_cap, h.restarts, h.quarantined, h.deadline_exceeded
    ));
    for (i, r) in h.replicas.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"rebuilds\": {}, \"retired\": {}}}",
            r.rebuilds, r.retired
        ));
    }
    out.push_str("]}");
    out
}

/// Renders a success response line (no trailing newline).
pub fn ok_response(id: u64, enc: &TableEncoding, cached: bool) -> String {
    let emb = enc.table_embedding();
    let mut out = String::with_capacity(32 + emb.data().len() * 12);
    out.push_str(&format!(
        "{{\"id\": {id}, \"ok\": true, \"cached\": {cached}, \"seq_len\": {}, \"d_model\": {}, \"embedding\": [",
        enc.encoded.len(),
        emb.data().len(),
    ));
    for (i, v) in emb.data().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        // Rust's shortest-round-trip float formatting: parses back to the
        // identical f32 bit pattern.
        out.push_str(&format!("{v}"));
    }
    out.push_str("]}");
    out
}

/// Renders a search success line: ranked `(table_id, distance)` results
/// plus the scanned-vector count (the work an exact scan would not avoid).
pub fn search_ok_response(
    id: u64,
    cached: bool,
    res: &ntr_index::SearchResult,
    store: &ntr_index::EmbeddingStore,
) -> String {
    let mut out = String::with_capacity(64 + res.hits.len() * 48);
    out.push_str(&format!(
        "{{\"id\": {id}, \"ok\": true, \"cached\": {cached}, \"k\": {}, \"scanned\": {}, \"results\": [",
        res.hits.len(),
        res.scanned,
    ));
    for (rank, (row, dist)) in res.hits.iter().enumerate() {
        if rank > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"rank\": {rank}, \"table_id\": "));
        json::write_str(&mut out, store.id(*row as usize));
        // Shortest-round-trip float formatting, as in `ok_response`.
        out.push_str(&format!(", \"distance\": {dist}}}"));
    }
    out.push_str("]}");
    out
}

/// Renders the typed rejection for a search against a server that was
/// started without an index.
pub fn index_not_loaded_response(id: u64) -> String {
    err_response(&WireError {
        id: Some(id),
        kind: "IndexNotLoaded",
        message: "no index loaded; start the server with --index DIR".into(),
    })
}

/// Renders a typed search failure from an [`ntr_index::IndexError`].
pub fn search_err_response(id: u64, e: &ntr_index::IndexError) -> String {
    err_response(&WireError {
        id: Some(id),
        kind: e.kind(),
        message: e.to_string(),
    })
}

/// Renders the typed rejection for a line that exceeded the server's
/// `max_line_bytes` (the line is discarded unbuffered, so no id could be
/// parsed; the connection stays open).
pub fn line_too_long_response(buffered: usize, max_line_bytes: usize) -> String {
    err_response(&WireError {
        id: None,
        kind: "LineTooLong",
        message: format!(
            "request line exceeded {max_line_bytes} bytes (got at least {buffered}); \
             the line was discarded"
        ),
    })
}

/// Renders the connection-level rejection sent (then followed by close)
/// when the server is at its `max_conns` limit.
pub fn conn_limit_response(max_conns: usize) -> String {
    err_response(&WireError {
        id: None,
        kind: "Overloaded",
        message: format!("connection limit reached ({max_conns}); retry after backoff"),
    })
}

/// Renders an error response line from a service-level [`EncodeError`].
pub fn encode_err_response(id: u64, e: &EncodeError) -> String {
    err_response(&WireError {
        id: Some(id),
        kind: e.kind(),
        message: e.to_string(),
    })
}

/// Renders an error response line.
pub fn err_response(e: &WireError) -> String {
    let mut out = String::new();
    out.push_str("{\"id\": ");
    match e.id {
        Some(id) => out.push_str(&id.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"ok\": false, \"error\": {\"kind\": ");
    json::write_str(&mut out, e.kind);
    out.push_str(", \"message\": ");
    json::write_str(&mut out, &e.message);
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_encode_request() {
        let line = r#"{"id": 7, "model": "tapas", "context": "pop",
                       "columns": ["a", "b"], "rows": [["1", "2"], ["3", "4"]]}"#;
        let WireRequest::Encode { id, req } = parse_request(line).unwrap() else {
            panic!("expected encode");
        };
        assert_eq!(id, 7);
        assert_eq!(req.spec, EncoderSpec::f32(ModelKind::Tapas));
        assert_eq!(req.context, "pop");
        assert_eq!(req.table.n_rows(), 2);
        assert_eq!(req.table.n_cols(), 2);
        assert_eq!(req.table.cell(1, 0).raw, "3");
    }

    #[test]
    fn parses_precision_field() {
        // Explicit int8 on the student.
        let line = r#"{"id": 1, "model": "row-student", "precision": "int8",
                       "columns": ["a"], "rows": [["1"]]}"#;
        let WireRequest::Encode { req, .. } = parse_request(line).unwrap() else {
            panic!("expected encode");
        };
        assert_eq!(req.spec, EncoderSpec::int8(ModelKind::RowStudent));
        // Absent field defaults to f32.
        let line = r#"{"id": 2, "model": "row-student", "columns": ["a"], "rows": [["1"]]}"#;
        let WireRequest::Encode { req, .. } = parse_request(line).unwrap() else {
            panic!("expected encode");
        };
        assert_eq!(req.spec.precision, QuantSpec::F32);
        // int8 on a family without an int8 path is rejected at parse time.
        let e = parse_request(
            r#"{"id": 3, "model": "tapas", "precision": "int8", "columns": ["a"], "rows": [["1"]]}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, "BadModelChoice");
        assert_eq!(e.id, Some(3));
        // Unknown precision name lists the menu.
        let e = parse_request(
            r#"{"id": 4, "model": "bert", "precision": "fp4", "columns": ["a"], "rows": [["1"]]}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, "BadModelChoice");
        assert!(e.message.contains("f32, int8"), "{}", e.message);
    }

    #[test]
    fn parses_shutdown() {
        assert!(matches!(
            parse_request(r#"{"cmd": "shutdown"}"#).unwrap(),
            WireRequest::Shutdown
        ));
    }

    #[test]
    fn parses_health() {
        assert!(matches!(
            parse_request(r#"{"cmd": "health"}"#).unwrap(),
            WireRequest::Health
        ));
    }

    #[test]
    fn parses_timeout_ms() {
        let line = r#"{"id": 1, "model": "bert", "timeout_ms": 250,
                       "columns": ["a"], "rows": [["1"]]}"#;
        let WireRequest::Encode { req, .. } = parse_request(line).unwrap() else {
            panic!("expected encode");
        };
        assert_eq!(req.timeout, Some(Duration::from_millis(250)));
        // Absent field means "no per-request deadline".
        let line = r#"{"id": 1, "model": "bert", "columns": ["a"], "rows": [["1"]]}"#;
        let WireRequest::Encode { req, .. } = parse_request(line).unwrap() else {
            panic!("expected encode");
        };
        assert_eq!(req.timeout, None);
        // A malformed budget is a typed BadRequest, not a silent default.
        let e = parse_request(
            r#"{"id": 9, "model": "bert", "timeout_ms": "soon", "columns": ["a"], "rows": [["1"]]}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, "BadRequest");
        assert_eq!(e.id, Some(9));
    }

    #[test]
    fn parses_search_request() {
        let line = r#"{"cmd": "search", "id": 5, "k": 3, "nprobe": 2, "model": "bert",
                       "columns": ["a"], "rows": [["1"]]}"#;
        let WireRequest::Search(sr) = parse_request(line).unwrap() else {
            panic!("expected search");
        };
        assert_eq!(sr.id, 5);
        assert_eq!(sr.k, 3);
        assert_eq!(sr.nprobe, Some(2));
        assert_eq!(sr.model, Some(ModelKind::Bert));
        assert_eq!(sr.precision, None);
        assert_eq!(sr.table.n_rows(), 1);

        // k defaults to 10; nprobe, model and precision fall back to the
        // index's own.
        let line = r#"{"cmd": "search", "id": 6, "columns": ["a"], "rows": [["1"]]}"#;
        let WireRequest::Search(sr) = parse_request(line).unwrap() else {
            panic!("expected search");
        };
        assert_eq!(sr.k, 10);
        assert_eq!(sr.nprobe, None);
        assert_eq!(sr.model, None);
        assert_eq!(sr.precision, None);

        // An explicit precision override parses.
        let line = r#"{"cmd": "search", "id": 11, "precision": "int8",
                       "columns": ["a"], "rows": [["1"]]}"#;
        let WireRequest::Search(sr) = parse_request(line).unwrap() else {
            panic!("expected search");
        };
        assert_eq!(sr.precision, Some(QuantSpec::Int8));

        let e = parse_request(
            r#"{"cmd": "search", "id": 7, "k": "lots", "columns": ["a"], "rows": [["1"]]}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, "BadRequest");
        assert_eq!(e.id, Some(7));

        let e =
            parse_request(r#"{"cmd": "search", "columns": ["a"], "rows": [["1"]]}"#).unwrap_err();
        assert_eq!(e.kind, "BadRequest");
        assert_eq!(e.id, None);

        let e = parse_request(
            r#"{"cmd": "search", "id": 8, "model": "gpt", "columns": ["a"], "rows": [["1"]]}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, "BadModelChoice");
    }

    #[test]
    fn search_response_shape() {
        let mut store = ntr_index::EmbeddingStore::new(2);
        store.push("t_a", &[0.0, 0.0]).unwrap();
        store.push("t_b", &[1.0, 1.0]).unwrap();
        let res = ntr_index::SearchResult {
            hits: vec![(1, 0.25), (0, 2.0)],
            scanned: 2,
        };
        let line = search_ok_response(9, true, &res, &store);
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(9));
        assert_eq!(doc.get("k").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("scanned").and_then(Json::as_u64), Some(2));
        let results = doc.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(
            results[0].get("table_id").and_then(Json::as_str),
            Some("t_b")
        );
        assert_eq!(results[0].get("rank").and_then(Json::as_u64), Some(0));
        assert_eq!(results[1].get("rank").and_then(Json::as_u64), Some(1));

        let line = index_not_loaded_response(4);
        let doc = crate::json::parse(&line).unwrap();
        let err = doc.get("error").unwrap();
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("IndexNotLoaded")
        );
    }

    #[test]
    fn health_response_shape() {
        use crate::service::ReplicaStatus;
        let line = health_response(
            "degraded",
            &HealthReport {
                state: "degraded",
                queue_depth: 3,
                queue_cap: 256,
                restarts: 1,
                quarantined: 2,
                deadline_exceeded: 4,
                replicas: vec![
                    ReplicaStatus {
                        rebuilds: 2,
                        retired: false,
                    },
                    ReplicaStatus {
                        rebuilds: 3,
                        retired: true,
                    },
                ],
            },
        );
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("state").and_then(Json::as_str), Some("degraded"));
        assert_eq!(doc.get("queue_cap").and_then(Json::as_u64), Some(256));
        let replicas = doc.get("replicas").and_then(Json::as_arr).unwrap();
        assert_eq!(replicas.len(), 2);
        assert_eq!(replicas[1].get("retired"), Some(&Json::Bool(true)));
        assert_eq!(replicas[1].get("rebuilds").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn rejects_bad_requests() {
        // (line, expected kind, expect id echoed)
        let cases = [
            ("not json", "BadRequest", false),
            (
                r#"{"model": "bert", "columns": [], "rows": []}"#,
                "BadRequest",
                false,
            ),
            (
                r#"{"id": 1, "columns": [], "rows": []}"#,
                "BadRequest",
                true,
            ),
            (
                r#"{"id": 2, "model": "gpt", "columns": [], "rows": []}"#,
                "BadModelChoice",
                true,
            ),
            (
                r#"{"id": 3, "model": "bert", "columns": ["a"], "rows": [["1", "2"]]}"#,
                "BadRequest",
                true,
            ),
        ];
        for (line, kind, has_id) in cases {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.kind, kind, "{line}");
            assert_eq!(e.id.is_some(), has_id, "{line}");
        }
    }

    #[test]
    fn error_response_shape() {
        let line = err_response(&WireError {
            id: Some(4),
            kind: "TableTooLarge",
            message: "no data row fits".into(),
        });
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&crate::json::Json::Bool(false)));
        let err = doc.get("error").unwrap();
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("TableTooLarge")
        );
    }
}
