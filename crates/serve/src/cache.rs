//! Content-addressed LRU cache of table encodings.
//!
//! The key is a 64-bit FNV-1a hash over everything that determines an
//! encoding bit-for-bit: the encoder spec (model family *and* serving
//! precision — a student's int8 output must never answer an f32 request),
//! the linearization strategy and its options, the context string, and
//! the table's full content (id, caption, column names, every cell's
//! text, entity annotations, shape).
//! Two requests with identical content therefore share one cached entry,
//! while any single-character difference lands on a different key.
//!
//! Capacity is measured in approximate bytes of the stored encodings, not
//! entry count, because encodings vary ~100× in size with table shape.
//! Eviction is least-recently-used. Hits, misses, and evictions are
//! counted for the `serve_end` trace event and the metrics snapshot.

use ntr::{EncoderSpec, TableEncoding};
use ntr_table::{LinearizerOptions, Table};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher. Field boundaries are marked with a
/// `0xFF` separator byte (invalid UTF-8, so no string content can collide
/// with a boundary).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        self.bytes(&[0xFF]);
    }

    fn num(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// The cache key for one encode request: hashes every input that the
/// encoding depends on.
pub fn content_key(
    spec: EncoderSpec,
    linearizer_name: &str,
    opts: &LinearizerOptions,
    table: &Table,
    context: &str,
) -> u64 {
    let mut h = Fnv64::new();
    h.str(spec.kind.name());
    h.str(spec.precision.name());
    h.str(linearizer_name);
    h.num(opts.max_tokens as u64);
    h.num(opts.context_position as u64);
    h.str(context);
    h.str(&table.id);
    h.str(&table.caption);
    h.num(table.n_rows() as u64);
    h.num(table.n_cols() as u64);
    for col in table.columns() {
        h.str(&col.name);
    }
    for r in 0..table.n_rows() {
        for c in 0..table.n_cols() {
            let cell = table.cell(r, c);
            h.str(&cell.raw);
            // Widen before the +1: `e + 1` in u32 wraps (panics in debug)
            // at `e == u32::MAX`, colliding annotated cells with bare ones.
            h.num(cell.entity.map_or(0u64, |e| u64::from(e) + 1));
        }
    }
    h.0
}

/// Approximate heap footprint of one cached encoding, in bytes.
fn approx_bytes(enc: &TableEncoding) -> usize {
    std::mem::size_of_val(enc.states.data())
        + std::mem::size_of_val(enc.encoded.ids())
        + std::mem::size_of_val(enc.encoded.meta())
        + 64 // map/entry overhead
}

struct Entry {
    enc: Arc<TableEncoding>,
    tick: u64,
    bytes: usize,
}

/// Counter snapshot for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Approximate bytes held right now.
    pub bytes: usize,
}

/// Byte-capacity LRU cache of [`TableEncoding`]s keyed by content hash.
///
/// A capacity of 0 disables the cache entirely: every lookup misses and
/// nothing is stored (used by benchmarks that must measure raw encode
/// throughput).
pub struct EmbeddingCache {
    capacity: usize,
    bytes: usize,
    tick: u64,
    map: HashMap<u64, Entry>,
    lru: BTreeMap<u64, u64>, // recency tick -> key
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl EmbeddingCache {
    /// An empty cache holding at most `capacity_bytes` of encodings.
    pub fn new(capacity_bytes: usize) -> Self {
        EmbeddingCache {
            capacity: capacity_bytes,
            bytes: 0,
            tick: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, bumping its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<TableEncoding>> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        match self.map.get_mut(&key) {
            Some(entry) => {
                self.hits += 1;
                self.lru.remove(&entry.tick);
                self.tick += 1;
                entry.tick = self.tick;
                self.lru.insert(self.tick, key);
                Some(Arc::clone(&entry.enc))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores an encoding under `key`, evicting least-recently-used
    /// entries until the total fits the byte capacity. An encoding larger
    /// than the whole capacity is not stored at all.
    pub fn insert(&mut self, key: u64, enc: Arc<TableEncoding>) {
        if self.capacity == 0 {
            return;
        }
        let bytes = approx_bytes(&enc);
        if bytes > self.capacity {
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.lru.remove(&old.tick);
            self.bytes -= old.bytes;
        }
        while self.bytes + bytes > self.capacity {
            let (&oldest_tick, &oldest_key) = self
                .lru
                .iter()
                .next()
                .expect("bytes > 0 implies a live entry");
            self.lru.remove(&oldest_tick);
            let victim = self.map.remove(&oldest_key).expect("lru and map agree");
            self.bytes -= victim.bytes;
            self.evictions += 1;
        }
        self.tick += 1;
        self.lru.insert(self.tick, key);
        self.map.insert(
            key,
            Entry {
                enc,
                tick: self.tick,
                bytes,
            },
        );
        self.bytes += bytes;
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr::{build_encoder, ModelKind, Pipeline};
    use ntr_table::{Linearizer, RowMajorLinearizer};

    fn table(id: &str, cell: &str) -> Table {
        Table::from_strings(id, &["a", "b"], &[&[cell, "2"], &["3", "4"]])
    }

    fn encoding(cell: &str) -> Arc<TableEncoding> {
        let t = table("t", cell);
        let pipeline = Pipeline::builder()
            .vocab_from_tables(std::slice::from_ref(&t))
            .vocab_size(300)
            .build()
            .unwrap();
        let mut model = build_encoder(
            EncoderSpec::f32(ModelKind::Bert),
            &pipeline.default_config(),
        )
        .unwrap();
        Arc::new(pipeline.encode(model.as_mut(), &t, ""))
    }

    fn bert() -> EncoderSpec {
        EncoderSpec::f32(ModelKind::Bert)
    }

    #[test]
    fn key_is_content_sensitive() {
        let opts = LinearizerOptions::default();
        let lin = RowMajorLinearizer;
        let base = content_key(bert(), lin.name(), &opts, &table("t", "1"), "q");
        // Identical content -> identical key.
        assert_eq!(
            base,
            content_key(bert(), lin.name(), &opts, &table("t", "1"), "q")
        );
        // Any differing component -> different key.
        for other in [
            content_key(
                EncoderSpec::f32(ModelKind::Tapas),
                lin.name(),
                &opts,
                &table("t", "1"),
                "q",
            ),
            content_key(bert(), "template", &opts, &table("t", "1"), "q"),
            content_key(bert(), lin.name(), &opts, &table("t", "9"), "q"),
            content_key(bert(), lin.name(), &opts, &table("u", "1"), "q"),
            content_key(bert(), lin.name(), &opts, &table("t", "1"), "r"),
        ] {
            assert_ne!(base, other);
        }
        // Entity annotations are part of the content.
        let mut with_entity = table("t", "1");
        with_entity.cell_mut(0, 0).entity = Some(7);
        assert_ne!(
            base,
            content_key(bert(), lin.name(), &opts, &with_entity, "q")
        );
    }

    #[test]
    fn key_separates_precisions() {
        // A student's int8 encoding is a different bit pattern from its
        // f32 one; the precision must therefore be part of the key.
        let opts = LinearizerOptions::default();
        let lin = RowMajorLinearizer;
        let student = ModelKind::RowStudent;
        assert_ne!(
            content_key(
                EncoderSpec::f32(student),
                lin.name(),
                &opts,
                &table("t", "1"),
                "q"
            ),
            content_key(
                EncoderSpec::int8(student),
                lin.name(),
                &opts,
                &table("t", "1"),
                "q"
            ),
        );
    }

    #[test]
    fn key_survives_max_entity_id() {
        // Regression: the +1 disambiguating Some(e) from None used to run in
        // u32 and wrap (panic in debug) at e == u32::MAX. It must widen
        // first, keeping the three states distinct.
        let opts = LinearizerOptions::default();
        let lin = RowMajorLinearizer;
        let bare = content_key(bert(), lin.name(), &opts, &table("t", "1"), "q");
        let mut max_id = table("t", "1");
        max_id.cell_mut(0, 0).entity = Some(u32::MAX);
        let max_key = content_key(bert(), lin.name(), &opts, &max_id, "q");
        let mut near_max = table("t", "1");
        near_max.cell_mut(0, 0).entity = Some(u32::MAX - 1);
        let near_key = content_key(bert(), lin.name(), &opts, &near_max, "q");
        assert_ne!(bare, max_key);
        assert_ne!(max_key, near_key);
    }

    #[test]
    fn lru_eviction_by_bytes() {
        let enc = encoding("1");
        let one = approx_bytes(&enc);
        // Room for exactly two entries.
        let mut cache = EmbeddingCache::new(2 * one + 1);
        cache.insert(1, Arc::clone(&enc));
        cache.insert(2, Arc::clone(&enc));
        assert!(cache.get(1).is_some()); // 1 is now more recent than 2
        cache.insert(3, Arc::clone(&enc)); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut cache = EmbeddingCache::new(0);
        cache.insert(1, encoding("1"));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn reinsert_same_key_replaces() {
        let enc = encoding("1");
        let one = approx_bytes(&enc);
        let mut cache = EmbeddingCache::new(4 * one);
        cache.insert(1, Arc::clone(&enc));
        cache.insert(1, Arc::clone(&enc));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, one);
        assert_eq!(stats.evictions, 0);
    }
}
