//! # ntr-serve
//!
//! The batched embedding service: the deployment-facing layer over the
//! `ntr` pipeline and model zoo. Concurrent clients submit encode
//! requests (table + context + model choice); a dynamic micro-batcher
//! coalesces them (flush on `max_batch` or a `max_wait` deadline), a
//! worker pool of deterministic model replicas encodes each batch, and a
//! content-hash keyed LRU cache short-circuits repeated tables. Results
//! are **bit-identical** to sequential [`ntr::Pipeline::encode`] calls at
//! any batch size and worker count — batching changes throughput, never
//! output.
//!
//! Layers, bottom to top:
//!
//! * [`cache`] — content-addressed LRU over [`ntr::TableEncoding`]s;
//! * [`service`] — [`service::EmbeddingService`]: queue, micro-batcher,
//!   worker pool, per-request response channels;
//! * [`json`] / [`wire`] — std-only JSON and the NDJSON wire protocol
//!   with typed error responses;
//! * [`server`] — [`server::Server`]: TCP accept loop, per-connection
//!   threads, graceful shutdown, `ntr-obs` events and metrics.
//!
//! Everything is std-only: no async runtime, no serde — `std::net` +
//! `std::sync::mpsc` + the workspace's own thread pool.

pub mod cache;
pub mod json;
pub mod server;
pub mod service;
pub mod wire;

pub use cache::{content_key, CacheStats, EmbeddingCache};
pub use server::Server;
pub use service::{
    EmbeddingService, ServeConfig, ServeHandle, ServeReply, ServeRequest, ServeResponse, ServeStats,
};
