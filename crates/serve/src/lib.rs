//! # ntr-serve
//!
//! The batched embedding service: the deployment-facing layer over the
//! `ntr` pipeline and model zoo. Concurrent clients submit encode
//! requests (table + context + model choice); a dynamic micro-batcher
//! coalesces them (flush on `max_batch` or a `max_wait` deadline), a
//! worker pool of deterministic model replicas encodes each batch, and a
//! content-hash keyed LRU cache short-circuits repeated tables. Results
//! are **bit-identical** to sequential [`ntr::Pipeline::encode`] calls at
//! any batch size and worker count — batching changes throughput, never
//! output.
//!
//! Layers, bottom to top:
//!
//! * [`cache`] — content-addressed LRU over [`ntr::TableEncoding`]s;
//! * [`service`] — [`service::EmbeddingService`]: bounded submit queue
//!   with typed `Overloaded` load shedding, micro-batcher, worker pool,
//!   completion callbacks — plus the self-healing core: panic isolation
//!   with exactly-once typed responses, supervised batcher restarts,
//!   replica quarantine/rebuild, request deadlines, and a cache-only
//!   degraded mode behind a circuit breaker;
//! * [`json`] / [`wire`] — std-only JSON (depth-bounded recursive
//!   descent) and the NDJSON wire protocol with typed error responses;
//! * [`poller`] — dependency-free readiness polling (`epoll` on linux,
//!   `poll(2)` elsewhere) plus a cross-thread [`poller::Waker`];
//! * [`conn`] — per-connection read/write state machine: partial-read
//!   framing, bounded buffers, idle / slow-consumer timeouts;
//! * [`server`] — [`server::Server`]: a single event-loop thread serving
//!   every connection with backpressure, fairness caps, load shedding,
//!   graceful drain, and `ntr-obs` events and metrics. Started with an
//!   [`ntr_index::SearchIndex`] (see [`server::Server::start_with_index`]),
//!   it also answers the `{"cmd": "search"}` ANN-retrieval verb: the query
//!   table is encoded through the same batcher (reusing its deadline,
//!   degraded-mode, and load-shedding machinery), then its embedding is
//!   looked up in the IVF index; failures surface as typed
//!   `IndexNotLoaded` / `BadK` errors.
//!
//! Everything is std-only: no async runtime, no serde, no libc crate —
//! `std::net` + `std::sync::mpsc` + the workspace's own thread pool, with
//! the two readiness syscalls declared directly.

pub mod cache;
pub mod conn;
pub mod json;
pub mod poller;
pub mod server;
pub mod service;
pub mod wire;

pub use cache::{content_key, CacheStats, EmbeddingCache};
pub use conn::{CloseReason, ConnLimits};
pub use ntr_index::{EmbeddingStore, IndexError, IvfConfig, IvfIndex, SearchIndex, SearchResult};
pub use server::{LoopStats, Server, ServerConfig, ServerStats};
pub use service::{
    Admission, Completion, EmbeddingService, HealthReport, ReplicaStatus, ServeConfig, ServeHandle,
    ServeReply, ServeRequest, ServeResponse, ServeStats, INJECTED_FLUSH_PANIC_MSG,
};
