//! TCP front-end for the embedding service: newline-delimited JSON, one
//! thread per connection, graceful drain on shutdown.
//!
//! Each connection is handled sequentially (request, response, request,
//! …); concurrency comes from multiple connections, whose requests the
//! micro-batcher coalesces. A `{"cmd": "shutdown"}` line (or
//! [`Server::stop`]) stops the accept loop; [`Server::wait`] then joins
//! every connection, drains the service, emits the `serve_end` trace
//! event, and writes the metrics snapshot.

use crate::service::{EmbeddingService, ServeConfig, ServeHandle, ServeStats};
use crate::wire::{self, WireRequest};
use ntr::Pipeline;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running NDJSON-over-TCP embedding server.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    service: Option<EmbeddingService>,
    obs: ntr_obs::Obs,
}

impl Server {
    /// Binds `127.0.0.1:port` (0 picks an ephemeral port), starts the
    /// service and the accept loop, and emits the `serve_start` event.
    pub fn start(
        pipeline: Pipeline,
        cfg: ServeConfig,
        port: u16,
        obs: ntr_obs::Obs,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        if let Some(ev) = obs.event("serve_start") {
            ev.u64("port", u64::from(addr.port()))
                .u64("workers", cfg.n_workers.max(1) as u64)
                .u64("max_batch", cfg.max_batch as u64)
                .u64("max_wait", cfg.max_wait.as_millis() as u64)
                .u64("cache_bytes", cfg.cache_bytes as u64)
                .finish();
        }
        let service = EmbeddingService::start(pipeline, cfg, obs.clone());
        let handle = service.handle();
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ntr-serve-accept".into())
                .spawn(move || accept_loop(&listener, addr, &handle, &stop))
                .expect("spawn accept thread")
        };
        Ok(Server {
            addr,
            stop,
            accept: Some(accept),
            service: Some(service),
            obs,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to stop accepting; `wait` completes the drain.
    pub fn stop(&self) {
        request_stop(&self.stop, self.addr);
    }

    /// Blocks until the accept loop exits (client shutdown command or
    /// [`Server::stop`]), then drains the service and reports final
    /// counters via `serve_end` and the metrics snapshot.
    pub fn wait(mut self) -> ServeStats {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let stats = self
            .service
            .take()
            .expect("wait consumes the service exactly once")
            .shutdown();
        let obs = &self.obs;
        if let Some(ev) = obs.event("serve_end") {
            ev.u64("requests", stats.requests)
                .u64("batches", stats.batches)
                .u64("hits", stats.cache.hits)
                .u64("misses", stats.cache.misses)
                .u64("evictions", stats.cache.evictions)
                .u64("errors", stats.errors)
                .u64("p50_ms", stats.p50_ms)
                .u64("p99_ms", stats.p99_ms)
                .finish();
        }
        obs.add("serve/requests", stats.requests);
        obs.add("serve/batches", stats.batches);
        obs.add("serve/errors", stats.errors);
        obs.add("serve/cache_hits", stats.cache.hits);
        obs.add("serve/cache_misses", stats.cache.misses);
        obs.add("serve/cache_evictions", stats.cache.evictions);
        let _ = obs.write_metrics();
        stats
    }
}

/// Flips the stop flag and self-connects to unblock the blocking
/// `accept` call.
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr);
}

fn accept_loop(
    listener: &TcpListener,
    addr: SocketAddr,
    handle: &ServeHandle,
    stop: &Arc<AtomicBool>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            break; // the self-connect that woke us up
        }
        let handle = handle.clone();
        let stop = Arc::clone(stop);
        connections.push(
            std::thread::Builder::new()
                .name("ntr-serve-conn".into())
                .spawn(move || {
                    let _ = connection(stream, &handle, &stop, addr);
                })
                .expect("spawn connection thread"),
        );
    }
    for conn in connections {
        let _ = conn.join();
    }
}

fn connection(
    stream: TcpStream,
    handle: &ServeHandle,
    stop: &AtomicBool,
    addr: SocketAddr,
) -> std::io::Result<()> {
    // Poll the stop flag between reads so an idle connection cannot stall
    // the drain forever.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() && !serve_line(trimmed, handle, stop, addr, &mut writer)? {
                    return Ok(());
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // `read_line` keeps any partial line in `line`; just poll.
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Handles one request line; returns `false` when the connection should
/// close (shutdown command).
fn serve_line(
    line: &str,
    handle: &ServeHandle,
    stop: &AtomicBool,
    addr: SocketAddr,
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<bool> {
    let response = match wire::parse_request(line) {
        Ok(WireRequest::Shutdown) => {
            request_stop(stop, addr);
            writer.write_all(b"{\"ok\": true, \"cmd\": \"shutdown\"}\n")?;
            writer.flush()?;
            return Ok(false);
        }
        Ok(WireRequest::Encode { id, req }) => match handle.submit(req).recv() {
            Ok(Ok(reply)) => wire::ok_response(id, &reply.encoding, reply.cached),
            Ok(Err(e)) => wire::encode_err_response(id, &e),
            // The service is gone (shutdown raced this request).
            Err(_) => wire::encode_err_response(
                id,
                &ntr::EncodeError::BadModelChoice {
                    detail: "service shutting down".into(),
                },
            ),
        },
        Err(e) => wire::err_response(&e),
    };
    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    Ok(true)
}
