//! Event-loop TCP front-end for the embedding service: one
//! readiness-driven thread handles every connection — no
//! thread-per-connection, no blocking accept.
//!
//! # Architecture
//!
//! ```text
//!            accept (nonblocking; EMFILE/ECONNABORTED → count + backoff)
//!               │
//!   ┌───────────▼────────────────────────────────────────────┐
//!   │ event loop (crate::poller: epoll / poll, 1 thread)     │
//!   │  per-connection state machines (crate::conn):          │
//!   │    partial-read NDJSON framing · bounded write buffers │
//!   │    in-flight caps · idle / slow-consumer timeouts      │
//!   └───────────┬───────────────────────────────▲────────────┘
//!     admission │ try_submit                    │ completions + waker
//!   ┌───────────▼────────────┐      ┌───────────┴────────────┐
//!   │ bounded submit queue   │      │ worker replicas render │
//!   │ (queue_cap, typed      │ ───► │ the response line and  │
//!   │  Overloaded shed)      │      │ wake the loop          │
//!   └────────────────────────┘      └────────────────────────┘
//! ```
//!
//! Backpressure tiers, outermost first: (1) `max_conns` — excess
//! connections get one typed `Overloaded` line and a close; (2) the
//! per-connection in-flight cap and write-buffer bound — the loop stops
//! *reading* from a connection that has `max_inflight_per_conn` requests
//! pending or `max_write_buf` unread response bytes, so one greedy or
//! unreading client cannot starve the rest; (3) `queue_cap` — admission
//! control in front of the micro-batcher sheds with
//! [`ntr::EncodeError::Overloaded`] *before* any serialization work.
//!
//! A `{"cmd": "shutdown"}` line (or [`Server::stop`]) starts a graceful
//! drain: the listener stops accepting, in-flight requests finish and
//! their responses flush (bounded by [`ServerConfig::drain_timeout`]),
//! then [`Server::wait`] reports final counters via the `serve_end`
//! event and the metrics snapshot.

use crate::conn::{CloseReason, Conn, ConnLimits, Frame};
use crate::poller::{Event, Interest, Poller, WakeReceiver, Waker};
use crate::service::{EmbeddingService, ServeConfig, ServeHandle, ServeStats};
use crate::wire::{self, WireRequest};
use ntr::{EncoderSpec, Pipeline};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Network-layer knobs of the event-loop server (the service-layer knobs
/// live in [`ServeConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent-connection cap; connection `max_conns + 1` is answered
    /// with one typed `Overloaded` line and closed.
    pub max_conns: usize,
    /// Longest accepted request line; longer lines get a `LineTooLong`
    /// error and are discarded without buffering.
    pub max_line_bytes: usize,
    /// Per-connection in-flight request cap (fairness: reading from a
    /// connection pauses while it has this many responses pending).
    pub max_inflight_per_conn: usize,
    /// Per-connection response-buffer bound; reading pauses above it.
    pub max_write_buf: usize,
    /// Connections with no read/write progress for this long are closed.
    pub idle_timeout: Duration,
    /// Hard bound on the graceful drain after shutdown.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_conns: 1024,
            max_line_bytes: 1 << 20,
            max_inflight_per_conn: 32,
            max_write_buf: 1 << 20,
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Event-loop counters, reported next to the service's [`ServeStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopStats {
    /// Connections accepted.
    pub conns_accepted: u64,
    /// Connections rejected at the `max_conns` limit.
    pub conns_rejected: u64,
    /// Transient accept errors (EMFILE, ECONNABORTED, …) absorbed with
    /// backoff instead of killing the accept path.
    pub accept_errors: u64,
    /// Connections closed for idling past `idle_timeout`.
    pub idle_closes: u64,
    /// Connections closed for not reading their responses.
    pub slow_closes: u64,
    /// Request lines rejected for exceeding `max_line_bytes`.
    pub oversized_lines: u64,
    /// Events that reached a vacated slot (stale token / recycled slot);
    /// absorbed and counted instead of panicking the event loop.
    pub slot_races: u64,
}

/// Final counters from [`Server::wait`]: the service's plus the loop's.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Micro-batcher / cache / latency counters.
    pub service: ServeStats,
    /// Event-loop counters.
    pub event_loop: LoopStats,
}

/// A running NDJSON-over-TCP embedding server.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Waker,
    event_loop: Option<JoinHandle<LoopStats>>,
    service: Option<EmbeddingService>,
    obs: ntr_obs::Obs,
}

impl Server {
    /// Binds `127.0.0.1:port` (0 picks an ephemeral port) with default
    /// [`ServerConfig`] knobs, starts the service and the event loop, and
    /// emits the `serve_start` event.
    pub fn start(
        pipeline: Pipeline,
        cfg: ServeConfig,
        port: u16,
        obs: ntr_obs::Obs,
    ) -> io::Result<Server> {
        Server::start_with(pipeline, cfg, ServerConfig::default(), port, obs)
    }

    /// [`Server::start`] with explicit network-layer knobs.
    pub fn start_with(
        pipeline: Pipeline,
        cfg: ServeConfig,
        server_cfg: ServerConfig,
        port: u16,
        obs: ntr_obs::Obs,
    ) -> io::Result<Server> {
        Server::start_with_index(pipeline, cfg, server_cfg, port, obs, None)
    }

    /// [`Server::start_with`] plus an optional ANN index: when present, the
    /// wire protocol's `{"cmd": "search"}` verb answers nearest-neighbor
    /// queries over it; when absent, searches get a typed `IndexNotLoaded`.
    pub fn start_with_index(
        pipeline: Pipeline,
        cfg: ServeConfig,
        server_cfg: ServerConfig,
        port: u16,
        obs: ntr_obs::Obs,
        index: Option<Arc<ntr_index::SearchIndex>>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        if let Some(ev) = obs.event("serve_start") {
            ev.u64("port", u64::from(addr.port()))
                .u64("workers", cfg.n_workers.max(1) as u64)
                .u64("max_batch", cfg.max_batch as u64)
                .u64("max_wait", cfg.max_wait.as_millis() as u64)
                .u64("cache_bytes", cfg.cache_bytes as u64)
                .u64("queue_cap", cfg.queue_cap as u64)
                .u64("max_conns", server_cfg.max_conns as u64)
                .finish();
        }
        let service = EmbeddingService::start(pipeline, cfg, obs.clone())?;
        let stop = Arc::new(AtomicBool::new(false));
        let (waker, wake_rx) = crate::poller::waker()?;
        let ev_loop = EventLoop::new(
            listener,
            service.handle(),
            server_cfg,
            waker.clone(),
            wake_rx,
            Arc::clone(&stop),
            obs.clone(),
            index,
        )?;
        let event_loop = std::thread::Builder::new()
            .name("ntr-serve-loop".into())
            .spawn(move || ev_loop.run())?;
        Ok(Server {
            addr,
            stop,
            waker,
            event_loop: Some(event_loop),
            service: Some(service),
            obs,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to drain and stop; `wait` completes the drain.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Blocks until the event loop exits (client shutdown command or
    /// [`Server::stop`]), then drains the service and reports final
    /// counters via `serve_end` and the metrics snapshot.
    pub fn wait(mut self) -> ServerStats {
        let event_loop = self
            .event_loop
            .take()
            .and_then(|t| t.join().ok())
            .unwrap_or_default();
        let service = self
            .service
            .take()
            .expect("wait consumes the service exactly once")
            .shutdown();
        let obs = &self.obs;
        if let Some(ev) = obs.event("serve_end") {
            ev.u64("requests", service.requests)
                .u64("batches", service.batches)
                .u64("hits", service.cache.hits)
                .u64("misses", service.cache.misses)
                .u64("evictions", service.cache.evictions)
                .u64("errors", service.errors)
                .u64("shed", service.shed)
                .u64("accept_errors", event_loop.accept_errors)
                .u64("timeouts", event_loop.idle_closes + event_loop.slow_closes)
                .u64("p50_ms", service.p50_ms)
                .u64("p99_ms", service.p99_ms)
                .u64("deadline_exceeded", service.deadline_exceeded)
                .u64("internal", service.internal)
                .u64("restarts", service.restarts)
                .u64("quarantined", service.quarantined)
                .u64("degraded", service.degraded_rejects)
                .finish();
        }
        obs.add("serve/requests", service.requests);
        obs.add("serve/batches", service.batches);
        obs.add("serve/errors", service.errors);
        obs.add("serve/cache_hits", service.cache.hits);
        obs.add("serve/cache_misses", service.cache.misses);
        obs.add("serve/cache_evictions", service.cache.evictions);
        let _ = obs.write_metrics();
        ServerStats {
            service,
            event_loop,
        }
    }
}

/// A response line rendered off-loop, addressed to a connection slot.
struct Completion {
    slot: usize,
    gen: u64,
    line: String,
}

/// One slab entry: the connection plus its registration bookkeeping.
struct Slot {
    conn: Conn,
    /// Guards stale completions after the slot is recycled.
    gen: u64,
    /// Interest currently registered with the poller.
    registered: Interest,
}

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;
const TOKEN_BASE: usize = 2;

/// Accepts at most this many connections per readiness tick so a connect
/// storm cannot starve established connections.
const ACCEPT_BURST: usize = 64;

const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(200);

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    listener_registered: bool,
    handle: ServeHandle,
    cfg: ServerConfig,
    limits: ConnLimits,
    /// Shared with [`Server::stop`] and with every in-flight completion.
    waker: Waker,
    wake_rx: WakeReceiver,
    stop: Arc<AtomicBool>,
    obs: ntr_obs::Obs,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    active: usize,
    gen_counter: u64,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    /// Set while recovering from a transient accept error.
    accept_resume_at: Option<Instant>,
    accept_backoff: Duration,
    /// Set when a drain began (shutdown command or `Server::stop`).
    draining_since: Option<Instant>,
    /// ANN index answering the `search` verb; `None` ⇒ `IndexNotLoaded`.
    index: Option<Arc<ntr_index::SearchIndex>>,
    stats: LoopStats,
}

impl EventLoop {
    #[allow(clippy::too_many_arguments)]
    fn new(
        listener: TcpListener,
        handle: ServeHandle,
        cfg: ServerConfig,
        waker: Waker,
        wake_rx: WakeReceiver,
        stop: Arc<AtomicBool>,
        obs: ntr_obs::Obs,
        index: Option<Arc<ntr_index::SearchIndex>>,
    ) -> io::Result<EventLoop> {
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(wake_rx.fd(), TOKEN_WAKER, Interest::READ)?;
        Ok(EventLoop {
            limits: ConnLimits {
                max_line_bytes: cfg.max_line_bytes,
                max_inflight: cfg.max_inflight_per_conn.max(1),
                max_write_buf: cfg.max_write_buf,
                idle_timeout: cfg.idle_timeout,
            },
            poller,
            listener,
            listener_registered: true,
            handle,
            cfg,
            waker,
            wake_rx,
            stop,
            obs,
            slots: Vec::new(),
            free: Vec::new(),
            active: 0,
            gen_counter: 0,
            completions: Arc::new(Mutex::new(VecDeque::new())),
            accept_resume_at: None,
            accept_backoff: ACCEPT_BACKOFF_MIN,
            draining_since: None,
            index,
            stats: LoopStats::default(),
        })
    }

    fn run(mut self) -> LoopStats {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let now = Instant::now();
            if self.stop.load(Ordering::SeqCst) && self.draining_since.is_none() {
                self.begin_drain(now);
            }
            if self.drained(now) {
                break;
            }
            let timeout = self.next_timeout(now);
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            let now = Instant::now();
            let mut accept_ready = false;
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKER => self.wake_rx.drain(),
                    t => self.handle_conn_event(t - TOKEN_BASE, ev, now),
                }
            }
            self.drain_completions(now);
            if accept_ready || self.accept_resume_due(now) {
                self.accept_burst(now);
            }
            self.check_timeouts(now);
        }
        self.stats
    }

    /// True when the accept-backoff pause expired; re-registers the
    /// listener with the poller on resume.
    fn accept_resume_due(&mut self, now: Instant) -> bool {
        match self.accept_resume_at {
            Some(at) if now >= at => {
                self.accept_resume_at = None;
                if !self.listener_registered && self.draining_since.is_none() {
                    self.listener_registered = self
                        .poller
                        .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
                        .is_ok();
                }
                true
            }
            _ => false,
        }
    }

    fn begin_drain(&mut self, now: Instant) {
        self.draining_since = Some(now);
        if self.listener_registered {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.listener_registered = false;
        }
        for i in 0..self.slots.len() {
            let quiescent = match &mut self.slots[i] {
                Some(slot) => {
                    slot.conn.draining = true;
                    slot.conn.quiescent()
                }
                None => continue,
            };
            if quiescent {
                self.close(i);
            } else {
                self.refresh(i);
            }
        }
    }

    /// Drain completes when every connection closed, or the hard
    /// `drain_timeout` expires (remaining connections are cut).
    fn drained(&mut self, now: Instant) -> bool {
        let Some(since) = self.draining_since else {
            return false;
        };
        if self.active == 0 {
            return true;
        }
        if now.duration_since(since) >= self.cfg.drain_timeout {
            for i in 0..self.slots.len() {
                if self.slots[i].is_some() {
                    self.close(i);
                }
            }
            return true;
        }
        false
    }

    /// Next poll deadline: the earliest of accept-backoff resume, drain
    /// deadline, and per-connection idle deadlines.
    fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let mut deadline: Option<Instant> = None;
        let mut consider = |d: Instant| match deadline {
            Some(cur) if cur <= d => {}
            _ => deadline = Some(d),
        };
        if let Some(at) = self.accept_resume_at {
            consider(at);
        }
        if let Some(since) = self.draining_since {
            consider(since + self.cfg.drain_timeout);
        }
        for slot in self.slots.iter().flatten() {
            consider(slot.conn.last_progress + self.limits.idle_timeout);
        }
        deadline.map(|d| d.saturating_duration_since(now))
    }

    fn accept_burst(&mut self, now: Instant) {
        if self.draining_since.is_some() || self.accept_resume_at.is_some() {
            return;
        }
        for _ in 0..ACCEPT_BURST {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_MIN;
                    if self.active >= self.cfg.max_conns {
                        // Typed rejection: one Overloaded line, then close
                        // (dropping the stream). Best-effort write — a
                        // fresh socket's send buffer always has room for
                        // one short line.
                        self.stats.conns_rejected += 1;
                        self.obs.inc("serve/conns_rejected");
                        let _ = stream.set_nonblocking(true);
                        let line = wire::conn_limit_response(self.cfg.max_conns);
                        let _ = (&stream).write_all(line.as_bytes());
                        let _ = (&stream).write_all(b"\n");
                        continue;
                    }
                    let Ok(conn) = Conn::new(stream, now) else {
                        continue;
                    };
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.slots.push(None);
                        self.slots.len() - 1
                    });
                    let interest = conn.interest(&self.limits);
                    if self
                        .poller
                        .register(conn.stream.as_raw_fd(), TOKEN_BASE + slot, interest)
                        .is_err()
                    {
                        self.free.push(slot);
                        continue;
                    }
                    self.gen_counter += 1;
                    self.slots[slot] = Some(Slot {
                        conn,
                        gen: self.gen_counter,
                        registered: interest,
                    });
                    self.active += 1;
                    self.stats.conns_accepted += 1;
                    self.obs.inc("serve/conns_accepted");
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Transient by policy: EMFILE/ENFILE, ECONNABORTED,
                    // EINTR, … — an accept error must never stop the
                    // server. Count it, back off exponentially, retry.
                    self.stats.accept_errors += 1;
                    self.obs.inc("serve/accept_errors");
                    if self.listener_registered {
                        let _ = self.poller.deregister(self.listener.as_raw_fd());
                        self.listener_registered = false;
                    }
                    self.accept_resume_at = Some(now + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    break;
                }
            }
        }
    }

    fn handle_conn_event(&mut self, slot: usize, ev: Event, now: Instant) {
        if self.slots.get(slot).is_none_or(Option::is_none) {
            return; // already closed earlier this tick
        }
        if ev.hangup && !ev.readable {
            self.close(slot);
            return;
        }
        if ev.writable && !self.flush_slot(slot, now) {
            return;
        }
        if ev.readable {
            if !self.fill_slot(slot, now) {
                return;
            }
            self.process_frames(slot, now);
        }
        self.finish_or_refresh(slot, now);
    }

    /// A slot access found the connection gone where one was expected: a
    /// stale token / recycled-slot race. Before this was checked, the
    /// `unwrap()` here panicked the single event-loop thread and killed
    /// every connection; now the straggler is counted and (re)closed.
    fn slot_race(&mut self, slot: usize) {
        self.stats.slot_races += 1;
        self.obs.inc("serve/slot_races");
        if slot < self.slots.len() {
            self.close(slot); // no-op on an already vacated slot
        }
    }

    /// Flushes `slot`'s write buffer. Returns false when the slot is no
    /// longer usable (vacated by a race, or closed on a write error).
    fn flush_slot(&mut self, slot: usize, now: Instant) -> bool {
        let Some(s) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            self.slot_race(slot);
            return false;
        };
        if s.conn.flush(now).is_err() {
            self.close(slot);
            return false;
        }
        true
    }

    /// Reads from `slot`'s socket into its frame buffer. Returns false when
    /// the slot is no longer usable.
    fn fill_slot(&mut self, slot: usize, now: Instant) -> bool {
        let Some(s) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            self.slot_race(slot);
            return false;
        };
        if s.conn.fill(&self.limits, now).is_err() {
            self.close(slot);
            return false;
        }
        true
    }

    /// Parses and dispatches frames from `slot`'s read buffer, bounded by
    /// the per-connection in-flight cap.
    fn process_frames(&mut self, slot: usize, now: Instant) {
        loop {
            let Some(s) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if s.conn.inflight >= self.limits.max_inflight {
                return;
            }
            let Some(frame) = s.conn.next_frame(&self.limits) else {
                return;
            };
            match frame {
                Frame::Oversized { buffered } => {
                    self.stats.oversized_lines += 1;
                    self.obs.inc("serve/oversized_lines");
                    let line = wire::line_too_long_response(buffered, self.limits.max_line_bytes);
                    self.queue_line(slot, &line);
                }
                Frame::Line(bytes) => {
                    if bytes.iter().all(|b| b.is_ascii_whitespace()) {
                        continue;
                    }
                    let Ok(text) = std::str::from_utf8(&bytes) else {
                        let line = wire::err_response(&wire::WireError {
                            id: None,
                            kind: "BadRequest",
                            message: "request line is not valid UTF-8".into(),
                        });
                        self.queue_line(slot, &line);
                        continue;
                    };
                    match wire::parse_request(text.trim()) {
                        Ok(WireRequest::Shutdown) => {
                            self.queue_line(slot, "{\"ok\": true, \"cmd\": \"shutdown\"}");
                            self.stop.store(true, Ordering::SeqCst);
                            self.begin_drain(now);
                            return;
                        }
                        Ok(WireRequest::Health) => {
                            // Answered inline on the loop thread: health
                            // must work even when the batcher is degraded
                            // or its queue is full.
                            let h = self.handle.health();
                            let state = if self.draining_since.is_some() {
                                "draining"
                            } else {
                                h.state
                            };
                            let line = wire::health_response(state, &h);
                            self.queue_line(slot, &line);
                        }
                        Ok(WireRequest::Encode { id, req }) => {
                            self.submit(slot, id, req);
                        }
                        Ok(WireRequest::Search(sr)) => {
                            self.submit_search(slot, sr);
                        }
                        Err(e) => {
                            let line = wire::err_response(&e);
                            self.queue_line(slot, &line);
                        }
                    }
                }
            }
        }
    }

    /// Hands one request to the service; the completion renders the
    /// response line off-loop (worker thread, or inline for cache hits
    /// and sheds) and wakes the poller.
    fn submit(&mut self, slot: usize, id: u64, req: crate::service::ServeRequest) {
        let Some(s) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        s.conn.inflight += 1;
        let gen = s.gen;
        let completions = Arc::clone(&self.completions);
        let waker = self.waker.clone();
        self.handle.try_submit(
            req,
            Box::new(move |resp| {
                let line = match resp {
                    Ok(reply) => wire::ok_response(id, &reply.encoding, reply.cached),
                    Err(e) => wire::encode_err_response(id, &e),
                };
                crate::service::lock_clean(&completions).push_back(Completion { slot, gen, line });
                waker.wake();
            }),
        );
    }

    /// Hands a search request's encode stage to the service; the completion
    /// then runs the ANN lookup (off-loop on a worker thread for cache
    /// misses, inline for hits — an IVF probe is tens of microseconds) and
    /// renders the ranked results. Index-level failures are answered inline
    /// with typed errors; encode-stage failures (deadline, degraded,
    /// overloaded, …) surface exactly as they do for `encode`.
    fn submit_search(&mut self, slot: usize, sr: wire::SearchRequest) {
        let Some(index) = self.index.clone() else {
            self.obs.inc("index/not_loaded");
            let line = wire::index_not_loaded_response(sr.id);
            self.queue_line(slot, &line);
            return;
        };
        if sr.k == 0 || sr.k > index.store.len() {
            self.obs.inc("index/bad_k");
            let line = wire::search_err_response(
                sr.id,
                &ntr_index::IndexError::BadK {
                    k: sr.k,
                    len: index.store.len(),
                },
            );
            self.queue_line(slot, &line);
            return;
        }
        let kind = sr
            .model
            .or_else(|| index.store.meta_get("model").and_then(|s| s.parse().ok()));
        let Some(kind) = kind else {
            let line = wire::err_response(&wire::WireError {
                id: Some(sr.id),
                kind: "BadRequest",
                message: "missing \"model\" and the index records no build model".into(),
            });
            self.queue_line(slot, &line);
            return;
        };
        // Precision falls back to the precision the index was built at
        // (indexes that predate the stamp are f32).
        let precision = sr.precision.or_else(|| {
            index
                .store
                .meta_get("precision")
                .and_then(|s| s.parse().ok())
        });
        let spec = EncoderSpec::new(kind, precision.unwrap_or_default());
        if let Err(e) = spec.validate() {
            let line = wire::err_response(&wire::WireError {
                id: Some(sr.id),
                kind: e.kind(),
                message: e.to_string(),
            });
            self.queue_line(slot, &line);
            return;
        }
        let Some(s) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        s.conn.inflight += 1;
        let gen = s.gen;
        let completions = Arc::clone(&self.completions);
        let waker = self.waker.clone();
        let obs = self.obs.clone();
        let (id, k, nprobe) = (sr.id, sr.k, sr.nprobe);
        let req = crate::service::ServeRequest {
            spec,
            table: sr.table,
            context: sr.context,
            timeout: sr.timeout,
        };
        self.handle.try_submit(
            req,
            Box::new(move |resp| {
                let line = match resp {
                    Ok(reply) => {
                        let emb = reply.encoding.table_embedding();
                        let start = Instant::now();
                        match index.search(emb.data(), k, nprobe) {
                            Ok(res) => {
                                obs.inc("index/searches");
                                obs.observe("index/search_us", start.elapsed().as_micros() as u64);
                                wire::search_ok_response(id, reply.cached, &res, &index.store)
                            }
                            Err(e) => {
                                obs.inc("index/search_errors");
                                wire::search_err_response(id, &e)
                            }
                        }
                    }
                    Err(e) => wire::encode_err_response(id, &e),
                };
                crate::service::lock_clean(&completions).push_back(Completion { slot, gen, line });
                waker.wake();
            }),
        );
    }

    /// Queues a response line plus its newline.
    fn queue_line(&mut self, slot: usize, line: &str) {
        if let Some(s) = self.slots.get_mut(slot).and_then(Option::as_mut) {
            s.conn.queue_write(line.as_bytes());
            s.conn.queue_write(b"\n");
        }
    }

    fn drain_completions(&mut self, now: Instant) {
        loop {
            let completion = crate::service::lock_clean(&self.completions).pop_front();
            let Some(c) = completion else { break };
            {
                let Some(s) = self.slots.get_mut(c.slot).and_then(Option::as_mut) else {
                    continue; // connection closed while the request ran
                };
                if s.gen != c.gen {
                    continue; // slot was recycled
                }
                s.conn.inflight -= 1;
                s.conn.queue_write(c.line.as_bytes());
                s.conn.queue_write(b"\n");
            }
            // A freed in-flight slot may unblock buffered frames.
            self.process_frames(c.slot, now);
            self.finish_or_refresh(c.slot, now);
        }
    }

    /// Flushes, closes if terminal, else re-arms poller interest.
    fn finish_or_refresh(&mut self, slot: usize, now: Instant) {
        let Some(s) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let flushed = match s.conn.flush(now) {
            Ok(f) => f,
            Err(_) => {
                self.close(slot);
                return;
            }
        };
        // Re-borrow after the flush above released the slot borrow; the
        // connection can only have vanished via a slot race.
        let Some(s) = self.slots.get(slot).and_then(Option::as_ref) else {
            self.slot_race(slot);
            return;
        };
        let done = (flushed && s.conn.close_after_flush)
            || (s.conn.peer_closed && s.conn.quiescent() && !s.conn.has_buffered_input())
            || (s.conn.draining && s.conn.quiescent());
        if done {
            self.close(slot);
        } else {
            self.refresh(slot);
        }
    }

    /// Re-arms poller interest when it changed since registration.
    fn refresh(&mut self, slot: usize) {
        let Some(s) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let want = s.conn.interest(&self.limits);
        if want != s.registered
            && self
                .poller
                .modify(s.conn.stream.as_raw_fd(), TOKEN_BASE + slot, want)
                .is_ok()
        {
            s.registered = want;
        }
    }

    fn check_timeouts(&mut self, now: Instant) {
        for i in 0..self.slots.len() {
            let reason = match &self.slots[i] {
                Some(s) => s.conn.timed_out(&self.limits, now),
                None => None,
            };
            let Some(reason) = reason else { continue };
            if reason == CloseReason::SlowConsumer {
                self.stats.slow_closes += 1;
                self.obs.inc("serve/closed_slow");
            } else {
                self.stats.idle_closes += 1;
                self.obs.inc("serve/closed_idle");
            }
            self.close(i);
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(s) = self.slots[slot].take() {
            let _ = self.poller.deregister(s.conn.stream.as_raw_fd());
            self.active -= 1;
            self.free.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_table::Table;

    fn test_event_loop() -> EventLoop {
        let t = Table::from_strings("t", &["a", "b"], &[&["1", "2"]]);
        let pipeline = Pipeline::builder()
            .vocab_from_tables(std::slice::from_ref(&t))
            .vocab_size(300)
            .build()
            .expect("vocab");
        let cfg = ServeConfig {
            n_workers: 1,
            model_config: Some(ntr_models::ModelConfig::tiny(
                pipeline.tokenizer().vocab_size(),
            )),
            ..ServeConfig::default()
        };
        let service =
            EmbeddingService::start(pipeline, cfg, ntr_obs::Obs::disabled()).expect("service");
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let (waker, wake_rx) = crate::poller::waker().expect("waker");
        EventLoop::new(
            listener,
            service.handle(),
            ServerConfig::default(),
            waker,
            wake_rx,
            Arc::new(AtomicBool::new(false)),
            ntr_obs::Obs::disabled(),
            None,
        )
        .expect("event loop")
    }

    /// Regression for the event-loop slot `unwrap()`s: an event addressed to
    /// a vacated or out-of-range slot must be absorbed as a counted slot
    /// race, not panic the loop thread (which killed every connection).
    #[test]
    fn vacant_slot_access_is_counted_not_a_panic() {
        let mut el = test_event_loop();
        let now = Instant::now();

        // Out-of-range slot (stale token past the slab's end).
        assert!(!el.flush_slot(17, now));
        assert_eq!(el.stats.slot_races, 1);

        // In-range but vacated slot (closed earlier, token still queued).
        el.slots.push(None);
        el.free.push(0);
        assert!(!el.fill_slot(0, now));
        assert_eq!(el.stats.slot_races, 2);
        assert!(!el.flush_slot(0, now));
        assert_eq!(el.stats.slot_races, 3);

        // The full event path hits the entry guard and stays silent.
        let ev = Event {
            token: TOKEN_BASE,
            readable: true,
            writable: true,
            hangup: false,
        };
        el.handle_conn_event(0, ev, now);
        assert_eq!(el.stats.slot_races, 3);

        // finish_or_refresh on a vacant slot returns without counting.
        el.finish_or_refresh(0, now);
        assert_eq!(el.stats.slot_races, 3);
    }
}
