//! The batched embedding service: a dynamic micro-batcher in front of a
//! worker pool of model replicas, with a self-healing core.
//!
//! # Batching
//!
//! Requests arrive one at a time through [`ServeHandle::submit`] and land
//! in a queue. A dedicated batcher thread sleeps until the first request
//! of a batch arrives, then keeps collecting until either `max_batch`
//! requests are queued or `max_wait` has elapsed since the first arrival
//! — the classic dynamic-batching policy: zero added latency under low
//! load, full batches under high load.
//!
//! # Bit-identity
//!
//! The models are stateful `&mut` encoders with no batch dimension, so
//! "batched forward" here means: distribute the batch over `n_workers`
//! model *replicas* and encode each request as a single sequence through
//! [`Pipeline::encode_serialized`] — the exact compute core behind the
//! sequential [`Pipeline::encode`]. Replicas are built lazily from the
//! same config (same seed ⇒ identical weights), and inference consumes no
//! RNG state, so every request's output is bit-identical to what a
//! sequential `encode` call would produce, at any batch size and worker
//! count. Requests are length-bucketed (longest-first greedy assignment)
//! so workers finish at roughly the same time.
//!
//! # Self-healing
//!
//! Internal faults are isolated, typed, and recovered from — a panic
//! anywhere in the flush path can never drop a response or kill the
//! service:
//!
//! * **Flight board.** Before any work runs, every request's completion
//!   moves onto a per-flush board. The success path takes a completion
//!   off the board when it answers; after a caught panic, whatever is
//!   still on the board is answered with [`EncodeError::Internal`].
//!   Exactly one response per request, no matter where the panic fired.
//! * **Replica quarantine.** A replica whose bucket panics is
//!   quarantined: its models are dropped and rebuilt lazily from the
//!   shared seeded [`ModelConfig`], so the rebuilt replica is
//!   bit-identical to the pre-fault one by construction. After
//!   `max_rebuilds` *consecutive* failures the replica is retired and
//!   load respreads over the survivors (the last active replica is never
//!   retired).
//! * **Batcher supervision.** The batcher loop runs under `catch_unwind`
//!   with bounded restarts and exponential backoff; past the budget it
//!   stops batching and answers everything with a typed
//!   [`EncodeError::Internal`] instead of hanging clients.
//!   [`ServeHandle::submit`]/[`ServeHandle::try_submit`] never panic on a
//!   dead batcher — the completion still fires.
//! * **Deadlines.** A request may carry a deadline (wire `timeout_ms`,
//!   or [`ServeConfig::default_timeout`]), enforced at admission, before
//!   encode (in-queue expiry), and after the batch runs — always as a
//!   typed [`EncodeError::DeadlineExceeded`].
//! * **Degraded mode.** A circuit breaker over recent flush outcomes
//!   flips the service into cache-only mode when internal faults
//!   cluster: hits are still served, misses are rejected with
//!   [`EncodeError::Degraded`], and every `probe_every`-th miss is
//!   admitted as a half-open probe — one clean flush closes the breaker.
//! * **Poison recovery.** Every mutex in this module is taken through
//!   [`lock_clean`], so a panic while holding a lock never cascades into
//!   `PoisonError` unwraps elsewhere.
//!
//! Deterministic drills for all of this are injected through the
//! `NTR_FAULTS` grammar (`serve-panic@N`, `serve-slow@N` — see
//! [`ntr_tensor::faults`]), where `@N` counts flushes.
//!
//! # Caching
//!
//! Before queueing, each request is looked up in a content-hash keyed LRU
//! cache ([`crate::cache`]); hits are answered immediately without
//! touching the batcher.

use crate::cache::{content_key, CacheStats, EmbeddingCache};
use ntr::{build_encoder, EncodeError, EncoderSpec, ModelKind, Pipeline, TableEncoding};
use ntr_models::{ModelConfig, SequenceEncoder};
use ntr_obs::metrics::Histogram;
use ntr_table::{EncodedTable, Table};
use ntr_tensor::faults::{FaultKind, FaultPlan};
use ntr_tensor::par;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poisoning: a panic that died while
/// holding the lock (already isolated by the flush path) must not turn
/// every later `lock().unwrap()` into a second panic. The protected
/// state is either a cache (rebuildable), a counter, or replica models
/// that the quarantine path drops anyway.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Message carried by an injected `serve-panic@N` flush fault (stable
/// for assertions in chaos drills).
pub const INJECTED_FLUSH_PANIC_MSG: &str = "ntr-faults: injected serve flush panic";

/// How long an injected `serve-slow@N` fault stalls its flush.
pub const INJECTED_SLOW_FLUSH: Duration = Duration::from_millis(60);

/// Tuning knobs for [`EmbeddingService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a partial batch this long after its first request arrived.
    pub max_wait: Duration,
    /// Number of model replicas encoding concurrently.
    pub n_workers: usize,
    /// Embedding-cache capacity in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Admission-controlled submit-queue bound: [`ServeHandle::try_submit`]
    /// sheds with a typed [`EncodeError::Overloaded`] once this many
    /// requests are queued ahead of the micro-batcher (0 = unbounded).
    /// Cache hits are always admitted — they never occupy the queue.
    pub queue_cap: usize,
    /// Model configuration for the replicas; `None` uses the pipeline's
    /// [`Pipeline::default_config`]. All replicas share one config (and
    /// therefore one set of weights per family).
    pub model_config: Option<ModelConfig>,
    /// Deadline applied to requests that carry none of their own
    /// (`None` = no default deadline).
    pub default_timeout: Option<Duration>,
    /// Consecutive flush panics a replica survives (each one quarantines
    /// and rebuilds it) before it is retired and load respreads. The
    /// last active replica is never retired.
    pub max_rebuilds: u32,
    /// Batcher-loop panics the supervisor absorbs (restart + backoff)
    /// before giving up and answering every request with a typed
    /// [`EncodeError::Internal`].
    pub max_batcher_restarts: u32,
    /// Circuit breaker: flush outcomes remembered.
    pub breaker_window: usize,
    /// Circuit breaker: faulted flushes within the window that flip the
    /// service into cache-only degraded mode.
    pub breaker_threshold: usize,
    /// In degraded mode, every `probe_every`-th cache miss is admitted
    /// as a half-open probe instead of rejected; one clean probe flush
    /// closes the breaker.
    pub probe_every: usize,
    /// Deterministic fault schedule for chaos drills (`serve-panic@N`,
    /// `serve-slow@N`; `@N` counts flushes).
    pub faults: Option<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            n_workers: par::max_threads(),
            cache_bytes: 32 << 20,
            queue_cap: 256,
            model_config: None,
            default_timeout: None,
            max_rebuilds: 3,
            max_batcher_restarts: 5,
            breaker_window: 16,
            breaker_threshold: 3,
            probe_every: 8,
            faults: None,
        }
    }
}

/// One encode request: which encoder spec (family + serving precision),
/// over which table, with which natural-language context, optionally
/// bounded by a deadline.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Encoder spec to serve with (family + precision). Int8 is only
    /// valid for [`ModelKind::RowStudent`]; invalid specs are rejected at
    /// admission with a typed [`EncodeError::BadModelChoice`].
    pub spec: EncoderSpec,
    /// The table.
    pub table: Table,
    /// Caption / question / claim (may be empty).
    pub context: String,
    /// Per-request deadline budget (overrides
    /// [`ServeConfig::default_timeout`]; `None` inherits it).
    pub timeout: Option<Duration>,
}

impl ServeRequest {
    /// An f32 request with no per-request deadline (what every
    /// pre-redesign caller meant).
    pub fn new(kind: ModelKind, table: Table, context: impl Into<String>) -> Self {
        ServeRequest::with_spec(EncoderSpec::f32(kind), table, context)
    }

    /// A request at an explicit precision, with no per-request deadline.
    pub fn with_spec(spec: EncoderSpec, table: Table, context: impl Into<String>) -> Self {
        ServeRequest {
            spec,
            table,
            context: context.into(),
            timeout: None,
        }
    }
}

/// A successful encode result.
#[derive(Clone)]
pub struct ServeReply {
    /// The encoding (shared with the cache).
    pub encoding: Arc<TableEncoding>,
    /// Whether it was answered from the cache.
    pub cached: bool,
}

// Compact by hand: a `TableEncoding` holds full per-token tensors, which
// derived Debug would dump wholesale into assertion messages.
impl std::fmt::Debug for ServeReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeReply")
            .field("cached", &self.cached)
            .field("seq_len", &self.encoding.encoded.len())
            .finish_non_exhaustive()
    }
}

/// What comes back on a request's response channel.
pub type ServeResponse = Result<ServeReply, EncodeError>;

/// How a response is delivered: invoked exactly once, possibly from a
/// worker thread. The event-loop server hands in a closure that queues
/// the rendered line and wakes the poller; [`ServeHandle::submit`] wraps
/// a channel sender for blocking callers.
pub type Completion = Box<dyn FnOnce(ServeResponse) + Send>;

/// Where [`ServeHandle::try_submit`] routed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Answered synchronously from the embedding cache.
    CacheHit,
    /// Accepted into the submit queue ahead of the micro-batcher.
    Queued,
    /// Shed with a typed [`EncodeError::Overloaded`] (already delivered
    /// through the completion) because the queue was at capacity.
    Shed,
    /// Rejected with another typed error (already delivered through the
    /// completion): [`EncodeError::Degraded`] in cache-only mode,
    /// [`EncodeError::DeadlineExceeded`] for an already-expired budget,
    /// or [`EncodeError::Internal`] when the batcher's restart budget is
    /// exhausted.
    Rejected,
}

struct Job {
    spec: EncoderSpec,
    key: u64,
    table: Table,
    context: String,
    submitted: Instant,
    /// Absolute deadline plus the budget (ms) for the error message.
    deadline: Option<(Instant, u64)>,
    complete: Completion,
}

/// One entry on a flush's flight board: everything needed to answer the
/// request, kept apart from the encode work so a panic can never drop
/// it.
struct InFlight {
    key: u64,
    submitted: Instant,
    deadline: Option<(Instant, u64)>,
    complete: Completion,
}

/// Point-in-time service counters (reported in the `serve_end` trace
/// event and the metrics snapshot).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests submitted (including cache hits and failures).
    pub requests: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Requests answered with an [`EncodeError`].
    pub errors: u64,
    /// Requests shed at admission with [`EncodeError::Overloaded`]
    /// (monotonic; also counted in `errors`).
    pub shed: u64,
    /// Requests answered with [`EncodeError::DeadlineExceeded`] (also
    /// counted in `errors`).
    pub deadline_exceeded: u64,
    /// Requests answered with [`EncodeError::Internal`] after an
    /// isolated panic (also counted in `errors`).
    pub internal: u64,
    /// Batcher-loop supervision restarts.
    pub restarts: u64,
    /// Replica quarantine events (each one dropped and rebuilt a
    /// replica's models).
    pub quarantined: u64,
    /// Cache misses rejected with [`EncodeError::Degraded`] while the
    /// breaker was open (also counted in `errors`).
    pub degraded_rejects: u64,
    /// Half-open probes admitted while the breaker was open.
    pub degraded_probes: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Median request latency (submit → response), milliseconds,
    /// derived from the 32-bucket log2 latency histogram (reported as
    /// the matched bucket's upper edge). Shed and degraded-rejected
    /// requests are excluded — they do no work and would skew the SLO.
    pub p50_ms: u64,
    /// 99th-percentile request latency, milliseconds (same derivation).
    pub p99_ms: u64,
}

/// One replica's health, as reported by the `health` wire verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Times this replica was quarantined and rebuilt.
    pub rebuilds: u64,
    /// Retired after `max_rebuilds` consecutive failures; no longer
    /// assigned buckets.
    pub retired: bool,
}

/// Service self-assessment for the `{"cmd": "health"}` wire verb.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// `"ok"` or `"degraded"` (the server layer upgrades this to
    /// `"draining"` during shutdown).
    pub state: &'static str,
    /// Requests queued ahead of the micro-batcher.
    pub queue_depth: usize,
    /// Configured admission bound (0 = unbounded).
    pub queue_cap: usize,
    /// Batcher supervision restarts so far.
    pub restarts: u64,
    /// Replica quarantine events so far.
    pub quarantined: u64,
    /// Deadline-exceeded responses so far.
    pub deadline_exceeded: u64,
    /// Per-replica status, in worker order.
    pub replicas: Vec<ReplicaStatus>,
}

#[derive(Default)]
struct ReplicaHealth {
    consecutive_failures: u32,
    rebuilds: u64,
    retired: bool,
}

struct Replica {
    models: Mutex<HashMap<EncoderSpec, Box<dyn SequenceEncoder + Send>>>,
    health: Mutex<ReplicaHealth>,
}

/// Count-based circuit breaker over recent flush outcomes. Deterministic
/// by construction: state changes only on flush completions and
/// admission decisions, never on wall-clock time.
#[derive(Default)]
struct Breaker {
    /// Recent flush outcomes, newest last (`true` = internal fault).
    window: VecDeque<bool>,
    /// Open = cache-only degraded mode.
    open: bool,
    /// Misses rejected since the last half-open probe.
    rejected_since_probe: usize,
}

struct Shared {
    pipeline: Pipeline,
    cfg: ServeConfig,
    model_cfg: ModelConfig,
    cache: Mutex<EmbeddingCache>,
    replicas: Vec<Replica>,
    faults: Mutex<FaultPlan>,
    breaker: Mutex<Breaker>,
    obs: ntr_obs::Obs,
    queue_depth: AtomicUsize,
    requests: AtomicU64,
    batches: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    internal: AtomicU64,
    restarts: AtomicU64,
    quarantined: AtomicU64,
    degraded_rejects: AtomicU64,
    degraded_probes: AtomicU64,
    /// Bounded-memory latency record: 32 log2 buckets, wait-free.
    latencies_us: Histogram,
}

impl Shared {
    fn answer(&self, complete: Completion, submitted: Instant, r: ServeResponse) {
        match &r {
            Err(EncodeError::DeadlineExceeded { .. }) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                self.obs.inc("serve/deadline_exceeded");
            }
            Err(EncodeError::Internal { .. }) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.internal.fetch_add(1, Ordering::Relaxed);
                self.obs.inc("serve/internal_errors");
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) => {}
        }
        let us = submitted.elapsed().as_micros() as u64;
        self.latencies_us.record(us);
        self.obs.observe("serve/latency_us", us);
        complete(r);
    }

    /// Answers whatever is still on the flight board with a typed
    /// internal error — the exactly-once guarantee after a caught panic.
    fn fail_board(&self, board: &[Mutex<Option<InFlight>>], detail: &str) {
        for slot in board {
            if let Some(f) = lock_clean(slot).take() {
                self.answer(
                    f.complete,
                    f.submitted,
                    Err(EncodeError::Internal {
                        detail: detail.to_string(),
                    }),
                );
            }
        }
    }

    /// A percentile (0–100) from the latency histogram, interpolated within
    /// the matched log2 bucket and converted to milliseconds. (Reporting the
    /// bucket's upper edge overstated the tail by up to 2×, which the
    /// `NTR_LOADGEN_MAX_P99_MS` SLO gate then enforced against.)
    fn latency_pct_ms(&self, p: u64) -> u64 {
        self.latencies_us.percentile(p as f64).div_ceil(1000)
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            internal: self.internal.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            degraded_rejects: self.degraded_rejects.load(Ordering::Relaxed),
            degraded_probes: self.degraded_probes.load(Ordering::Relaxed),
            cache: lock_clean(&self.cache).stats(),
            p50_ms: self.latency_pct_ms(50),
            p99_ms: self.latency_pct_ms(99),
        }
    }

    fn health(&self) -> HealthReport {
        let degraded = lock_clean(&self.breaker).open;
        HealthReport {
            state: if degraded { "degraded" } else { "ok" },
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_cap: self.cfg.queue_cap,
            restarts: self.restarts.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            replicas: self
                .replicas
                .iter()
                .map(|r| {
                    let h = lock_clean(&r.health);
                    ReplicaStatus {
                        rebuilds: h.rebuilds,
                        retired: h.retired,
                    }
                })
                .collect(),
        }
    }

    /// Records a flush outcome into the breaker and handles state
    /// transitions (open on clustered faults, close on a clean flush
    /// while open).
    fn breaker_record(&self, flush_no: u64, faulted: bool) {
        let mut b = lock_clean(&self.breaker);
        if b.open {
            if !faulted {
                b.open = false;
                b.window.clear();
                b.rejected_since_probe = 0;
                drop(b);
                self.obs.inc("serve/degraded_recovered");
                if let Some(ev) = self.obs.event("serve_recover") {
                    ev.str("kind", "degraded").u64("flush", flush_no).finish();
                }
            }
            return;
        }
        b.window.push_back(faulted);
        while b.window.len() > self.cfg.breaker_window.max(1) {
            b.window.pop_front();
        }
        let faults = b.window.iter().filter(|f| **f).count();
        if faults >= self.cfg.breaker_threshold.max(1) {
            b.open = true;
            b.rejected_since_probe = 0;
            drop(b);
            self.obs.inc("serve/degraded_entered");
            if let Some(ev) = self.obs.event("serve_fault") {
                ev.str("kind", "degraded")
                    .u64("flush", flush_no)
                    .str("detail", "internal-error rate tripped the breaker")
                    .finish();
            }
        }
    }

    /// Degraded-mode admission gate for cache misses: `true` admits
    /// (breaker closed, or this miss is the half-open probe).
    fn degraded_gate(&self) -> bool {
        let mut b = lock_clean(&self.breaker);
        if !b.open {
            return true;
        }
        b.rejected_since_probe += 1;
        if b.rejected_since_probe >= self.cfg.probe_every.max(1) {
            b.rejected_since_probe = 0;
            drop(b);
            self.degraded_probes.fetch_add(1, Ordering::Relaxed);
            self.obs.inc("serve/degraded_probes");
            return true;
        }
        false
    }
}

/// Cloneable submission handle; the server hands one to every connection
/// thread.
#[derive(Clone)]
pub struct ServeHandle {
    tx: mpsc::Sender<Job>,
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Submits one request with no admission control (in-process callers
    /// that want every request encoded eventually). The encoding (or
    /// typed error) arrives on the returned channel; cache hits are
    /// answered before this returns.
    pub fn submit(&self, req: ServeRequest) -> mpsc::Receiver<ServeResponse> {
        let (resp_tx, resp_rx) = mpsc::channel();
        self.submit_inner(
            req,
            Box::new(move |r| {
                let _ = resp_tx.send(r); // receiver may have given up
            }),
            false,
        );
        resp_rx
    }

    /// Admission-controlled submission — the server front door. The
    /// completion is invoked exactly once, possibly before this returns
    /// (cache hit, invalid request, shed, degraded-mode reject) and
    /// possibly from a worker thread. When the submit queue holds
    /// `queue_cap` requests the request is rejected *before* the batcher
    /// with a typed [`EncodeError::Overloaded`] and [`Admission::Shed`]
    /// is returned; in degraded mode misses are rejected with
    /// [`EncodeError::Degraded`] and [`Admission::Rejected`].
    pub fn try_submit(&self, req: ServeRequest, complete: Completion) -> Admission {
        self.submit_inner(req, complete, true)
    }

    fn submit_inner(&self, req: ServeRequest, complete: Completion, bounded: bool) -> Admission {
        let submitted = Instant::now();
        let shared = &self.shared;
        shared.requests.fetch_add(1, Ordering::Relaxed);
        // Spec validation happens before any queueing: an int8 request
        // against a family with no int8 path is a typed O(1) rejection,
        // never a worker-side panic.
        if let Err(e) = req.spec.validate() {
            shared.answer(complete, submitted, Err(e));
            return Admission::Rejected;
        }
        let key = content_key(
            req.spec,
            shared.pipeline.linearizer().name(),
            shared.pipeline.options(),
            &req.table,
            &req.context,
        );
        if let Some(hit) = lock_clean(&shared.cache).get(key) {
            shared.answer(
                complete,
                submitted,
                Ok(ServeReply {
                    encoding: hit,
                    cached: true,
                }),
            );
            return Admission::CacheHit;
        }
        // Deadline enforcement tier 1 (admission): a zero budget is
        // already expired and never queues.
        let timeout = req.timeout.or(shared.cfg.default_timeout);
        let deadline = timeout.map(|t| (submitted + t, t.as_millis() as u64));
        if let Some((_, ms)) = deadline {
            if timeout.is_some_and(|t| t.is_zero()) {
                shared.answer(
                    complete,
                    submitted,
                    Err(EncodeError::DeadlineExceeded { timeout_ms: ms }),
                );
                return Admission::Rejected;
            }
        }
        // Degraded mode: cache-only service while the breaker is open.
        // Misses are typed-rejected in O(1); every `probe_every`-th miss
        // goes through as a half-open probe.
        if !shared.degraded_gate() {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            shared.degraded_rejects.fetch_add(1, Ordering::Relaxed);
            shared.obs.inc("serve/degraded_rejects");
            // Like sheds, degraded rejects do no work; keeping them out
            // of the latency histogram keeps the SLO honest.
            complete(Err(EncodeError::Degraded));
            return Admission::Rejected;
        }
        // Admission control happens here — in front of the micro-batcher,
        // so a saturated service rejects in O(1) instead of queueing work
        // it will answer too late.
        let depth = shared.queue_depth.load(Ordering::Relaxed);
        let cap = shared.cfg.queue_cap;
        if bounded && cap > 0 && depth >= cap {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            shared.errors.fetch_add(1, Ordering::Relaxed);
            shared.obs.inc("serve/shed");
            // Shed latencies are ~0 and would skew the SLO percentiles;
            // deliver without recording.
            complete(Err(EncodeError::Overloaded {
                queue_depth: depth,
                queue_cap: cap,
            }));
            return Admission::Shed;
        }
        shared.queue_depth.fetch_add(1, Ordering::Relaxed);
        shared.obs.observe("serve/queue_depth", depth as u64 + 1);
        let job = Job {
            spec: req.spec,
            key,
            table: req.table,
            context: req.context,
            submitted,
            deadline,
            complete,
        };
        // The batcher exits only after its restart budget is exhausted
        // (or every sender is gone); a dead batcher is a typed error for
        // the caller, never a panic and never a hang.
        if let Err(mpsc::SendError(job)) = self.tx.send(job) {
            shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
            shared.answer(
                job.complete,
                job.submitted,
                Err(EncodeError::Internal {
                    detail: "batcher unavailable (restart budget exhausted)".to_string(),
                }),
            );
            return Admission::Rejected;
        }
        Admission::Queued
    }

    /// Requests currently queued ahead of the micro-batcher.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth.load(Ordering::Relaxed)
    }

    /// The configured admission bound (0 = unbounded).
    pub fn queue_cap(&self) -> usize {
        self.shared.cfg.queue_cap
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Current self-assessment (the `health` wire verb).
    pub fn health(&self) -> HealthReport {
        self.shared.health()
    }
}

/// The running service: batcher thread + worker pool + cache.
pub struct EmbeddingService {
    handle: ServeHandle,
    batcher: Option<JoinHandle<()>>,
}

/// Supervision backoff bounds for batcher restarts (kept short: the
/// batcher holds no corrupt state across restarts, the backoff only
/// stops a hot panic loop from spinning a core).
const RESTART_BACKOFF_MIN: Duration = Duration::from_millis(1);
const RESTART_BACKOFF_MAX: Duration = Duration::from_millis(50);

impl EmbeddingService {
    /// Starts the supervised batcher thread. `obs` receives `serve_batch`
    /// / `serve_fault` / `serve_recover` events and the serve metrics;
    /// pass [`ntr_obs::Obs::disabled`] to opt out. The only error is a
    /// failed thread spawn, surfaced instead of panicking.
    pub fn start(pipeline: Pipeline, cfg: ServeConfig, obs: ntr_obs::Obs) -> std::io::Result<Self> {
        let model_cfg = cfg
            .model_config
            .unwrap_or_else(|| pipeline.default_config());
        let n_workers = cfg.n_workers.max(1);
        let faults = cfg.faults.clone().unwrap_or_default();
        let shared = Arc::new(Shared {
            cache: Mutex::new(EmbeddingCache::new(cfg.cache_bytes)),
            replicas: (0..n_workers)
                .map(|_| Replica {
                    models: Mutex::new(HashMap::new()),
                    health: Mutex::new(ReplicaHealth::default()),
                })
                .collect(),
            pipeline,
            cfg,
            model_cfg,
            faults: Mutex::new(faults),
            breaker: Mutex::new(Breaker::default()),
            obs,
            queue_depth: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            internal: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            degraded_rejects: AtomicU64::new(0),
            degraded_probes: AtomicU64::new(0),
            latencies_us: Histogram::default(),
        });
        let (tx, rx) = mpsc::channel::<Job>();
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ntr-serve-batcher".into())
                .spawn(move || supervised_batcher(&shared, &rx))?
        };
        Ok(EmbeddingService {
            handle: ServeHandle { tx, shared },
            batcher: Some(batcher),
        })
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        self.handle.shared.stats()
    }

    /// Current self-assessment.
    pub fn health(&self) -> HealthReport {
        self.handle.shared.health()
    }

    /// Graceful shutdown: drains every queued request through the normal
    /// batch path, joins the batcher, and returns the final counters.
    ///
    /// The batcher exits once every [`ServeHandle`] clone is gone, so drop
    /// outstanding handles (join connection threads) before calling this.
    pub fn shutdown(self) -> ServeStats {
        let EmbeddingService { handle, batcher } = self;
        let ServeHandle { tx, shared } = handle;
        drop(tx);
        if let Some(batcher) = batcher {
            let _ = batcher.join();
        }
        shared.stats()
    }
}

/// The batcher thread body: runs [`batcher_loop`] under `catch_unwind`
/// with bounded restarts and exponential backoff. Flush-path panics are
/// already isolated inside [`flush`]; this is the outer layer that keeps
/// a panic in the *loop itself* from killing the service. Past the
/// restart budget the thread stops batching but keeps draining the
/// queue, answering everything with a typed internal error so no client
/// ever hangs.
fn supervised_batcher(shared: &Shared, rx: &mpsc::Receiver<Job>) {
    let mut backoff = RESTART_BACKOFF_MIN;
    loop {
        match catch_unwind(AssertUnwindSafe(|| batcher_loop(shared, rx))) {
            // Normal exit: every sender is gone and the queue drained.
            Ok(()) => return,
            Err(payload) => {
                let restarts = shared.restarts.fetch_add(1, Ordering::Relaxed) + 1;
                shared.obs.inc("serve/restarts");
                if let Some(ev) = shared.obs.event("serve_fault") {
                    ev.str("kind", "batcher_panic")
                        .u64("flush", shared.batches.load(Ordering::Relaxed))
                        .str("detail", &panic_msg(payload.as_ref()))
                        .finish();
                }
                if u64::from(shared.cfg.max_batcher_restarts) < restarts {
                    // Budget exhausted: fail requests fast, typed, forever.
                    while let Ok(job) = rx.recv() {
                        shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        shared.answer(
                            job.complete,
                            job.submitted,
                            Err(EncodeError::Internal {
                                detail: "batcher restart budget exhausted".to_string(),
                            }),
                        );
                    }
                    return;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(RESTART_BACKOFF_MAX);
                if let Some(ev) = shared.obs.event("serve_recover") {
                    ev.str("kind", "batcher")
                        .u64("flush", shared.batches.load(Ordering::Relaxed))
                        .u64("restarts", restarts)
                        .finish();
                }
            }
        }
    }
}

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

fn batcher_loop(shared: &Shared, rx: &mpsc::Receiver<Job>) {
    let max_batch = shared.cfg.max_batch.max(1);
    loop {
        // Block until a batch begins (or every handle is gone).
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let deadline = first.submitted + shared.cfg.max_wait;
        let mut batch = vec![first];
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                // On disconnect the queue is already fully drained into
                // `batch`; flush it, then exit via the recv above.
                Err(_) => break,
            }
        }
        shared.queue_depth.fetch_sub(batch.len(), Ordering::Relaxed);
        flush(shared, batch);
    }
}

/// Encodes one batch across the worker replicas and answers every
/// request — exactly once, whatever faults fire in between. The
/// completions live on a flight board built *before* any fallible work;
/// panics caught at the bucket level quarantine the replica, panics
/// caught here fail whatever is still on the board.
fn flush(shared: &Shared, batch: Vec<Job>) {
    let t0 = Instant::now();
    let size = batch.len() as u64;
    let flush_no = shared.batches.fetch_add(1, Ordering::Relaxed) + 1;

    let mut board: Vec<Mutex<Option<InFlight>>> = Vec::with_capacity(batch.len());
    let mut work: Vec<(usize, EncoderSpec, Table, String)> = Vec::with_capacity(batch.len());
    for (i, job) in batch.into_iter().enumerate() {
        board.push(Mutex::new(Some(InFlight {
            key: job.key,
            submitted: job.submitted,
            deadline: job.deadline,
            complete: job.complete,
        })));
        work.push((i, job.spec, job.table, job.context));
    }

    let panicked = catch_unwind(AssertUnwindSafe(|| {
        flush_inner(shared, flush_no, &board, work)
    }));
    let faulted = match panicked {
        Ok(n_bucket_panics) => n_bucket_panics > 0,
        Err(payload) => {
            let msg = panic_msg(payload.as_ref());
            if let Some(ev) = shared.obs.event("serve_fault") {
                ev.str("kind", "flush_panic")
                    .u64("flush", flush_no)
                    .str("detail", &msg)
                    .finish();
            }
            shared.fail_board(&board, &format!("flush panicked: {msg}"));
            true
        }
    };
    shared.breaker_record(flush_no, faulted);

    shared.obs.observe("serve/batch_size", size);
    if let Some(ev) = shared.obs.event("serve_batch") {
        ev.u64("size", size)
            .u64("queued", shared.queue_depth.load(Ordering::Relaxed) as u64)
            .u64("encode_ms", t0.elapsed().as_millis() as u64)
            .finish();
    }
}

/// The fallible middle of a flush; returns how many buckets panicked
/// (each already quarantined and answered).
fn flush_inner(
    shared: &Shared,
    flush_no: u64,
    board: &[Mutex<Option<InFlight>>],
    work: Vec<(usize, EncoderSpec, Table, String)>,
) -> usize {
    // Injected drills, consumed at flush granularity (`@N` = Nth flush).
    let (slow, panic_armed) = {
        let mut faults = lock_clean(&shared.faults);
        (
            faults.take(FaultKind::ServeSlow, flush_no),
            faults.take(FaultKind::ServePanic, flush_no),
        )
    };
    if slow {
        if let Some(ev) = shared.obs.event("serve_fault") {
            ev.str("kind", "slow_flush")
                .u64("flush", flush_no)
                .str("detail", "injected flush delay")
                .finish();
        }
        std::thread::sleep(INJECTED_SLOW_FLUSH);
    }

    // Serialize on the batcher thread; invalid or already-expired
    // requests are answered immediately and never reach a worker.
    let now = Instant::now();
    let mut jobs: Vec<(usize, EncoderSpec, EncodedTable)> = Vec::with_capacity(work.len());
    for (i, spec, table, context) in work {
        let Some(inflight) = lock_clean(&board[i]).take() else {
            continue;
        };
        // Deadline enforcement tier 2 (in-queue): expired while waiting
        // for the batch to fill.
        if let Some((at, ms)) = inflight.deadline {
            if now >= at {
                shared.answer(
                    inflight.complete,
                    inflight.submitted,
                    Err(EncodeError::DeadlineExceeded { timeout_ms: ms }),
                );
                continue;
            }
        }
        match shared.pipeline.try_serialize(&table, &context) {
            Ok(encoded) => {
                *lock_clean(&board[i]) = Some(inflight);
                jobs.push((i, spec, encoded));
            }
            Err(e) => shared.answer(inflight.complete, inflight.submitted, Err(e)),
        }
    }
    if jobs.is_empty() {
        return 0;
    }

    // Length-balanced buckets over the *active* (non-retired) replicas:
    // longest sequences first, each assigned to the currently lightest
    // bucket, so replicas finish together. Load respreads automatically
    // when a replica is retired.
    let active: Vec<usize> = {
        let mut active: Vec<usize> = (0..shared.replicas.len())
            .filter(|&r| !lock_clean(&shared.replicas[r].health).retired)
            .collect();
        if active.is_empty() {
            active.push(0); // the last replica is never retired, but be safe
        }
        active
    };
    let n_buckets = active.len().min(jobs.len());
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(jobs[i].2.len()), i));
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_buckets];
    let mut loads = vec![0usize; n_buckets];
    for i in order {
        let lightest = (0..n_buckets).min_by_key(|&b| (loads[b], b)).unwrap();
        loads[lightest] += jobs[i].2.len();
        buckets[lightest].push(i);
    }

    // Encode every bucket concurrently, one model replica per bucket.
    // Each request runs through `encode_serialized` — the same compute
    // core as sequential `Pipeline::encode` — on a replica whose weights
    // are bit-identical by construction (same config, same seed). The
    // bucket body runs under `catch_unwind`: a panic quarantines the
    // replica and fails only that bucket's unanswered requests.
    let slots: Vec<Mutex<Vec<(usize, EncoderSpec, EncodedTable)>>> = {
        let mut jobs: Vec<Option<(usize, EncoderSpec, EncodedTable)>> =
            jobs.into_iter().map(Some).collect();
        buckets
            .iter()
            .map(|bucket| {
                Mutex::new(
                    bucket
                        .iter()
                        .map(|&i| jobs[i].take().expect("each job in exactly one bucket"))
                        .collect(),
                )
            })
            .collect()
    };
    let bucket_panics: Vec<usize> = par::map_tasks(n_buckets, n_buckets, |b| {
        let replica_idx = active[b];
        let replica = &shared.replicas[replica_idx];
        let members: Vec<usize> = lock_clean(&slots[b]).iter().map(|(i, _, _)| *i).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let work = std::mem::take(&mut *lock_clean(&slots[b]));
            let mut models = lock_clean(&replica.models);
            for (job_no, (i, spec, encoded)) in work.into_iter().enumerate() {
                if panic_armed && b == 0 && job_no == 0 {
                    panic!("{INJECTED_FLUSH_PANIC_MSG}");
                }
                let model = models.entry(spec).or_insert_with(|| {
                    build_encoder(spec, &shared.model_cfg).expect("spec validated at admission")
                });
                let enc = Arc::new(shared.pipeline.encode_serialized(model.as_mut(), encoded));
                let Some(inflight) = lock_clean(&board[i]).take() else {
                    continue;
                };
                // The work is done either way; cache it so future hits
                // benefit even when this response arrives too late.
                lock_clean(&shared.cache).insert(inflight.key, Arc::clone(&enc));
                // Deadline enforcement tier 3 (post-batch).
                let r = match inflight.deadline {
                    Some((at, ms)) if Instant::now() >= at => {
                        Err(EncodeError::DeadlineExceeded { timeout_ms: ms })
                    }
                    _ => Ok(ServeReply {
                        encoding: enc,
                        cached: false,
                    }),
                };
                shared.answer(inflight.complete, inflight.submitted, r);
            }
        }));
        match outcome {
            Ok(()) => {
                lock_clean(&replica.health).consecutive_failures = 0;
                0
            }
            Err(payload) => {
                let msg = panic_msg(payload.as_ref());
                quarantine(shared, replica_idx, flush_no, &msg, active.len());
                for &i in &members {
                    if let Some(f) = lock_clean(&board[i]).take() {
                        shared.answer(
                            f.complete,
                            f.submitted,
                            Err(EncodeError::Internal {
                                detail: format!("replica {replica_idx} panicked: {msg}"),
                            }),
                        );
                    }
                }
                1
            }
        }
    });
    bucket_panics.into_iter().sum()
}

/// Quarantines a replica after its bucket panicked: drop its models (the
/// panic may have left an encoder mid-mutation) so they rebuild lazily
/// from the shared seeded config — bit-identical to the originals by
/// construction. After `max_rebuilds` consecutive failures the replica
/// is retired, unless it is the last active one.
fn quarantine(shared: &Shared, replica_idx: usize, flush_no: u64, msg: &str, n_active: usize) {
    let replica = &shared.replicas[replica_idx];
    lock_clean(&replica.models).clear();
    let (rebuilds, retired) = {
        let mut h = lock_clean(&replica.health);
        h.consecutive_failures += 1;
        h.rebuilds += 1;
        if h.consecutive_failures >= shared.cfg.max_rebuilds.max(1) && n_active > 1 {
            h.retired = true;
        }
        (h.rebuilds, h.retired)
    };
    shared.quarantined.fetch_add(1, Ordering::Relaxed);
    shared.obs.inc("serve/quarantined");
    if retired {
        shared.obs.inc("serve/retired");
    }
    if let Some(ev) = shared.obs.event("serve_fault") {
        ev.str(
            "kind",
            if retired {
                "replica_retired"
            } else {
                "replica_panic"
            },
        )
        .u64("flush", flush_no)
        .u64("replica", replica_idx as u64)
        .str("detail", msg)
        .finish();
    }
    if !retired {
        if let Some(ev) = shared.obs.event("serve_recover") {
            ev.str("kind", "replica_rebuild")
                .u64("flush", flush_no)
                .u64("rebuilds", rebuilds)
                .finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_clean_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex is poisoned");
        assert_eq!(*lock_clean(&m), 7, "lock_clean still reads the state");
    }

    #[test]
    fn histogram_percentiles_interpolate_within_buckets() {
        let shared_lat = Histogram::default();
        // 99 fast (≈100µs, bucket 6: 64..127) + 1 slow (≈80ms, bucket
        // 16: 65536..131071).
        for _ in 0..99 {
            shared_lat.record(100);
        }
        shared_lat.record(80_000);
        // Same reporting path as Shared::latency_pct_ms.
        let pct = |p: u64| shared_lat.percentile(p as f64).div_ceil(1000);
        assert_eq!(pct(50), 1, "mid-bucket p50 (96µs) rounds up to 1ms");
        assert_eq!(pct(99), 1, "p99 rank 99 still lands in the fast bucket");
        // Regression: the pre-fix upper-edge report turned the single 80ms
        // outlier into 131ms (131071µs), a ~1.6× overstatement the
        // NTR_LOADGEN_MAX_P99_MS SLO gate then enforced against. The
        // midpoint interpolation lands at 98304µs → 99ms.
        assert_eq!(pct(100), 99, "max rank interpolates within the slow bucket");
    }

    #[test]
    fn latency_store_memory_is_bounded() {
        // The store is a fixed array of 32 atomic buckets — recording
        // never allocates, so a soak's footprint equals an idle one's.
        // (The old per-request `Vec<u64>` grew ~8 bytes per response.)
        assert!(
            std::mem::size_of::<Histogram>() <= 64 * 8,
            "latency store regressed to a growable structure?"
        );
        let h = Histogram::default();
        for i in 0..1_000_000u64 {
            h.record(i % 250_000);
        }
        assert_eq!(h.count(), 1_000_000, "every sample still counted");
        assert!(h.nonzero_buckets().len() <= 32);
    }

    #[test]
    fn breaker_opens_after_threshold_and_probe_closes_it() {
        let cfg = ServeConfig {
            breaker_window: 4,
            breaker_threshold: 2,
            probe_every: 3,
            ..ServeConfig::default()
        };
        let b = Breaker::default();
        let shared = shared_for_breaker(cfg, b);
        assert!(shared.degraded_gate(), "closed breaker admits");
        shared.breaker_record(1, true);
        assert!(!lock_clean(&shared.breaker).open, "one fault is not enough");
        shared.breaker_record(2, true);
        assert!(
            lock_clean(&shared.breaker).open,
            "two faults in the window open it"
        );
        // Open: first two misses rejected, third admitted as a probe.
        assert!(!shared.degraded_gate());
        assert!(!shared.degraded_gate());
        assert!(shared.degraded_gate(), "every 3rd miss probes");
        assert_eq!(shared.degraded_probes.load(Ordering::Relaxed), 1);
        // A faulted probe keeps it open; a clean one closes it.
        shared.breaker_record(3, true);
        assert!(lock_clean(&shared.breaker).open);
        shared.breaker_record(4, false);
        assert!(
            !lock_clean(&shared.breaker).open,
            "clean flush closes the breaker"
        );
        assert!(shared.degraded_gate());
    }

    /// A minimal `Shared` for breaker unit tests (no pipeline needed —
    /// the breaker never touches it). Building a real pipeline here
    /// would drag vocab training into a unit test.
    fn shared_for_breaker(cfg: ServeConfig, breaker: Breaker) -> Shared {
        Shared {
            pipeline: ntr::Pipeline::builder()
                .vocab_from_texts(&["alpha beta gamma delta".to_string()])
                .build()
                .expect("tiny vocab"),
            model_cfg: ModelConfig::tiny(64),
            cache: Mutex::new(EmbeddingCache::new(0)),
            replicas: Vec::new(),
            faults: Mutex::new(FaultPlan::none()),
            breaker: Mutex::new(breaker),
            obs: ntr_obs::Obs::disabled(),
            cfg,
            queue_depth: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            internal: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            degraded_rejects: AtomicU64::new(0),
            degraded_probes: AtomicU64::new(0),
            latencies_us: Histogram::default(),
        }
    }
}
