//! The batched embedding service: a dynamic micro-batcher in front of a
//! worker pool of model replicas.
//!
//! # Batching
//!
//! Requests arrive one at a time through [`ServeHandle::submit`] and land
//! in a queue. A dedicated batcher thread sleeps until the first request
//! of a batch arrives, then keeps collecting until either `max_batch`
//! requests are queued or `max_wait` has elapsed since the first arrival
//! — the classic dynamic-batching policy: zero added latency under low
//! load, full batches under high load.
//!
//! # Bit-identity
//!
//! The models are stateful `&mut` encoders with no batch dimension, so
//! "batched forward" here means: distribute the batch over `n_workers`
//! model *replicas* and encode each request as a single sequence through
//! [`Pipeline::encode_serialized`] — the exact compute core behind the
//! sequential [`Pipeline::encode`]. Replicas are built lazily from the
//! same config (same seed ⇒ identical weights), and inference consumes no
//! RNG state, so every request's output is bit-identical to what a
//! sequential `encode` call would produce, at any batch size and worker
//! count. Requests are length-bucketed (longest-first greedy assignment)
//! so workers finish at roughly the same time.
//!
//! # Caching
//!
//! Before queueing, each request is looked up in a content-hash keyed LRU
//! cache ([`crate::cache`]); hits are answered immediately without
//! touching the batcher.

use crate::cache::{content_key, CacheStats, EmbeddingCache};
use ntr::{build_model, EncodeError, ModelKind, Pipeline, TableEncoding};
use ntr_models::{ModelConfig, SequenceEncoder};
use ntr_table::{EncodedTable, Table};
use ntr_tensor::par;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`EmbeddingService`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Flush a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a partial batch this long after its first request arrived.
    pub max_wait: Duration,
    /// Number of model replicas encoding concurrently.
    pub n_workers: usize,
    /// Embedding-cache capacity in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Admission-controlled submit-queue bound: [`ServeHandle::try_submit`]
    /// sheds with a typed [`EncodeError::Overloaded`] once this many
    /// requests are queued ahead of the micro-batcher (0 = unbounded).
    /// Cache hits are always admitted — they never occupy the queue.
    pub queue_cap: usize,
    /// Model configuration for the replicas; `None` uses the pipeline's
    /// [`Pipeline::default_config`]. All replicas share one config (and
    /// therefore one set of weights per family).
    pub model_config: Option<ModelConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            n_workers: par::max_threads(),
            cache_bytes: 32 << 20,
            queue_cap: 256,
            model_config: None,
        }
    }
}

/// One encode request: which model family, over which table, with which
/// natural-language context.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Model family to encode with.
    pub kind: ModelKind,
    /// The table.
    pub table: Table,
    /// Caption / question / claim (may be empty).
    pub context: String,
}

/// A successful encode result.
#[derive(Clone)]
pub struct ServeReply {
    /// The encoding (shared with the cache).
    pub encoding: Arc<TableEncoding>,
    /// Whether it was answered from the cache.
    pub cached: bool,
}

/// What comes back on a request's response channel.
pub type ServeResponse = Result<ServeReply, EncodeError>;

/// How a response is delivered: invoked exactly once, possibly from a
/// worker thread. The event-loop server hands in a closure that queues
/// the rendered line and wakes the poller; [`ServeHandle::submit`] wraps
/// a channel sender for blocking callers.
pub type Completion = Box<dyn FnOnce(ServeResponse) + Send>;

/// Where [`ServeHandle::try_submit`] routed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Answered synchronously from the embedding cache.
    CacheHit,
    /// Accepted into the submit queue ahead of the micro-batcher.
    Queued,
    /// Shed with a typed [`EncodeError::Overloaded`] (already delivered
    /// through the completion) because the queue was at capacity.
    Shed,
}

struct Job {
    kind: ModelKind,
    key: u64,
    table: Table,
    context: String,
    submitted: Instant,
    complete: Completion,
}

/// Point-in-time service counters (reported in the `serve_end` trace
/// event and the metrics snapshot).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests submitted (including cache hits and failures).
    pub requests: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Requests answered with an [`EncodeError`].
    pub errors: u64,
    /// Requests shed at admission with [`EncodeError::Overloaded`]
    /// (monotonic; also counted in `errors`).
    pub shed: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Median request latency (submit → response), milliseconds. Shed
    /// requests are excluded — they do no work and would skew the SLO.
    pub p50_ms: u64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: u64,
}

struct Shared {
    pipeline: Pipeline,
    cfg: ServeConfig,
    model_cfg: ModelConfig,
    cache: Mutex<EmbeddingCache>,
    replicas: Vec<Mutex<HashMap<ModelKind, Box<dyn SequenceEncoder + Send>>>>,
    obs: ntr_obs::Obs,
    queue_depth: AtomicUsize,
    requests: AtomicU64,
    batches: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl Shared {
    fn answer(&self, complete: Completion, submitted: Instant, r: ServeResponse) {
        if r.is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = submitted.elapsed().as_micros() as u64;
        self.latencies_us.lock().unwrap().push(us);
        self.obs.observe("serve/latency_us", us);
        complete(r);
    }

    fn stats(&self) -> ServeStats {
        let mut lat = self.latencies_us.lock().unwrap().clone();
        lat.sort_unstable();
        let pct = |p: usize| -> u64 {
            if lat.is_empty() {
                0
            } else {
                lat[(lat.len() - 1) * p / 100].div_ceil(1000)
            }
        };
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cache: self.cache.lock().unwrap().stats(),
            p50_ms: pct(50),
            p99_ms: pct(99),
        }
    }
}

/// Cloneable submission handle; the server hands one to every connection
/// thread.
#[derive(Clone)]
pub struct ServeHandle {
    tx: mpsc::Sender<Job>,
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Submits one request with no admission control (in-process callers
    /// that want every request encoded eventually). The encoding (or
    /// typed error) arrives on the returned channel; cache hits are
    /// answered before this returns.
    pub fn submit(&self, req: ServeRequest) -> mpsc::Receiver<ServeResponse> {
        let (resp_tx, resp_rx) = mpsc::channel();
        self.submit_inner(
            req,
            Box::new(move |r| {
                let _ = resp_tx.send(r); // receiver may have given up
            }),
            false,
        );
        resp_rx
    }

    /// Admission-controlled submission — the server front door. The
    /// completion is invoked exactly once, possibly before this returns
    /// (cache hit, invalid request, or shed) and possibly from a worker
    /// thread. When the submit queue holds `queue_cap` requests the
    /// request is rejected *before* the batcher with a typed
    /// [`EncodeError::Overloaded`] and [`Admission::Shed`] is returned.
    pub fn try_submit(&self, req: ServeRequest, complete: Completion) -> Admission {
        self.submit_inner(req, complete, true)
    }

    fn submit_inner(&self, req: ServeRequest, complete: Completion, bounded: bool) -> Admission {
        let submitted = Instant::now();
        let shared = &self.shared;
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let key = content_key(
            req.kind,
            shared.pipeline.linearizer().name(),
            shared.pipeline.options(),
            &req.table,
            &req.context,
        );
        if let Some(hit) = shared.cache.lock().unwrap().get(key) {
            shared.answer(
                complete,
                submitted,
                Ok(ServeReply {
                    encoding: hit,
                    cached: true,
                }),
            );
            return Admission::CacheHit;
        }
        // Admission control happens here — in front of the micro-batcher,
        // so a saturated service rejects in O(1) instead of queueing work
        // it will answer too late.
        let depth = shared.queue_depth.load(Ordering::Relaxed);
        let cap = shared.cfg.queue_cap;
        if bounded && cap > 0 && depth >= cap {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            shared.errors.fetch_add(1, Ordering::Relaxed);
            shared.obs.inc("serve/shed");
            // Shed latencies are ~0 and would skew the SLO percentiles;
            // deliver without recording.
            complete(Err(EncodeError::Overloaded {
                queue_depth: depth,
                queue_cap: cap,
            }));
            return Admission::Shed;
        }
        shared.queue_depth.fetch_add(1, Ordering::Relaxed);
        shared.obs.observe("serve/queue_depth", depth as u64 + 1);
        let job = Job {
            kind: req.kind,
            key,
            table: req.table,
            context: req.context,
            submitted,
            complete,
        };
        // The batcher only exits after every sender is gone, so this
        // cannot fail while a handle exists.
        self.tx.send(job).expect("batcher thread alive");
        Admission::Queued
    }

    /// Requests currently queued ahead of the micro-batcher.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth.load(Ordering::Relaxed)
    }

    /// The configured admission bound (0 = unbounded).
    pub fn queue_cap(&self) -> usize {
        self.shared.cfg.queue_cap
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }
}

/// The running service: batcher thread + worker pool + cache.
pub struct EmbeddingService {
    handle: ServeHandle,
    batcher: Option<JoinHandle<()>>,
}

impl EmbeddingService {
    /// Starts the batcher thread. `obs` receives `serve_batch` events and
    /// the serve metrics; pass [`ntr_obs::Obs::disabled`] to opt out.
    pub fn start(pipeline: Pipeline, cfg: ServeConfig, obs: ntr_obs::Obs) -> Self {
        let model_cfg = cfg
            .model_config
            .unwrap_or_else(|| pipeline.default_config());
        let n_workers = cfg.n_workers.max(1);
        let shared = Arc::new(Shared {
            cache: Mutex::new(EmbeddingCache::new(cfg.cache_bytes)),
            replicas: (0..n_workers).map(|_| Mutex::new(HashMap::new())).collect(),
            pipeline,
            cfg,
            model_cfg,
            obs,
            queue_depth: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            latencies_us: Mutex::new(Vec::new()),
        });
        let (tx, rx) = mpsc::channel::<Job>();
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ntr-serve-batcher".into())
                .spawn(move || batcher_loop(&shared, &rx))
                .expect("spawn batcher thread")
        };
        EmbeddingService {
            handle: ServeHandle { tx, shared },
            batcher: Some(batcher),
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        self.handle.shared.stats()
    }

    /// Graceful shutdown: drains every queued request through the normal
    /// batch path, joins the batcher, and returns the final counters.
    ///
    /// The batcher exits once every [`ServeHandle`] clone is gone, so drop
    /// outstanding handles (join connection threads) before calling this.
    pub fn shutdown(self) -> ServeStats {
        let EmbeddingService { handle, batcher } = self;
        let ServeHandle { tx, shared } = handle;
        drop(tx);
        if let Some(batcher) = batcher {
            let _ = batcher.join();
        }
        shared.stats()
    }
}

fn batcher_loop(shared: &Shared, rx: &mpsc::Receiver<Job>) {
    let max_batch = shared.cfg.max_batch.max(1);
    loop {
        // Block until a batch begins (or every handle is gone).
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let deadline = first.submitted + shared.cfg.max_wait;
        let mut batch = vec![first];
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                // On disconnect the queue is already fully drained into
                // `batch`; flush it, then exit via the recv above.
                Err(_) => break,
            }
        }
        shared.queue_depth.fetch_sub(batch.len(), Ordering::Relaxed);
        flush(shared, batch);
    }
}

/// Encodes one batch across the worker replicas and answers every request.
fn flush(shared: &Shared, batch: Vec<Job>) {
    let t0 = Instant::now();
    let size = batch.len() as u64;
    shared.batches.fetch_add(1, Ordering::Relaxed);

    // Serialize on the batcher thread; invalid requests are answered
    // immediately and never reach a worker.
    let mut jobs: Vec<(Job, EncodedTable)> = Vec::with_capacity(batch.len());
    for job in batch {
        match shared.pipeline.try_serialize(&job.table, &job.context) {
            Ok(encoded) => jobs.push((job, encoded)),
            Err(e) => shared.answer(job.complete, job.submitted, Err(e)),
        }
    }
    if jobs.is_empty() {
        return;
    }

    // Length-balanced buckets: longest sequences first, each assigned to
    // the currently lightest worker, so replicas finish together.
    let n_buckets = shared.replicas.len().min(jobs.len());
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(jobs[i].1.len()), i));
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_buckets];
    let mut loads = vec![0usize; n_buckets];
    for i in order {
        let lightest = (0..n_buckets).min_by_key(|&b| (loads[b], b)).unwrap();
        loads[lightest] += jobs[i].1.len();
        buckets[lightest].push(i);
    }

    // Encode every bucket concurrently, one model replica per bucket.
    // Each request runs through `encode_serialized` — the same compute
    // core as sequential `Pipeline::encode` — on a replica whose weights
    // are bit-identical by construction (same config, same seed).
    let slots: Vec<Mutex<Vec<(Job, EncodedTable)>>> = {
        let mut jobs: Vec<Option<(Job, EncodedTable)>> = jobs.into_iter().map(Some).collect();
        buckets
            .iter()
            .map(|bucket| {
                Mutex::new(
                    bucket
                        .iter()
                        .map(|&i| jobs[i].take().expect("each job in exactly one bucket"))
                        .collect(),
                )
            })
            .collect()
    };
    let done: Vec<Vec<(Job, Arc<TableEncoding>)>> = par::map_tasks(n_buckets, n_buckets, |b| {
        let work = std::mem::take(&mut *slots[b].lock().unwrap());
        let mut replica = shared.replicas[b].lock().unwrap();
        let mut out = Vec::with_capacity(work.len());
        for (job, encoded) in work {
            let model = replica
                .entry(job.kind)
                .or_insert_with(|| build_model(job.kind, &shared.model_cfg));
            let enc = Arc::new(shared.pipeline.encode_serialized(model.as_mut(), encoded));
            out.push((job, enc));
        }
        out
    });

    for (job, enc) in done.into_iter().flatten() {
        shared
            .cache
            .lock()
            .unwrap()
            .insert(job.key, Arc::clone(&enc));
        shared.answer(
            job.complete,
            job.submitted,
            Ok(ServeReply {
                encoding: enc,
                cached: false,
            }),
        );
    }

    shared.obs.observe("serve/batch_size", size);
    if let Some(ev) = shared.obs.event("serve_batch") {
        ev.u64("size", size)
            .u64("queued", shared.queue_depth.load(Ordering::Relaxed) as u64)
            .u64("encode_ms", t0.elapsed().as_millis() as u64)
            .finish();
    }
}
