//! Fact checking — the paper's §2.1 "Tabular Natural Language Inference"
//! application: verify claims against tables, TabFact-style.
//!
//! Run with: `cargo run --release --example fact_checking`

use ntr::corpus::datasets::NliDataset;
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{Split, World, WorldConfig};
use ntr::models::{ModelConfig, Tapas};
use ntr::table::LinearizerOptions;
use ntr::tasks::nli::{baseline_lookup, evaluate, finetune, FactVerifier};
use ntr::tasks::TrainConfig;

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 36,
            min_rows: 4,
            max_rows: 6,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 41,
        },
    );
    let ds = NliDataset::build(&corpus, 6, 42);
    let extra: Vec<String> = ds.examples.iter().map(|e| e.claim.clone()).collect();
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &extra, 2200);
    let pos = ds.examples.iter().filter(|e| e.label).count();
    println!(
        "NLI dataset: {} claims ({} supported / {} refuted)",
        ds.examples.len(),
        pos,
        ds.examples.len() - pos
    );

    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        ..ModelConfig::default()
    };
    let opts = LinearizerOptions {
        max_tokens: 192,
        ..Default::default()
    };
    let mut model = FactVerifier::new(Tapas::new(&cfg), 43);
    println!("fine-tuning claim verification...");
    finetune(
        &mut model,
        &ds,
        &tok,
        &TrainConfig {
            epochs: 6,
            lr: 3e-3,
            batch_size: 8,
            warmup_frac: 0.1,
            seed: 44,
        },
        &opts,
    );

    let neural = evaluate(&mut model, &ds, Split::Test, &tok, &opts);
    let symbolic = baseline_lookup(&ds, Split::Test);
    println!("\n                  | accuracy | precision | recall |   f1");
    println!(
        "  tapas (tuned)   |  {:.3}   |   {:.3}   | {:.3}  | {:.3}",
        neural.accuracy, neural.prf.precision, neural.prf.recall, neural.prf.f1
    );
    println!(
        "  symbolic lookup |  {:.3}   |   {:.3}   | {:.3}  | {:.3}",
        symbolic.accuracy, symbolic.prf.precision, symbolic.prf.recall, symbolic.prf.f1
    );

    // Show a few verdicts.
    println!("\nsample verdicts (test split):");
    for &i in ds.indices(Split::Test).iter().take(5) {
        let ex = &ds.examples[i];
        println!(
            "  [{}] {:?}",
            if ex.label { "SUPPORTED" } else { "REFUTED  " },
            ex.claim
        );
    }
    println!("\nTake-away: the symbolic checker wins on exact-match claims — the");
    println!("paper's point that complex/compositional claims are where neural");
    println!("representations have open challenges (§2.4).");
}
