//! Pretraining — the paper's hands-on §3.3 ("Pretraining and Output
//! Encoding"): pretrain TURL with its two objectives (masked language
//! modeling + masked entity recovery) on a synthetic entity-table corpus,
//! watch both losses fall, then inspect attention weights.
//!
//! Run with: `cargo run --release --example pretraining`

use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::models::{EncoderInput, ModelConfig, SequenceEncoder, Turl};
use ntr::table::{Linearizer, LinearizerOptions, TurlLinearizer};
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

fn main() {
    // 1. A synthetic world and an entity-table corpus (WikiTables stand-in).
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate_entity_only(
        &world,
        &CorpusConfig {
            n_tables: 60,
            min_rows: 3,
            max_rows: 6,
            null_prob: 0.02,
            headerless_prob: 0.0,
            seed: 11,
        },
    );
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &[], 2000);
    println!(
        "world: {} entities | corpus: {} tables | vocab: {} tokens",
        world.n_entities(),
        corpus.len(),
        tok.vocab_size()
    );

    // 2. Pretrain TURL jointly on MLM + MER.
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        n_entities: world.n_entities(),
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        dropout: 0.1,
        ..ModelConfig::default()
    };
    let mut model = Turl::new(&cfg);
    let train_cfg = TrainConfig {
        epochs: 12,
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 12,
    };
    println!("\npretraining TURL (MLM + MER)...");
    let report = TrainRun::new(train_cfg)
        .max_tokens(160)
        .turl(&mut model, &corpus, &tok)
        .expect("infallible: no checkpointing configured");

    println!("\n step | mlm loss | mlm acc | mer loss | mer acc");
    let n = report.mlm_loss.len();
    for i in (0..n).step_by((n / 12).max(1)) {
        println!(
            " {:>4} | {:>8.4} | {:>7.3} | {:>8.4} | {:>7.3}",
            i, report.mlm_loss[i], report.mlm_acc[i], report.mer_loss[i], report.mer_acc[i]
        );
    }
    println!(
        " {:>4} | {:>8.4} | {:>7.3} | {:>8.4} | {:>7.3}  (final)",
        n - 1,
        report.mlm_loss[n - 1],
        report.mlm_acc[n - 1],
        report.mer_loss[n - 1],
        report.mer_acc[n - 1]
    );

    // 3. Inspect attention weights on one table (visibility structure).
    let t = &corpus.tables[0];
    let e = TurlLinearizer.linearize(t, &t.caption, &tok, &LinearizerOptions::default());
    let input = EncoderInput::from_encoded(&e);
    let _ = model.encode(&input, false);
    let maps = model.encoder.attention_maps();
    println!(
        "\nattention inspection: {} layers x {} heads, map shape {:?}",
        maps.len(),
        maps[0].len(),
        maps[0][0].shape()
    );
    // Show where the first data cell's first token attends.
    if let Some(span) = e.cell_span(0, 0) {
        let q = span.start;
        let probs = &maps[0][0];
        let mut top: Vec<(usize, f32)> =
            (0..probs.dim(1)).map(|j| (j, probs.at(&[q, j]))).collect();
        top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        println!("cell (0,0) token attends most to:");
        for (j, p) in top.iter().take(5) {
            println!(
                "  {:<14} row={} col={} p={:.3}",
                tok.vocab().token_of(e.ids()[*j]),
                e.meta()[*j].row,
                e.meta()[*j].col,
                p
            );
        }
    }
    println!("\nTake-away: both objectives improve; visibility-masked attention");
    println!("only distributes mass over structurally related tokens.");
}
