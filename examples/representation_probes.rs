//! Representation probes — the paper's §2.4 closes by calling for "a new
//! family of data-driven basic tests … to measure the consistency of the
//! data representation". This example runs that family over every encoder
//! model and renders the §3.3-style inspection views (attention heatmap,
//! cell-similarity grid).
//!
//! Run with: `cargo run --release --example representation_probes`

use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::models::{EncoderInput, ModelConfig, SequenceEncoder, Turl};
use ntr::table::{Linearizer, LinearizerOptions, TurlLinearizer};
use ntr::tasks::probes::consistency;
use ntr::tasks::visualize::{attention_heatmap, cell_similarity_grid, top_attended};
use ntr::zoo::{build_encoder, EncoderSpec, ModelKind};

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 24,
            min_rows: 4,
            max_rows: 6,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 61,
        },
    );
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &[], 1800);
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        n_entities: world.n_entities(),
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        ..ModelConfig::default()
    };

    // ------------------------------------------------------------------
    // 1. Consistency probes per model family (centered cosine).
    // ------------------------------------------------------------------
    let opts = LinearizerOptions::default();
    println!(
        "consistency probes over {} tables (centered cosine):",
        corpus.len()
    );
    println!("{:<7} | row-perm ↑ | col-perm ↑ | header-strip ↓", "model");
    for kind in ModelKind::ALL {
        let mut model = build_encoder(EncoderSpec::f32(kind), &cfg).expect("f32 spec");
        let r = consistency(model.as_mut(), &corpus, &tok, &opts, 62);
        println!(
            "{:<7} |   {:+.3}   |   {:+.3}   |   {:+.3}",
            kind.name(),
            r.row_order_invariance,
            r.col_order_invariance,
            r.header_similarity
        );
    }
    println!("(structural models are more column-order sensitive and more");
    println!(" header-dependent than the BERT baseline — see EXPERIMENTS.md E12)\n");

    // ------------------------------------------------------------------
    // 2. §3.3-style inspection of one TURL encoding.
    // ------------------------------------------------------------------
    let t = &corpus.tables[0];
    let mut turl = Turl::new(&cfg);
    let e = TurlLinearizer.linearize(t, &t.caption, &tok, &opts);
    let input = EncoderInput::from_encoded(&e);
    let states = turl.encode(&input, false);

    println!(
        "table `{}` under the TURL linearizer ({} tokens)\n",
        t.id,
        e.len()
    );
    println!("attention heatmap, layer 0 / head 0 (first 16 tokens):");
    let maps = turl.encoder.attention_maps();
    print!("{}", attention_heatmap(&maps[0][0], &e, &tok, 16));

    if let Some(span) = e.cell_span(0, 0) {
        println!("\nwhere the first token of cell (0,0) looks (layer 0, head 0):");
        for (token, row, col, p) in top_attended(&maps[0][0], &e, &tok, span.start, 5) {
            println!("  {token:<14} row={row} col={col} p={p:.3}");
        }
    }

    println!("\ncell-embedding cosine to cell (0,0):");
    print!(
        "{}",
        cell_similarity_grid(&e, &states, (0, 0), t.n_rows().min(5), t.n_cols().min(6))
    );
}
