//! Data imputation — the paper's hands-on §3.4 ("Fine-tuning and
//! Analysis"): **pretrain** on a table corpus, **fine-tune** for cell
//! population, evaluate with F1/accuracy on a hold-out set, compare against
//! the mode baseline, and zoom in on the failure slices the paper
//! discusses (numeric tables, headerless tables).
//!
//! Run with: `cargo run --release --example imputation`

use ntr::corpus::datasets::ImputationDataset;
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{Split, World, WorldConfig};
use ntr::models::{ModelConfig, VanillaBert};
use ntr::tasks::imputation::{baseline_mode, evaluate, finetune, CandidatePools};
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

fn main() {
    // 1. Corpus: entity tables plus GitTables-style typed tables, with a
    //    slice of headerless tables (the §3.4 failure case). World facts
    //    are consistent across tables, so pretraining can learn them.
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 60,
            min_rows: 4,
            max_rows: 7,
            null_prob: 0.0,
            headerless_prob: 0.15,
            seed: 21,
        },
    );
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &[], 2000);
    let ds = ImputationDataset::build(&corpus, 3, 22);
    let pools = CandidatePools::build(&ds, Split::Train);
    println!(
        "imputation dataset: {} examples ({} train / {} test)",
        ds.examples.len(),
        ds.indices(Split::Train).len(),
        ds.indices(Split::Test).len()
    );

    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        ..ModelConfig::default()
    };
    let mut model = VanillaBert::new(&cfg);
    let untrained = evaluate(&mut model, &ds, Split::Test, &pools, &tok, 192);

    // 2. Pretrain with MLM over the corpus (the paper's pipeline (1)).
    println!("pretraining (MLM over the corpus)...");
    let report = TrainRun::new(TrainConfig {
        epochs: 40,
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 7,
    })
    .max_tokens(192)
    .mlm(&mut model, &corpus, &tok)
    .expect("infallible: no checkpointing configured");
    println!(
        "  mlm loss {:.3} -> {:.3}",
        report.mlm_loss.first().copied().unwrap_or(0.0),
        report.mlm_loss.last().copied().unwrap_or(0.0)
    );
    let pretrained = evaluate(&mut model, &ds, Split::Test, &pools, &tok, 192);

    // 3. Fine-tune for imputation (the paper's pipeline (2)). With ~100
    //    training cells a small model overfits within a couple of epochs,
    //    so we select the epoch count on the validation split.
    println!(
        "fine-tuning ({} train examples)...",
        ds.indices(Split::Train).len()
    );
    let mut checkpoint = Vec::new();
    ntr::nn::serialize::save_to(&mut model, &mut checkpoint).expect("in-memory save");
    let mut best: Option<(f64, usize, Vec<u8>)> = None;
    for epochs in [1usize, 2, 3] {
        let mut candidate = VanillaBert::new(&cfg);
        ntr::nn::serialize::load_from(&mut candidate, &mut checkpoint.as_slice())
            .expect("in-memory load");
        finetune(
            &mut candidate,
            &ds,
            &tok,
            &TrainConfig {
                epochs,
                lr: 3e-4,
                batch_size: 8,
                warmup_frac: 0.1,
                seed: 23,
            },
            192,
        );
        let val = evaluate(&mut candidate, &ds, Split::Val, &pools, &tok, 192);
        println!("  epochs={epochs}: val acc {:.3}", val.accuracy);
        if best.as_ref().is_none_or(|(b, _, _)| val.accuracy > *b) {
            let mut buf = Vec::new();
            ntr::nn::serialize::save_to(&mut candidate, &mut buf).expect("save");
            best = Some((val.accuracy, epochs, buf));
        }
    }
    let (_, best_epochs, weights) = best.expect("grid is non-empty");
    println!("  selected epochs={best_epochs}");
    ntr::nn::serialize::load_from(&mut model, &mut weights.as_slice()).expect("load");
    let tuned = evaluate(&mut model, &ds, Split::Test, &pools, &tok, 192);
    let baseline = baseline_mode(&ds, Split::Test, &pools);

    println!("\n                     |  acc  |  f1");
    println!(
        "  untrained          | {:.3} | {:.3}",
        untrained.accuracy, untrained.macro_f1
    );
    println!(
        "  pretrained only    | {:.3} | {:.3}",
        pretrained.accuracy, pretrained.macro_f1
    );
    println!(
        "  pretrained + tuned | {:.3} | {:.3}",
        tuned.accuracy, tuned.macro_f1
    );
    println!(
        "  mode baseline      | {:.3} | {:.3}",
        baseline.accuracy, baseline.macro_f1
    );

    // 4. Failure-case analysis (§3.4's closing discussion).
    println!("\nfailure slices (fine-tuned model):");
    println!("  text tables       : acc {:.3}", tuned.text_accuracy);
    println!(
        "  numeric tables    : acc {:.3}   <- numbers are hard for LMs",
        tuned.numeric_accuracy
    );
    println!("  headered tables   : acc {:.3}", tuned.headered_accuracy);
    println!(
        "  headerless tables : acc {:.3}   <- headers carry signal",
        tuned.headerless_accuracy
    );
}
