//! Text-to-SQL and neural SQL execution — the paper's §2.1 "Semantic
//! Parsing: Text-to-SQL" plus the TAPEX pretraining objective:
//!
//! 1. pretrain a TAPEX-style encoder–decoder to *execute* SQL against
//!    tables (supervision from the real `ntr-sql` executor);
//! 2. fine-tune a second model to *parse* questions into SQL;
//! 3. evaluate both by denotation.
//!
//! Run with: `cargo run --release --example text_to_sql`

use ntr::corpus::datasets::Text2SqlDataset;
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{Split, World, WorldConfig};
use ntr::models::{ModelConfig, Tapex};
use ntr::sql::gen::{GenConfig, QueryGenerator};
use ntr::tasks::pretrain::eval_tapex_execution;
use ntr::tasks::text2sql::{baseline_first_column, evaluate, finetune};
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 60,
            min_rows: 3,
            max_rows: 5,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 51,
        },
    );

    // Vocabulary must cover questions and SQL renderings.
    let ds = Text2SqlDataset::build(&corpus, 4, 52);
    let extra: Vec<String> = ds
        .examples
        .iter()
        .flat_map(|e| [e.question.clone(), e.sql.to_string().to_lowercase()])
        .collect();
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &extra, 2500);
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        ..ModelConfig::default()
    };

    // ------------------------------------------------------------------
    // Part A: TAPEX as a neural SQL executor.
    // ------------------------------------------------------------------
    println!("Part A — pretraining a neural SQL executor (TAPEX objective)");
    let mut executor = Tapex::new(&cfg);
    let losses = TrainRun::new(TrainConfig {
        epochs: 12,
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 53,
    })
    .queries_per_table(3)
    .max_tokens(160)
    .tapex(&mut executor, &corpus, &tok)
    .expect("infallible: no checkpointing configured");
    println!(
        "  loss: {:.3} -> {:.3} over {} steps",
        losses.first().copied().unwrap_or(0.0),
        losses.last().copied().unwrap_or(0.0),
        losses.len()
    );
    // Held-out (table, sql, answer) triples with a fresh generator seed.
    let mut held_out = Vec::new();
    for table in corpus.tables.iter().take(8) {
        let mut g = QueryGenerator::new(0xEE7, GenConfig::default());
        for (q, a) in g.generate_n(table, 2) {
            held_out.push((table.clone(), q, a));
        }
    }
    let exec_acc = eval_tapex_execution(&mut executor, &held_out, &tok, 160);
    println!(
        "  neural execution accuracy on {} held-out queries: {:.3}",
        held_out.len(),
        exec_acc
    );
    println!("  (the real executor is exact by construction: 1.000)");

    // ------------------------------------------------------------------
    // Part B: text-to-SQL semantic parsing.
    // ------------------------------------------------------------------
    println!("\nPart B — text-to-SQL parsing, evaluated by denotation");
    println!(
        "  dataset: {} questions ({} train / {} test)",
        ds.examples.len(),
        ds.indices(Split::Train).len(),
        ds.indices(Split::Test).len()
    );
    let mut parser = Tapex::new(&ModelConfig { seed: 99, ..cfg });
    let losses = finetune(
        &mut parser,
        &ds,
        &tok,
        &TrainConfig {
            epochs: 30,
            lr: 3e-3,
            batch_size: 8,
            warmup_frac: 0.1,
            seed: 54,
        },
        160,
    );
    println!(
        "  loss: {:.3} -> {:.3} over {} steps",
        losses.first().copied().unwrap_or(0.0),
        losses.last().copied().unwrap_or(0.0),
        losses.len()
    );
    let eval = evaluate(&mut parser, &ds, Split::Test, &tok, 160);
    let base = baseline_first_column(&ds, Split::Test);
    println!("\n                      | parse rate | denotation acc | exact match");
    println!(
        "  tapex parser        |   {:.3}    |     {:.3}      |   {:.3}",
        eval.parse_rate, eval.denotation_accuracy, eval.exact_match
    );
    println!(
        "  first-column guess  |   1.000    |     {:.3}      |   0.000",
        base.denotation_accuracy
    );
}
