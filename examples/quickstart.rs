//! Quickstart — the paper's hands-on §3.1 ("Off-the-shelf Model Inputs and
//! Outputs") as a runnable program:
//!
//! 1. load a table from a CSV file;
//! 2. format it for each model family (inspect the linearizations);
//! 3. encode it and inspect the vector representations.
//!
//! Run with: `cargo run --release --example quickstart`

use ntr::pipeline::Pipeline;
use ntr::table::{
    ColumnMajorLinearizer, Linearizer, LinearizerOptions, RowMajorLinearizer, Table,
    TapexLinearizer, TemplateLinearizer, TurlLinearizer,
};
use ntr::zoo::{build_encoder, EncoderSpec, ModelKind};
use std::path::Path;

fn main() {
    // ------------------------------------------------------------------
    // 1. Load a sample table from a CSV file.
    // ------------------------------------------------------------------
    let table = Table::from_csv_path(Path::new("data/countries.csv"))
        .expect("data/countries.csv should parse")
        .with_caption("Population in Million by Country");
    println!(
        "Loaded table ({} rows x {} cols):",
        table.n_rows(),
        table.n_cols()
    );
    println!("{table}");

    // ------------------------------------------------------------------
    // 2. Compare the input formats of the different model families
    //    (the paper's Fig. 2a/2b contrast).
    // ------------------------------------------------------------------
    let pipeline = Pipeline::builder()
        .vocab_from_tables(std::slice::from_ref(&table))
        .vocab_size(1200)
        .build()
        .expect("vocab trained from tables is non-empty");
    let tok = pipeline.tokenizer();
    let opts = LinearizerOptions::default();

    let linearizers: Vec<Box<dyn Linearizer>> = vec![
        Box::new(RowMajorLinearizer),
        Box::new(TemplateLinearizer),
        Box::new(ColumnMajorLinearizer),
        Box::new(TapexLinearizer),
        Box::new(TurlLinearizer),
    ];
    println!("Linearization formats (first 18 tokens each):");
    for lin in &linearizers {
        let e = lin.linearize(&table, &table.caption, tok, &opts);
        let preview: Vec<&str> = e
            .ids()
            .iter()
            .take(18)
            .map(|&id| tok.vocab().token_of(id))
            .collect();
        println!(
            "  {:>12} | {:>3} tokens | {}",
            e.linearizer(),
            e.len(),
            preview.join(" ")
        );
    }

    // ------------------------------------------------------------------
    // 3. Encode with each model family and inspect the outputs.
    // ------------------------------------------------------------------
    println!("\nEncoding with each model family:");
    let cfg = pipeline.default_config();
    for kind in ModelKind::ALL {
        let mut model = build_encoder(EncoderSpec::f32(kind), &cfg).expect("f32 spec");
        let enc = pipeline.encode(model.as_mut(), &table, &table.caption);
        let cls = enc.table_embedding();
        let paris = enc.cell_embedding(0, 1).expect("Paris cell encoded");
        let berlin = enc.cell_embedding(1, 1).expect("Berlin cell encoded");
        let pop_fr = enc.cell_embedding(0, 2).expect("population cell encoded");
        println!(
            "  {:>6} | states {:?} | CLS norm {:.3} | cos(Paris,Berlin)={:+.3} cos(Paris,67.8)={:+.3}",
            kind.name(),
            enc.states.shape(),
            cls.norm(),
            paris.cosine(&berlin),
            paris.cosine(&pop_fr),
        );
    }

    println!("\nTake-away: same table, different serializations and different");
    println!("structure-awareness — the design space of the survey's Section 2.");
}
