//! Table QA demo — the paper's §2.1 live demo (HuggingFace TAPAS) as a
//! local program: fine-tune a TAPAS-style cell selector and answer
//! natural-language questions over a table, like the Fig. 1 example
//! ("question about France population" → highlighted cell).
//!
//! Run with: `cargo run --release --example qa_demo`

use ntr::corpus::datasets::QaDataset;
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{Split, World, WorldConfig};
use ntr::models::{EncoderInput, ModelConfig, SequenceEncoder, Tapas};
use ntr::table::LinearizerOptions;
use ntr::tasks::qa::{
    baseline_lexical, encode_qa, evaluate, finetune, snapshot_dataset, CellSelector,
};
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;

fn main() {
    // 1. Dataset of (table, question, answer-cell) triples.
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 120,
            min_rows: 4,
            max_rows: 6,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 31,
        },
    );
    // Input processing (the paper's "data retrieval and filtering"):
    // TaBERT-style content snapshots keep the 2 rows most relevant to the
    // question. Without this step, a from-scratch model at this scale only
    // memorizes training questions (we measured ~0.03 test accuracy).
    let ds = snapshot_dataset(&QaDataset::build(&corpus, 6, 32), 2);
    let extra: Vec<String> = ds.examples.iter().map(|e| e.question.clone()).collect();
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &extra, 2200);
    println!(
        "QA dataset: {} questions ({} train / {} test)",
        ds.examples.len(),
        ds.indices(Split::Train).len(),
        ds.indices(Split::Test).len()
    );

    // 2. Fine-tune the TAPAS-style selector.
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        ..ModelConfig::default()
    };
    let opts = LinearizerOptions {
        max_tokens: 192,
        ..Default::default()
    };
    // Pretrain the encoder with MLM first — the paper's pipeline (1) —
    // then fine-tune the cell-selection head — pipeline (2).
    let mut encoder = Tapas::new(&cfg);
    println!("pretraining encoder (MLM)...");
    TrainRun::new(TrainConfig {
        epochs: 10,
        lr: 3e-3,
        batch_size: 8,
        warmup_frac: 0.1,
        seed: 30,
    })
    .max_tokens(192)
    .mlm(&mut encoder, &corpus, &tok)
    .expect("infallible: no checkpointing configured");
    let mut model = CellSelector::new(encoder, 33);
    println!("fine-tuning cell selection...");
    finetune(
        &mut model,
        &ds,
        &tok,
        &TrainConfig {
            epochs: 15,
            lr: 1e-3,
            batch_size: 8,
            warmup_frac: 0.1,
            seed: 34,
        },
        &opts,
    );

    // 3. Evaluate vs. the lexical baseline.
    let neural = evaluate(&mut model, &ds, Split::Test, &tok, &opts);
    let lexical = baseline_lexical(&ds, Split::Test);
    println!("\n                | coord acc | denotation acc");
    println!(
        "  tapas (tuned) |   {:.3}   |     {:.3}",
        neural.coord_accuracy, neural.denotation_accuracy
    );
    println!(
        "  lexical match |   {:.3}   |     {:.3}",
        lexical.coord_accuracy, lexical.denotation_accuracy
    );

    // 4. Interactive-style demo on a few test questions.
    println!("\ndemo answers:");
    for &i in ds.indices(Split::Test).iter().take(5) {
        let ex = &ds.examples[i];
        let encoded = encode_qa(ex, &tok, &opts);
        let input = EncoderInput::from_encoded(&encoded);
        let states = model.encoder.encode(&input, false);
        let scores = model.head_forward_inference(&states);
        let mut best: Option<((usize, usize), f32)> = None;
        for (coord, span) in encoded.cells() {
            let s = span.clone().map(|p| scores.at(&[p, 0])).sum::<f32>() / span.len() as f32;
            if best.is_none() || s > best.expect("set").1 {
                best = Some((coord, s));
            }
        }
        let (coord, _) = best.expect("cells exist");
        let predicted = ex.table.cell(coord.0, coord.1).text();
        let mark = if predicted == ex.answer_text {
            "OK "
        } else {
            "MISS"
        };
        println!(
            "  [{mark}] Q: {:<46} A: {predicted:<14} (gold: {})",
            ex.question, ex.answer_text
        );
    }
}
